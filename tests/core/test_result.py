"""Tests for SelectionResult."""

import numpy as np
import pytest

from repro.core.result import SelectionResult
from repro.exceptions import SelectionError


def _result(**overrides):
    base = dict(
        bandwidth=0.2,
        score=0.05,
        method="grid-search",
        backend="numpy",
        kernel="epanechnikov",
        n_observations=100,
        bandwidths=np.array([0.1, 0.2, 0.3]),
        scores=np.array([0.08, 0.05, 0.09]),
        n_evaluations=3,
        wall_seconds=0.01,
    )
    base.update(overrides)
    return SelectionResult(**base)


class TestValidation:
    def test_valid_result_constructs(self):
        assert _result().bandwidth == 0.2

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(SelectionError):
            _result(bandwidth=0.0)

    def test_nan_bandwidth_rejected(self):
        with pytest.raises(SelectionError):
            _result(bandwidth=float("nan"))


class TestBoundaryDetection:
    def test_interior_minimum(self):
        assert not _result().is_boundary_minimum()

    def test_lower_boundary(self):
        assert _result(bandwidth=0.1).is_boundary_minimum()

    def test_upper_boundary(self):
        assert _result(bandwidth=0.3).is_boundary_minimum()

    def test_no_grid_means_no_boundary(self):
        res = _result(bandwidths=np.empty(0), scores=np.empty(0))
        assert not res.is_boundary_minimum()


class TestPresentation:
    def test_cv_curve_accessor(self):
        res = _result()
        bw, sc = res.cv_curve
        np.testing.assert_array_equal(bw, [0.1, 0.2, 0.3])
        np.testing.assert_array_equal(sc, [0.08, 0.05, 0.09])

    def test_summary_mentions_key_fields(self):
        text = _result(diagnostics={"workers": 4}).summary()
        assert "grid-search" in text
        assert "0.2" in text
        assert "workers" in text
