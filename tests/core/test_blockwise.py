"""Tests for the blockwise out-of-core sweep and its memory plan.

The headline claim — "the n = 20,000 memory wall is gone" — is proven
two ways: bit-for-bit equality of the blocked CV curve with the
all-at-once numpy sweep at every partition, and a tracemalloc guard
holding the real allocation peak of an n = 20,000 sweep to within 1.5×
of the planner's ``predicted_peak_bytes``.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.blockwise import (
    cv_scores_blocked,
    cv_scores_blocked_shm,
    plan_for,
)
from repro.core.fastgrid import cv_scores_fastgrid
from repro.exceptions import MemoryBudgetError, ValidationError


def _sample(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, n)
    return x, y


class TestPlanFor:
    def test_kernel_polynomial_terms_drive_the_row_cost(self) -> None:
        # Epanechnikov sweeps two polynomial terms per row, uniform one:
        # the same budget must therefore fit more uniform rows.
        epa = plan_for(4000, 16, "epanechnikov", memory_budget="64MiB")
        uni = plan_for(4000, 16, "uniform", memory_budget="64MiB")
        assert uni.bytes_per_row < epa.bytes_per_row
        assert uni.block_rows >= epa.block_rows

    def test_output_matrix_variant_plans_smaller_blocks(self) -> None:
        bare = plan_for(4000, 16, "epanechnikov", memory_budget="64MiB")
        shm = plan_for(
            4000, 16, "epanechnikov", memory_budget="64MiB",
            output_matrix=True,
        )
        assert shm.fixed_bytes == bare.fixed_bytes + 4000 * 16 * 8

    def test_block_rows_override_wins(self) -> None:
        plan = plan_for(4000, 16, "epanechnikov", block_rows=17)
        assert plan.block_rows == 17

    def test_impossible_budget_is_typed(self) -> None:
        with pytest.raises(MemoryBudgetError) as info:
            plan_for(20_000, 16, "epanechnikov", memory_budget=4096)
        assert info.value.code == "REPRO_MEM_BUDGET"


class TestBlockedEqualsDense:
    def test_blocked_matches_fastgrid_bit_for_bit(self) -> None:
        x, y = _sample(157)
        grid = np.linspace(0.02, 0.6, 9)
        ref = cv_scores_fastgrid(x, y, grid, "epanechnikov")
        for rows in (1, 13, 156, 157, 400):
            got = cv_scores_blocked(
                x, y, grid, "epanechnikov", block_rows=rows
            )
            assert got.tobytes() == ref.tobytes(), f"B={rows}"

    def test_blocked_shm_matches_fastgrid_bit_for_bit(self) -> None:
        x, y = _sample(157, seed=5)
        grid = np.linspace(0.02, 0.6, 7)
        ref = cv_scores_fastgrid(x, y, grid, "epanechnikov")
        for rows, workers in ((13, 3), (1, 2), (157, 4), (50, 1)):
            got = cv_scores_blocked_shm(
                x, y, grid, "epanechnikov", block_rows=rows, workers=workers
            )
            assert got.tobytes() == ref.tobytes(), f"B={rows}, w={workers}"

    def test_budget_string_accepted_end_to_end(self) -> None:
        x, y = _sample(300, seed=2)
        grid = np.linspace(0.05, 0.5, 5)
        ref = cv_scores_fastgrid(x, y, grid, "uniform")
        got = cv_scores_blocked(
            x, y, grid, "uniform", memory_budget="16MiB"
        )
        assert got.tobytes() == ref.tobytes()

    def test_validation_still_applies(self) -> None:
        with pytest.raises(ValidationError):
            cv_scores_blocked(
                np.arange(5.0), np.arange(4.0), np.array([0.1]),
                "epanechnikov",
            )


class TestMemoryWall:
    """tracemalloc-verified: the planner's peak model is honest."""

    def _measured_peak(self, n: int, budget: str, k: int = 8) -> tuple[int, int]:
        x, y = _sample(n, seed=11)
        grid = np.linspace(0.02, 0.6, k)
        plan = plan_for(n, k, "epanechnikov", memory_budget=budget)
        assert plan.n_blocks > 1, "the wall test needs an actual partition"
        tracemalloc.start()
        try:
            scores = cv_scores_blocked(
                x, y, grid, "epanechnikov", memory_budget=budget
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert np.isfinite(scores).all()
        return peak, plan.predicted_peak_bytes

    def test_small_sweep_peak_within_prediction(self) -> None:
        # Fast guard for every run: n = 2,000 under an 8 MiB budget.
        peak, predicted = self._measured_peak(2_000, "8MiB")
        assert peak <= 1.5 * predicted, (peak, predicted)

    @pytest.mark.perf
    def test_n20000_sweep_breaks_the_paper_wall(self) -> None:
        # n = 20,000 is where the paper's CUDA program dies of OOM
        # (Section IV-A).  Here the whole sweep runs inside a 64 MiB
        # working set, and the planner's prediction bounds the real
        # tracemalloc peak to within 1.5x.
        peak, predicted = self._measured_peak(20_000, "64MiB")
        assert peak <= 1.5 * predicted, (peak, predicted)
        assert peak < 128 * 1024**2
