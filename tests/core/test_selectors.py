"""Tests for the bandwidth selectors (the paper's four programs)."""

import numpy as np
import pytest

from repro.core.grid import BandwidthGrid
from repro.core.loocv import cv_score
from repro.core.selectors import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
    rule_of_thumb_bandwidth,
)
from repro.data import paper_dgp, sine_dgp
from repro.exceptions import SelectionError, ValidationError


class TestGridSearchSelector:
    def test_selects_grid_minimum(self, paper_sample_medium):
        s = paper_sample_medium
        sel = GridSearchSelector(n_bandwidths=30)
        res = sel.select(s.x, s.y)
        j = int(np.argmin(res.scores))
        assert res.bandwidth == pytest.approx(res.bandwidths[j])
        assert res.score == pytest.approx(res.scores[j])
        assert res.n_evaluations == 30
        assert res.converged

    def test_explicit_grid_respected(self, paper_sample_medium):
        s = paper_sample_medium
        grid = BandwidthGrid(np.array([0.05, 0.1, 0.2]))
        res = GridSearchSelector(grid=grid).select(s.x, s.y)
        assert res.bandwidth in grid.values

    def test_result_metadata(self, paper_sample_medium):
        s = paper_sample_medium
        res = GridSearchSelector(kernel="biweight", n_bandwidths=10).select(s.x, s.y)
        assert res.method == "grid-search"
        assert res.backend == "numpy"
        assert res.kernel == "biweight"
        assert res.n_observations == s.n
        assert res.wall_seconds > 0.0

    def test_python_backend_same_choice(self, paper_sample_small):
        s = paper_sample_small
        a = GridSearchSelector(n_bandwidths=10, backend="numpy").select(s.x, s.y)
        b = GridSearchSelector(n_bandwidths=10, backend="python").select(s.x, s.y)
        assert a.bandwidth == pytest.approx(b.bandwidth)
        np.testing.assert_allclose(a.scores, b.scores, rtol=1e-8)

    def test_multicore_backend_same_scores(self, paper_sample_medium):
        s = paper_sample_medium
        a = GridSearchSelector(n_bandwidths=15, backend="numpy").select(s.x, s.y)
        b = GridSearchSelector(
            n_bandwidths=15, backend="multicore", workers=2
        ).select(s.x, s.y)
        np.testing.assert_allclose(a.scores, b.scores, rtol=1e-12)

    def test_gaussian_kernel_falls_back_to_dense(self, paper_sample_small):
        s = paper_sample_small
        res = GridSearchSelector(kernel="gaussian", n_bandwidths=6).select(s.x, s.y)
        assert res.kernel == "gaussian"
        assert np.isfinite(res.scores).all()

    def test_refinement_improves_or_keeps_score(self):
        s = sine_dgp(500, seed=3)
        coarse = GridSearchSelector(n_bandwidths=20).select(s.x, s.y)
        fine = GridSearchSelector(n_bandwidths=20, refine_rounds=2).select(s.x, s.y)
        assert fine.score <= coarse.score + 1e-15
        assert fine.n_evaluations == 60
        assert "refinements" in fine.diagnostics

    def test_negative_refine_rounds_rejected(self):
        with pytest.raises(ValidationError):
            GridSearchSelector(refine_rounds=-1)

    def test_too_small_sample_rejected(self):
        with pytest.raises(Exception):
            GridSearchSelector().select(np.array([1.0, 2.0]), np.array([1.0, 2.0]))


class TestDegenerateBandwidthGuards:
    """h -> 0 empties every LOO window and CV_lc collapses to 0; both
    selector families must refuse that spurious optimum."""

    def test_optimiser_does_not_run_to_zero_bandwidth(self, paper_sample_medium):
        s = paper_sample_medium
        res = NumericalOptimizationSelector(
            n_restarts=3, seed=0, maxiter=120
        ).select(s.x, s.y)
        # Degenerate solutions sit at the lower bound (domain/1000) with
        # score exactly 0; a real optimum has a positive score.
        assert res.score > 0.0
        assert res.bandwidth > 2.0 * res.diagnostics["bounds"][0]

    def test_grid_skips_leading_empty_window_zeros(self):
        # Grid reaching far below the first-neighbour distance: the small
        # bandwidths score exactly 0 (all windows empty) and must lose.
        x = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        y = np.array([0.0, 1.0, 0.5, 1.5, 1.0])
        grid = BandwidthGrid(np.array([1e-6, 1e-5, 0.3, 0.6, 1.0]))
        res = GridSearchSelector(grid=grid).select(x, y)
        assert res.bandwidth >= 0.3
        assert res.score > 0.0

    def test_all_zero_scores_pick_largest_bandwidth(self):
        # Every grid point below the minimal pairwise distance: all
        # windows empty, all scores exactly 0 — the guard falls back to
        # maximal smoothing instead of crowning a spurious minimum.
        x = np.linspace(0, 1, 20)
        y = x + 1.0
        grid = BandwidthGrid(np.array([1e-6, 1e-5, 1e-4]))
        res = GridSearchSelector(grid=grid).select(x, y)
        np.testing.assert_array_equal(res.scores, 0.0)
        assert res.bandwidth == pytest.approx(1e-4)

    def test_constant_y_fits_perfectly_at_any_bandwidth(self):
        # Constant Y: scores are numerically ~0 everywhere; selection
        # still returns a positive bandwidth with (near-)zero score.
        x = np.linspace(0, 1, 20)
        y = np.full(20, 3.0)
        res = GridSearchSelector(n_bandwidths=10).select(x, y)
        assert res.bandwidth > 0.0
        assert res.score == pytest.approx(0.0, abs=1e-20)


class TestNumericalOptimizationSelector:
    def test_finds_near_grid_optimum(self, paper_sample_medium):
        s = paper_sample_medium
        grid_res = GridSearchSelector(n_bandwidths=200).select(s.x, s.y)
        num_res = NumericalOptimizationSelector(
            n_restarts=3, seed=0, maxiter=150
        ).select(s.x, s.y)
        # The optimiser should do at least as well as a dense grid up to
        # grid resolution (it can also do slightly better).
        assert num_res.score <= grid_res.score * 1.02

    def test_brent_method(self, paper_sample_small):
        s = paper_sample_small
        res = NumericalOptimizationSelector(
            method="brent", n_restarts=1, seed=0
        ).select(s.x, s.y)
        assert res.diagnostics["optimizer"] == "brent"
        assert res.bandwidth > 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            NumericalOptimizationSelector(method="newton")

    def test_evaluation_trace_recorded(self, paper_sample_small):
        s = paper_sample_small
        res = NumericalOptimizationSelector(n_restarts=2, seed=1).select(s.x, s.y)
        assert res.n_evaluations == len(res.bandwidths) == len(res.scores)
        assert res.n_evaluations > 10  # optimisation is evaluation-hungry

    def test_restart_dispersion_possible(self):
        # §III: the objective is not concave; different restarts may land
        # on different local optima.  We only require the machinery to
        # track each restart separately.
        s = sine_dgp(300, seed=5)
        res = NumericalOptimizationSelector(n_restarts=4, seed=2).select(s.x, s.y)
        assert len(res.diagnostics["restarts"]) == 4
        hs = [r["h"] for r in res.diagnostics["restarts"]]
        assert min(hs) > 0.0

    def test_explicit_bounds_respected(self, paper_sample_small):
        s = paper_sample_small
        res = NumericalOptimizationSelector(
            method="brent", bounds=(0.05, 0.3), n_restarts=1
        ).select(s.x, s.y)
        assert 0.05 <= res.bandwidth <= 0.3

    def test_invalid_bounds_rejected(self, paper_sample_small):
        s = paper_sample_small
        sel = NumericalOptimizationSelector(bounds=(0.5, 0.1))
        with pytest.raises(ValidationError):
            sel.select(s.x, s.y)

    def test_parallel_objective_matches_serial(self, paper_sample_small):
        s = paper_sample_small
        serial = NumericalOptimizationSelector(
            n_restarts=1, seed=3, workers=1, maxiter=40
        ).select(s.x, s.y)
        parallel = NumericalOptimizationSelector(
            n_restarts=1, seed=3, workers=2, maxiter=40
        ).select(s.x, s.y)
        assert serial.bandwidth == pytest.approx(parallel.bandwidth, rel=1e-6)
        assert parallel.backend == "multicore"


class TestRuleOfThumb:
    def test_bandwidth_formula_gaussian(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 2.0, 1000)
        h = rule_of_thumb_bandwidth(x, "gaussian")
        sd = np.std(x, ddof=1)
        q75, q25 = np.percentile(x, [75, 25])
        spread = min(sd, (q75 - q25) / 1.349)
        assert h == pytest.approx(1.06 * spread * 1000 ** (-0.2))

    def test_kernel_rescaling_enlarges_compact_kernels(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        h_gauss = rule_of_thumb_bandwidth(x, "gaussian")
        h_epa = rule_of_thumb_bandwidth(x, "epanechnikov")
        # Epanechnikov canonical bandwidth is ~2.3x the Gaussian's.
        assert h_epa > 2.0 * h_gauss

    def test_zero_spread_rejected(self):
        with pytest.raises(SelectionError):
            rule_of_thumb_bandwidth(np.ones(10))

    def test_selector_reports_cv_score(self, paper_sample_medium):
        s = paper_sample_medium
        res = RuleOfThumbSelector().select(s.x, s.y)
        assert res.method == "rule-of-thumb"
        assert res.score == pytest.approx(cv_score(s.x, s.y, res.bandwidth))
        assert res.n_evaluations == 1

    def test_rot_worse_than_cv_optimum_on_curved_data(self, paper_sample_medium):
        s = paper_sample_medium
        rot = RuleOfThumbSelector().select(s.x, s.y)
        grid = GridSearchSelector(n_bandwidths=50).select(s.x, s.y)
        assert rot.score >= grid.score
