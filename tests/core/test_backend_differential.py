"""Differential harness: every registered backend computes the same sweep.

Three tiers of agreement, each as strong as float semantics allow:

* **bit-for-bit within a dtype family** — numpy, multicore, blocked and
  blocked-shm all reduce the same per-row float64 contributions in strict
  row order (partition-independent ⇒ identical addition order at every
  block size and worker count), and gpusim (fast mode) vs gpusim-tiled
  share the float32 sum;
* **allclose across families** — python vs numpy (different accumulation
  order), float64 vs float32 curves;
* **identical optimum** — ``select_bandwidth`` lands on the exact same
  ``h_opt`` through all four vectorised backends.

Every comparison is run with tracing off *and* with an active
:class:`repro.obs.Tracer`, byte-comparing the two curves: observability
must never perturb the numbers it observes.

Hypothesis draws randomise n, k, kernel, and the data seed
(``derandomize=True`` keeps CI deterministic); dedicated cases cover the
adversarial grids — duplicate-distance ties, bandwidths beyond the data
range, near-zero bandwidths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.cuda_port  # noqa: F401 - registers gpusim + gpusim-tiled
from repro.core.api import select_bandwidth
from repro.core.backends import get_backend
from repro.core.blockwise import plan_for
from repro.core.fastgrid import cv_scores_fastgrid, cv_scores_fastgrid_python
from repro.obs import Tracer, use_tracer
from repro.parallel.pool import WorkerPool

# Registers the compiled backends; on a numba-less interpreter this is
# the numpy-fallback implementation — the differential wall still proves
# the dual-use kernel source produces the reference bits either way.
import repro.compiled  # noqa: F401,E402 - registers compiled backends

FAST_KERNELS = ("epanechnikov", "uniform")


@pytest.fixture(scope="module")
def shared_pool():
    with WorkerPool(2) as pool:
        yield pool


def _sample(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, n)
    return x, y


def _grid(x: np.ndarray, k: int) -> np.ndarray:
    spread = float(np.max(x) - np.min(x))
    return np.linspace(0.05 * spread, 0.75 * spread, k)


def _traced_and_untraced(fn) -> tuple[np.ndarray, np.ndarray]:
    """Run ``fn`` once with no tracer and once inside an active Tracer."""
    plain = fn()
    with use_tracer(Tracer()):
        traced = fn()
    return np.asarray(plain), np.asarray(traced)


draws = st.tuples(
    st.integers(8, 30).map(lambda m: 2 * m),  # even n in [16, 60]
    st.integers(3, 12),                        # k
    st.sampled_from(FAST_KERNELS),
    st.integers(0, 2**16),                     # data seed
)


class TestBitForBitWithinFamilies:
    """Same-precision backends must agree to the last bit."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_numpy_multicore_identical_float64(self, draw, shared_pool):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        numpy_backend = get_backend("numpy")
        multicore = get_backend("multicore")

        # chunk_rows = n//2 makes the serial chunk partition coincide with
        # the two-worker block partition, so the float64 sums add in the
        # same order — agreement is exact, not approximate.
        a_plain, a_traced = _traced_and_untraced(
            lambda: numpy_backend(x, y, grid, kernel, chunk_rows=n // 2)
        )
        b_plain, b_traced = _traced_and_untraced(
            lambda: multicore(x, y, grid, kernel, pool=shared_pool)
        )
        assert a_plain.tobytes() == a_traced.tobytes()
        assert b_plain.tobytes() == b_traced.tobytes()
        assert a_plain.tobytes() == b_plain.tobytes()

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_compiled_matches_numpy_identical_float64(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = np.asarray(get_backend("numpy")(x, y, grid, kernel))
        got_plain, got_traced = _traced_and_untraced(
            lambda: get_backend("compiled")(x, y, grid, kernel)
        )
        assert got_plain.tobytes() == got_traced.tobytes()
        assert got_plain.tobytes() == ref.tobytes()

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_gpusim_and_tiled_identical_float32(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        gpusim = get_backend("gpusim")
        tiled = get_backend("gpusim-tiled")

        # mode="fast" and tile_rows >= n both reduce to one float32 block
        # sum over [0, n): the same arithmetic, so the same bits.
        a_plain, a_traced = _traced_and_untraced(
            lambda: gpusim(x, y, grid, kernel, mode="fast")
        )
        b_plain, b_traced = _traced_and_untraced(
            lambda: tiled(x, y, grid, kernel, tile_rows=n)
        )
        assert a_plain.tobytes() == a_traced.tobytes()
        assert b_plain.tobytes() == b_traced.tobytes()
        assert a_plain.tobytes() == b_plain.tobytes()


def _adversarial_block_sizes(n: int) -> tuple[int, ...]:
    """Degenerate partitions: single rows, one fat + one sliver (B = n-1),
    a size that does not divide n, exactly one block, and B > n."""
    return (1, n - 1, n // 3 + 1, n, 2 * n)


class TestBlockwiseOutOfCore:
    """The out-of-core sweeps must reproduce numpy to the last bit at
    EVERY partition — the strict row-order fold is the whole contract."""

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_blocked_matches_numpy_at_adversarial_block_sizes(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = np.asarray(get_backend("numpy")(x, y, grid, kernel))
        blocked = get_backend("blocked")
        for rows in _adversarial_block_sizes(n):
            got_plain, got_traced = _traced_and_untraced(
                lambda rows=rows: blocked(x, y, grid, kernel, block_rows=rows)
            )
            assert got_plain.tobytes() == got_traced.tobytes(), f"B={rows}"
            assert got_plain.tobytes() == ref.tobytes(), f"B={rows}"

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_blocked_compiled_matches_numpy_at_adversarial_block_sizes(
        self, draw
    ):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = np.asarray(get_backend("numpy")(x, y, grid, kernel))
        blocked_compiled = get_backend("blocked-compiled")
        for rows in _adversarial_block_sizes(n):
            got_plain, got_traced = _traced_and_untraced(
                lambda rows=rows: blocked_compiled(
                    x, y, grid, kernel, block_rows=rows
                )
            )
            assert got_plain.tobytes() == got_traced.tobytes(), f"B={rows}"
            assert got_plain.tobytes() == ref.tobytes(), f"B={rows}"

    @settings(max_examples=3, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_blocked_shm_matches_numpy_at_adversarial_partitions(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = np.asarray(get_backend("numpy")(x, y, grid, kernel))
        shm = get_backend("blocked-shm")
        for rows, workers in (
            (1, 2),            # one row per block, striped over two workers
            (n - 1, 2),        # a fat block and a one-row sliver
            (n // 3 + 1, 3),   # B does not divide n
            (n, 1),            # single block on the serial in-parent path
        ):
            got_plain, got_traced = _traced_and_untraced(
                lambda rows=rows, workers=workers: shm(
                    x, y, grid, kernel, block_rows=rows, workers=workers
                )
            )
            tag = f"B={rows}, workers={workers}"
            assert got_plain.tobytes() == got_traced.tobytes(), tag
            assert got_plain.tobytes() == ref.tobytes(), tag

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_budget_planned_partition_is_still_bit_identical(self, draw):
        # Let the *planner* pick the partition from a byte budget — the
        # curve must not depend on where the budget happened to land.
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = np.asarray(get_backend("numpy")(x, y, grid, kernel))
        plan = plan_for(n, k, kernel)
        assert plan.block_rows >= 1
        got = np.asarray(get_backend("blocked")(x, y, grid, kernel))
        assert got.tobytes() == ref.tobytes()


class TestCrossFamilyAgreement:
    """Different accumulation orders / precisions agree to tolerance."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_python_matches_numpy(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = cv_scores_fastgrid(x, y, grid, kernel)
        alt_plain, alt_traced = _traced_and_untraced(
            lambda: cv_scores_fastgrid_python(x, y, grid, kernel)
        )
        assert alt_plain.tobytes() == alt_traced.tobytes()
        np.testing.assert_allclose(alt_plain, ref, rtol=1e-9)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_float32_family_tracks_float64_curve(self, draw):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        grid = _grid(x, k)
        ref = cv_scores_fastgrid(x, y, grid, kernel)
        f32 = get_backend("gpusim")(x, y, grid, kernel, mode="fast")
        np.testing.assert_allclose(f32, ref, rtol=1e-4, atol=1e-6)

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(draw=draws)
    def test_all_backends_agree_on_h_opt(self, draw, shared_pool):
        n, k, kernel, seed = draw
        x, y = _sample(n, seed)
        chosen = {}
        for backend, options in (
            ("numpy", {}),
            ("python", {}),
            ("multicore", {"pool": shared_pool}),
            ("blocked", {"block_rows": 7}),
            ("blocked-shm", {"block_rows": 7, "workers": 2}),
            ("gpusim", {"mode": "fast"}),
            ("gpusim-tiled", {}),
            ("compiled", {}),
            ("blocked-compiled", {"block_rows": 7}),
        ):
            result = select_bandwidth(
                x, y, backend=backend, n_bandwidths=k, kernel=kernel,
                **options,
            )
            chosen[backend] = result.bandwidth
        assert len(set(chosen.values())) == 1, chosen


class TestAdversarialGrids:
    """Degenerate inputs where the sweeps could plausibly diverge."""

    def _compare_all(self, x, y, grid, kernel="epanechnikov"):
        ref = cv_scores_fastgrid(x, y, grid, kernel)
        alt = cv_scores_fastgrid_python(x, y, grid, kernel)
        f32 = get_backend("gpusim")(x, y, grid, kernel, mode="fast")
        # The out-of-core sweep hits the same degenerate windows through
        # an awkward partition (B = 5 never divides these samples evenly)
        # and must still agree to the last bit, non-finite lanes included.
        blk = np.asarray(
            get_backend("blocked")(x, y, grid, kernel, block_rows=5)
        )
        assert blk.tobytes() == ref.tobytes()
        # The compiled engine walks the same degenerate windows through
        # scalar loops (binary search + running sums) and must land on
        # the reference bits, non-finite lanes included.
        comp = np.asarray(get_backend("compiled")(x, y, grid, kernel))
        assert comp.tobytes() == ref.tobytes()
        blk_comp = np.asarray(
            get_backend("blocked-compiled")(x, y, grid, kernel, block_rows=5)
        )
        assert blk_comp.tobytes() == ref.tobytes()
        finite = np.isfinite(ref)
        assert (np.isfinite(alt) == finite).all()
        assert (np.isfinite(f32) == finite).all()
        np.testing.assert_allclose(alt[finite], ref[finite], rtol=1e-9)
        np.testing.assert_allclose(
            f32[finite], ref[finite], rtol=1e-4, atol=1e-6
        )
        with use_tracer(Tracer()):
            traced = cv_scores_fastgrid(x, y, grid, kernel)
        assert traced.tobytes() == ref.tobytes()
        return ref

    def test_duplicate_distance_ties(self):
        # Repeated x values put many observations at distance exactly 0
        # and equal positive distances — searchsorted tie-breaking
        # territory for the sorted sweep.
        x = np.repeat(np.linspace(0.0, 1.0, 8), 4)
        rng = np.random.default_rng(7)
        y = x**2 + rng.normal(0.0, 0.1, x.shape[0])
        grid = np.array([0.1, 0.125, 0.25, 0.5])
        self._compare_all(x, y, grid)

    def test_bandwidth_larger_than_data_range(self):
        # Every window spans the whole sample: the sweep degenerates to
        # the global (leave-one-out) mean for the uniform kernel.
        x, y = _sample(32, seed=3)
        spread = float(np.max(x) - np.min(x))
        grid = np.array([2.0 * spread, 10.0 * spread, 100.0 * spread])
        self._compare_all(x, y, grid, kernel="uniform")

    def test_near_zero_bandwidth_empty_windows(self):
        # Bandwidths far below the minimum spacing leave every window
        # empty after the LOO correction: the guarded CV values must be
        # non-finite in the same positions for every backend.
        x = np.linspace(0.0, 1.0, 24)
        rng = np.random.default_rng(11)
        y = np.cos(x) + rng.normal(0.0, 0.05, 24)
        grid = np.array([1e-12, 1e-9, 0.2])
        ref = self._compare_all(x, y, grid)
        assert np.isfinite(ref[2])

    def test_empty_window_counter_increments(self):
        x = np.linspace(0.0, 1.0, 24)
        y = x.copy()
        grid = np.array([1e-12, 0.3])
        tracer = Tracer()
        with use_tracer(tracer):
            cv_scores_fastgrid(x, y, grid, "epanechnikov")
        assert tracer.counters().get("numeric.empty_windows", 0.0) > 0


class TestCompiledFloat32Contract:
    """The float32 fast path's documented tolerance contract.

    The compiled float32 kernel forms distances in float64 and rounds on
    store (matching numpy's ``astype``) and accumulates in float64
    (matching ``bincount``/``cumsum``); for the polynomial kernels in the
    fast-grid family the curves are bit-identical in practice (the shared
    ``int_power`` multiply chain is exactly rounded in float32 too), but
    the *contract* is weaker — ``h_opt`` lands on the same grid index and
    the curves agree to ``rtol=1e-5`` — as headroom for a future JIT
    with fused multiplies or a different float32 promotion rule.
    """

    SEEDS = (0, 1, 7, 42, 1234)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_float32_h_opt_same_grid_index(self, seed, kernel):
        x, y = _sample(48, seed)
        grid = _grid(x, 10)
        ref32 = cv_scores_fastgrid(x, y, grid, kernel, dtype="float32")
        got32 = cv_scores_fastgrid(
            x, y, grid, kernel, dtype="float32", engine="compiled"
        )
        assert int(np.argmin(got32)) == int(np.argmin(ref32))
        np.testing.assert_allclose(got32, ref32, rtol=1e-5)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_float32_traced_equals_untraced(self, seed):
        x, y = _sample(40, seed)
        grid = _grid(x, 8)
        plain, traced = _traced_and_untraced(
            lambda: cv_scores_fastgrid(
                x, y, grid, "epanechnikov", dtype="float32", engine="compiled"
            )
        )
        assert plain.tobytes() == traced.tobytes()
