"""Tests for the select_bandwidth convenience front-end."""

import numpy as np
import pytest

from repro.core import BandwidthGrid, select_bandwidth
from repro.exceptions import ValidationError


class TestMethodDispatch:
    def test_default_is_grid_search(self, paper_sample_medium):
        s = paper_sample_medium
        res = select_bandwidth(s.x, s.y)
        assert res.method == "grid-search"
        assert res.n_evaluations == 50

    @pytest.mark.parametrize("alias", ["grid", "grid-search", "fast-grid"])
    def test_grid_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method=alias, n_bandwidths=5)
        assert res.method == "grid-search"

    @pytest.mark.parametrize("alias", ["numeric", "numerical", "np"])
    def test_numeric_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(
            s.x, s.y, method=alias, n_restarts=1, maxiter=30
        )
        assert res.method == "numerical-optimization"

    @pytest.mark.parametrize("alias", ["rot", "rule-of-thumb"])
    def test_rot_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method=alias)
        assert res.method == "rule-of-thumb"

    def test_method_case_insensitive(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method="GRID", n_bandwidths=5)
        assert res.method == "grid-search"

    def test_unknown_method_rejected(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError, match="unknown method"):
            select_bandwidth(s.x, s.y, method="magic")


class TestOptionForwarding:
    def test_explicit_grid_used(self, paper_sample_small):
        s = paper_sample_small
        grid = BandwidthGrid(np.array([0.2, 0.4]))
        res = select_bandwidth(s.x, s.y, grid=grid)
        assert res.bandwidth in grid.values

    def test_kernel_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, kernel="triangular", n_bandwidths=5)
        assert res.kernel == "triangular"

    def test_backend_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, backend="python", n_bandwidths=5)
        assert res.backend == "python"

    def test_refine_rounds_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, n_bandwidths=8, refine_rounds=1)
        assert res.n_evaluations == 16

    def test_docstring_example_runs(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 200)
        y = 0.5 * x + 10 * x**2 + rng.uniform(0, 0.5, 200)
        res = select_bandwidth(x, y, n_bandwidths=50)
        assert 0 < res.bandwidth <= 1.0
