"""Tests for the select_bandwidth convenience front-end."""

import numpy as np
import pytest

from repro.core import BandwidthGrid, select_bandwidth
from repro.exceptions import ValidationError


class TestMethodDispatch:
    def test_default_is_grid_search(self, paper_sample_medium):
        s = paper_sample_medium
        res = select_bandwidth(s.x, s.y)
        assert res.method == "grid-search"
        assert res.n_evaluations == 50

    @pytest.mark.parametrize("alias", ["grid", "grid-search", "fast-grid"])
    def test_grid_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method=alias, n_bandwidths=5)
        assert res.method == "grid-search"

    @pytest.mark.parametrize("alias", ["numeric", "numerical", "np"])
    def test_numeric_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(
            s.x, s.y, method=alias, n_restarts=1, maxiter=30
        )
        assert res.method == "numerical-optimization"

    @pytest.mark.parametrize("alias", ["rot", "rule-of-thumb"])
    def test_rot_aliases(self, alias, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method=alias)
        assert res.method == "rule-of-thumb"

    def test_method_case_insensitive(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, method="GRID", n_bandwidths=5)
        assert res.method == "grid-search"

    def test_unknown_method_rejected(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError, match="unknown method"):
            select_bandwidth(s.x, s.y, method="magic")


class TestMethodAliasTable:
    """Every entry in ``_METHOD_ALIASES`` is a working spelling."""

    def _aliases(self) -> dict[str, str]:
        from repro.core.api import _METHOD_ALIASES

        return dict(_METHOD_ALIASES)

    def test_table_covers_all_four_selectors(self):
        assert set(self._aliases().values()) == {
            "grid",
            "numeric",
            "rule-of-thumb",
            "bagged",
        }

    def test_every_alias_resolves(self, paper_sample_small):
        s = paper_sample_small
        expected_method = {
            "grid": "grid-search",
            "numeric": "numerical-optimization",
            "rule-of-thumb": "rule-of-thumb",
            "bagged": "bagged-cv",
        }
        per_canonical_kwargs = {
            "grid": {"n_bandwidths": 5},
            "numeric": {"n_restarts": 1, "maxiter": 20},
            "rule-of-thumb": {},
            "bagged": {"n_bandwidths": 5, "subsamples": 3},
        }
        for alias, canonical in self._aliases().items():
            res = select_bandwidth(
                s.x, s.y, method=alias, **per_canonical_kwargs[canonical]
            )
            assert res.method == expected_method[canonical], alias

    def test_aliases_are_case_insensitive(self, paper_sample_small):
        s = paper_sample_small
        kwargs_for = {
            "grid": {"n_bandwidths": 4},
            "numeric": {"n_restarts": 1, "maxiter": 20},
            "rule-of-thumb": {},
            "bagged": {"n_bandwidths": 4, "subsamples": 3},
        }
        for alias, canonical in self._aliases().items():
            res = select_bandwidth(
                s.x, s.y, method=alias.upper(), **kwargs_for[canonical]
            )
            assert res.bandwidth > 0, alias

    def test_unknown_method_error_lists_every_alias(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError) as err:
            select_bandwidth(s.x, s.y, method="nope")
        message = str(err.value)
        for alias in self._aliases():
            assert alias in message

    def test_rot_rejects_resilience(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError, match="resilience"):
            select_bandwidth(s.x, s.y, method="rot", resilience=True)

    def test_non_grid_rejects_resume(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError, match="resume"):
            select_bandwidth(
                s.x, s.y, method="rot", resume="checkpoint.npz"
            )


class TestArtifactCacheIntegration:
    def test_warm_call_returns_identical_result_without_sweep(
        self, paper_sample_small
    ):
        from repro.serving import ArtifactCache

        s = paper_sample_small
        cache = ArtifactCache(None)
        cold = select_bandwidth(s.x, s.y, n_bandwidths=6, cache=cache)
        warm = select_bandwidth(s.x, s.y, n_bandwidths=6, cache=cache)
        assert warm.bandwidth == cold.bandwidth
        assert warm.score == cold.score
        np.testing.assert_array_equal(warm.scores, cold.scores)
        assert warm.diagnostics["cache"] == "hit"
        assert "cache" not in cold.diagnostics
        assert cache.stats.hits_by_kind.get("selection") == 1

    def test_cache_key_distinguishes_backend(self, paper_sample_small):
        from repro.serving import ArtifactCache

        s = paper_sample_small
        cache = ArtifactCache(None)
        select_bandwidth(s.x, s.y, n_bandwidths=6, cache=cache)
        other = select_bandwidth(
            s.x, s.y, n_bandwidths=6, cache=cache, backend="python"
        )
        assert "cache" not in other.diagnostics

    def test_typed_resilience_config_accepted(self, paper_sample_small):
        from repro.resilience import ResilienceConfig

        s = paper_sample_small
        res = select_bandwidth(
            s.x,
            s.y,
            n_bandwidths=5,
            resilience=ResilienceConfig(fallback=False),
        )
        assert res.resilience is not None
        assert res.bandwidth > 0


class TestOptionForwarding:
    def test_explicit_grid_used(self, paper_sample_small):
        s = paper_sample_small
        grid = BandwidthGrid(np.array([0.2, 0.4]))
        res = select_bandwidth(s.x, s.y, grid=grid)
        assert res.bandwidth in grid.values

    def test_kernel_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, kernel="triangular", n_bandwidths=5)
        assert res.kernel == "triangular"

    def test_backend_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, backend="python", n_bandwidths=5)
        assert res.backend == "python"

    def test_refine_rounds_forwarded(self, paper_sample_small):
        s = paper_sample_small
        res = select_bandwidth(s.x, s.y, n_bandwidths=8, refine_rounds=1)
        assert res.n_evaluations == 16

    def test_docstring_example_runs(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 200)
        y = 0.5 * x + 10 * x**2 + rng.uniform(0, 0.5, 200)
        res = select_bandwidth(x, y, n_bandwidths=50)
        assert 0 < res.bandwidth <= 1.0
