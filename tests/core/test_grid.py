"""Unit tests for BandwidthGrid."""

import numpy as np
import pytest

from repro.core.grid import (
    MAX_CONSTANT_MEMORY_BANDWIDTHS,
    BandwidthGrid,
    default_grid,
)
from repro.exceptions import BandwidthGridError


class TestConstruction:
    def test_direct_values(self):
        g = BandwidthGrid(np.array([0.1, 0.2, 0.3]))
        assert len(g) == 3
        assert g.minimum == 0.1 and g.maximum == pytest.approx(0.3)

    def test_direct_values_validated(self):
        with pytest.raises(BandwidthGridError):
            BandwidthGrid(np.array([0.3, 0.2]))

    def test_evenly_spaced(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        assert len(g) == 10
        assert g.spacing == pytest.approx(0.1)

    def test_evenly_spaced_single_point(self):
        g = BandwidthGrid.evenly_spaced(0.5, 1.0, 1)
        np.testing.assert_array_equal(g.values, [1.0])

    def test_evenly_spaced_rejects_bad_range(self):
        with pytest.raises(BandwidthGridError):
            BandwidthGrid.evenly_spaced(1.0, 0.5, 5)
        with pytest.raises(BandwidthGridError):
            BandwidthGrid.evenly_spaced(0.0, 1.0, 5)

    def test_equal_min_max_with_k_gt_1_rejected(self):
        with pytest.raises(BandwidthGridError, match="duplicate"):
            BandwidthGrid.evenly_spaced(0.5, 0.5, 3)


class TestPaperDefault:
    """§IV: max = domain of X, min = domain / k, evenly spaced."""

    def test_unit_domain_gives_j_over_k(self):
        x = np.array([0.0, 0.3, 1.0])
        g = BandwidthGrid.for_sample(x, 4)
        np.testing.assert_allclose(g.values, [0.25, 0.5, 0.75, 1.0])

    def test_domain_scales_grid(self):
        x = np.array([2.0, 4.0])
        g = BandwidthGrid.for_sample(x, 2)
        np.testing.assert_allclose(g.values, [1.0, 2.0])

    def test_zero_domain_rejected(self):
        with pytest.raises(BandwidthGridError, match="zero domain"):
            BandwidthGrid.for_sample(np.array([1.0, 1.0, 1.0]), 5)

    def test_default_grid_k50(self):
        x = np.linspace(0, 1, 100)
        assert len(default_grid(x)) == 50


class TestProtocol:
    def test_iteration_and_indexing(self):
        g = BandwidthGrid.evenly_spaced(0.1, 0.3, 3)
        assert list(g) == pytest.approx([0.1, 0.2, 0.3])
        assert g[1] == pytest.approx(0.2)

    def test_constant_memory_check(self):
        small = BandwidthGrid.evenly_spaced(0.001, 1.0, MAX_CONSTANT_MEMORY_BANDWIDTHS)
        big = BandwidthGrid.evenly_spaced(0.001, 1.0, MAX_CONSTANT_MEMORY_BANDWIDTHS + 1)
        assert small.fits_constant_memory()
        assert not big.fits_constant_memory()


class TestRefinement:
    """§IV-A: progressively smaller ranges around the incumbent optimum."""

    def test_refined_grid_brackets_h(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        fine = g.refine_around(0.5)
        assert fine.minimum <= 0.5 <= fine.maximum
        assert len(fine) == len(g)

    def test_refined_range_is_narrower(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        fine = g.refine_around(0.5, shrink=10.0)
        assert (fine.maximum - fine.minimum) <= (g.maximum - g.minimum) / 5.0

    def test_refined_grid_stays_positive_at_lower_edge(self):
        g = BandwidthGrid.evenly_spaced(0.01, 1.0, 50)
        fine = g.refine_around(g.minimum)
        assert fine.minimum > 0.0

    def test_h_outside_grid_rejected(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        with pytest.raises(BandwidthGridError):
            g.refine_around(2.0)

    def test_shrink_must_exceed_one(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        with pytest.raises(BandwidthGridError):
            g.refine_around(0.5, shrink=1.0)

    def test_repeated_refinement_converges(self):
        g = BandwidthGrid.evenly_spaced(0.1, 1.0, 10)
        target = 0.4321
        for _ in range(4):
            g = g.refine_around(target)
        # After 4 rounds of 10x shrinkage, grid spacing ~ 1e-5.
        assert g.spacing < 1e-4
        assert g.minimum <= target <= g.maximum
