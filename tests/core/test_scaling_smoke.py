"""Nightly n = 100,000 scaling smoke for the blocked backend.

Five times the paper's hard ceiling, inside a 2 GiB working-set budget.
Minutes of sorting, so it is gated twice: the ``scale`` marker (nightly
CI selects ``-m scale``) and ``REPRO_SCALE=1`` (so a plain tier-1
``pytest -x -q`` skips it even when the marker filter is absent).
"""

from __future__ import annotations

import os
import tracemalloc

import numpy as np
import pytest

from repro.core.api import select_bandwidth
from repro.core.blockwise import plan_for

pytestmark = [
    pytest.mark.scale,
    pytest.mark.skipif(
        os.environ.get("REPRO_SCALE", "") in ("", "0"),
        reason="set REPRO_SCALE=1 to run the n=100,000 scaling smoke",
    ),
]

N = 100_000
K = 25
BUDGET = "2GiB"


def test_n100k_selection_inside_two_gib() -> None:
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, N)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, N)

    plan = plan_for(N, K, "epanechnikov", memory_budget=BUDGET)
    assert plan.predicted_peak_bytes <= 2 * 1024**3

    tracemalloc.start()
    try:
        result = select_bandwidth(
            x, y, backend="blocked", n_bandwidths=K, memory_budget=BUDGET
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # The selection is real (finite optimum away from the grid edges is
    # not guaranteed, but finiteness and a sane positive bandwidth are).
    assert np.isfinite(result.score)
    assert result.bandwidth > 0
    # The planner's model bounds the measured peak — same 1.5x contract
    # the fast tests enforce at n = 20,000 — and both sit far inside the
    # budget that a same-size all-at-once sweep would blow through.
    assert peak <= 1.5 * plan.predicted_peak_bytes
    assert peak <= 2 * 1024**3
