"""Tests for the fast sorted grid search — the paper's primary contribution.

The central invariant: for every compact polynomial kernel, both fast
implementations must reproduce the dense per-bandwidth evaluation of
``CV_lc`` *exactly* (up to float64 round-off) on any data and any grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fastgrid import (
    cv_scores_fastgrid,
    cv_scores_fastgrid_python,
    fastgrid_block_sums,
    require_fast_grid_kernel,
)
from repro.core.grid import BandwidthGrid
from repro.core.loocv import cv_scores_dense_grid
from repro.data import paper_dgp
from repro.exceptions import ValidationError
from repro.kernels import fast_grid_kernels

POLY_KERNELS = sorted(fast_grid_kernels())


class TestEligibility:
    def test_polynomial_kernels_accepted(self):
        for name in POLY_KERNELS:
            assert require_fast_grid_kernel(name).name == name

    def test_gaussian_rejected(self):
        with pytest.raises(ValidationError, match="does not support"):
            require_fast_grid_kernel("gaussian")

    def test_cosine_rejected(self):
        with pytest.raises(ValidationError, match="does not support"):
            require_fast_grid_kernel("cosine")


@pytest.mark.parametrize("kernel", POLY_KERNELS)
class TestEquivalenceWithDense:
    """Fast grid == dense grid for every polynomial kernel."""

    def test_vectorised_matches_dense(self, kernel, paper_sample_small, small_grid):
        s = paper_sample_small
        fast = cv_scores_fastgrid(s.x, s.y, small_grid.values, kernel)
        dense = cv_scores_dense_grid(s.x, s.y, small_grid.values, kernel)
        np.testing.assert_allclose(fast, dense, rtol=1e-10, atol=1e-12)

    def test_python_sweep_matches_dense(self, kernel, paper_sample_small, small_grid):
        s = paper_sample_small
        swept = cv_scores_fastgrid_python(s.x, s.y, small_grid.values, kernel)
        dense = cv_scores_dense_grid(s.x, s.y, small_grid.values, kernel)
        np.testing.assert_allclose(swept, dense, rtol=1e-8, atol=1e-10)


class TestEquivalenceProperties:
    @given(
        n=st.integers(5, 40),
        k=st.integers(1, 15),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_equals_dense_on_random_data(self, n, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, n)
        y = rng.normal(0, 1, n)
        grid = BandwidthGrid.for_sample(x, k) if x.max() > x.min() else None
        if grid is None:
            return
        fast = cv_scores_fastgrid(x, y, grid.values)
        dense = cv_scores_dense_grid(x, y, grid.values)
        np.testing.assert_allclose(fast, dense, rtol=1e-9, atol=1e-11)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_duplicate_x_values_handled(self, seed):
        # Ties in x: distances of exactly 0 between distinct observations
        # must be included in every window without double-counting self.
        rng = np.random.default_rng(seed)
        x = np.repeat(rng.uniform(0, 1, 6), 2)
        y = rng.normal(0, 1, 12)
        grid = np.array([0.1, 0.5, 1.0])
        fast = cv_scores_fastgrid(x, y, grid)
        dense = cv_scores_dense_grid(x, y, grid)
        np.testing.assert_allclose(fast, dense, rtol=1e-9, atol=1e-11)

    def test_bandwidth_on_exact_distance_boundary(self):
        # d == h exactly: |u| <= 1 includes the point (weight 0 for the
        # Epanechnikov but 0.5 for the uniform kernel) — both paths must
        # agree on the convention.
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([1.0, 5.0, 9.0])
        grid = np.array([0.5, 1.0])
        for kernel in ("epanechnikov", "uniform"):
            fast = cv_scores_fastgrid(x, y, grid, kernel)
            dense = cv_scores_dense_grid(x, y, grid, kernel)
            np.testing.assert_allclose(fast, dense, rtol=1e-12)


class TestWindowSemantics:
    def test_scores_monotone_data_smoke(self, paper_sample_medium, medium_grid):
        s = paper_sample_medium
        scores = cv_scores_fastgrid(s.x, s.y, medium_grid.values)
        assert np.isfinite(scores).all()
        # Optimal bandwidth on curved data is interior, not the largest.
        assert np.argmin(scores) < len(medium_grid) - 1

    def test_empty_windows_contribute_zero(self):
        # Smallest bandwidth so small no window contains a neighbour:
        # every M(X_i) = 0 and the score is exactly 0.
        x = np.array([0.0, 0.4, 0.8, 1.2])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        grid = np.array([0.01, 0.5])
        scores = cv_scores_fastgrid(x, y, grid)
        assert scores[0] == 0.0
        assert scores[1] > 0.0

    def test_chunk_rows_invariance(self, paper_sample_medium, medium_grid):
        s = paper_sample_medium
        a = cv_scores_fastgrid(s.x, s.y, medium_grid.values, chunk_rows=400)
        b = cv_scores_fastgrid(s.x, s.y, medium_grid.values, chunk_rows=7)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_float32_mode_close_to_float64(self, paper_sample_medium, medium_grid):
        s = paper_sample_medium
        a = cv_scores_fastgrid(s.x, s.y, medium_grid.values, dtype="float64")
        b = cv_scores_fastgrid(s.x, s.y, medium_grid.values, dtype="float32")
        np.testing.assert_allclose(a, b, rtol=1e-3)


class TestBlockSums:
    def test_blocks_partition_the_score(self, paper_sample_medium, medium_grid):
        s = paper_sample_medium
        n = s.n
        grid = medium_grid.values
        whole = cv_scores_fastgrid(s.x, s.y, grid) * n
        parts = sum(
            fastgrid_block_sums(s.x, s.y, grid, "epanechnikov", lo, hi)
            for lo, hi in [(0, 123), (123, 300), (300, n)]
        )
        np.testing.assert_allclose(whole, parts, rtol=1e-12)

    def test_invalid_block_rejected(self, paper_sample_small, small_grid):
        s = paper_sample_small
        with pytest.raises(ValidationError):
            fastgrid_block_sums(
                s.x, s.y, small_grid.values, "epanechnikov", 10, 5
            )
        with pytest.raises(ValidationError):
            fastgrid_block_sums(
                s.x, s.y, small_grid.values, "epanechnikov", 0, s.n + 1
            )


class TestShiftInvariance:
    """CV_lc depends on X only through differences and on Y through
    residuals around local means: shifting X, and shifting Y by a
    constant, must leave the whole CV curve unchanged."""

    def test_x_shift_invariance(self, paper_sample_small, small_grid):
        s = paper_sample_small
        base = cv_scores_fastgrid(s.x, s.y, small_grid.values)
        shifted = cv_scores_fastgrid(s.x + 37.5, s.y, small_grid.values)
        np.testing.assert_allclose(base, shifted, rtol=1e-7)

    def test_y_shift_invariance(self, paper_sample_small, small_grid):
        s = paper_sample_small
        base = cv_scores_fastgrid(s.x, s.y, small_grid.values)
        shifted = cv_scores_fastgrid(s.x, s.y - 11.0, small_grid.values)
        np.testing.assert_allclose(base, shifted, rtol=1e-7, atol=1e-12)

    def test_y_scale_quadratic(self, paper_sample_small, small_grid):
        s = paper_sample_small
        base = cv_scores_fastgrid(s.x, s.y, small_grid.values)
        scaled = cv_scores_fastgrid(s.x, 3.0 * s.y, small_grid.values)
        np.testing.assert_allclose(scaled, 9.0 * base, rtol=1e-9)

    def test_joint_xh_scale_invariance(self, paper_sample_small, small_grid):
        s = paper_sample_small
        base = cv_scores_fastgrid(s.x, s.y, small_grid.values)
        scaled = cv_scores_fastgrid(2.0 * s.x, s.y, 2.0 * small_grid.values)
        np.testing.assert_allclose(base, scaled, rtol=1e-9)
