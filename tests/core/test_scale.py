"""Tests for the scale-factor parameterisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scale import bandwidth_to_scale, robust_spread, scale_to_bandwidth
from repro.exceptions import SelectionError, ValidationError


class TestRobustSpread:
    def test_normal_sample_near_sigma(self):
        x = np.random.default_rng(0).normal(0, 2.0, 20000)
        assert robust_spread(x) == pytest.approx(2.0, rel=0.05)

    def test_outliers_do_not_blow_it_up(self):
        rng = np.random.default_rng(1)
        clean = rng.normal(size=1000)
        dirty = np.concatenate([clean, [1e6]])
        assert robust_spread(dirty) < 2.0

    def test_zero_spread_rejected(self):
        with pytest.raises(SelectionError):
            robust_spread(np.ones(10))

    def test_needs_enough_data(self):
        with pytest.raises(ValidationError):
            robust_spread(np.array([1.0]))


class TestConversions:
    def test_roundtrip(self, rng):
        x = rng.uniform(0, 1, 500)
        for h in (0.01, 0.2, 1.5):
            scale = bandwidth_to_scale(h, x)
            assert scale_to_bandwidth(scale, x) == pytest.approx(h)

    @given(h=st.floats(1e-4, 10.0), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, h, seed):
        x = np.random.default_rng(seed).uniform(0, 1, 50)
        assert scale_to_bandwidth(bandwidth_to_scale(h, x), x) == pytest.approx(
            h, rel=1e-12
        )

    def test_unit_scale_is_normal_reference_rate(self):
        x = np.random.default_rng(2).normal(0, 1.0, 10000)
        h = scale_to_bandwidth(1.0, x)
        assert h == pytest.approx(robust_spread(x) * 10000 ** (-0.2))

    def test_dimension_adjusts_rate(self):
        x = np.random.default_rng(3).uniform(0, 1, 1000)
        h1 = scale_to_bandwidth(1.0, x, dimensions=1)
        h2 = scale_to_bandwidth(1.0, x, dimensions=2)
        assert h2 > h1  # n^{-1/6} > n^{-1/5}

    def test_validation(self, rng):
        x = rng.uniform(0, 1, 50)
        with pytest.raises(ValidationError):
            bandwidth_to_scale(0.0, x)
        with pytest.raises(ValidationError):
            scale_to_bandwidth(-1.0, x)
        with pytest.raises(ValidationError):
            bandwidth_to_scale(0.1, x, dimensions=0)

    def test_cv_selected_scale_factor_below_rot(self):
        # On the curved paper DGP the CV bandwidth is far below the
        # normal-reference rate: scale factor well under 1.
        from repro.core import GridSearchSelector
        from repro.data import paper_dgp

        s = paper_dgp(1000, seed=0)
        res = GridSearchSelector(n_bandwidths=50).select(s.x, s.y)
        assert bandwidth_to_scale(res.bandwidth, s.x) < 0.8
