"""Tests for the grid-backend registry and dispatch."""

import numpy as np
import pytest

from repro.core.backends import (
    BACKEND_REGISTRY,
    get_backend,
    list_backends,
    register_backend,
)
from repro.exceptions import BackendError


class TestRegistry:
    def test_builtin_backends_present(self):
        names = set(list_backends())
        assert {"python", "numpy", "multicore"} <= names

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("fortran")

    def test_gpusim_lazily_registered(self):
        backend = get_backend("gpusim")
        assert callable(backend)
        assert "gpusim" in list_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError, match="already registered"):
            register_backend("numpy", lambda *a, **k: None)

    def test_register_and_overwrite_custom(self):
        sentinel = lambda *a, **k: np.zeros(1)  # noqa: E731
        try:
            register_backend("custom-test", sentinel)
            assert get_backend("custom-test") is sentinel
            replacement = lambda *a, **k: np.ones(1)  # noqa: E731
            register_backend("custom-test", replacement, overwrite=True)
            assert get_backend("custom-test") is replacement
        finally:
            BACKEND_REGISTRY.pop("custom-test", None)


class TestDispatchSemantics:
    def test_all_backends_agree(self, paper_sample_small, small_grid):
        s = paper_sample_small
        reference = None
        for name in ("python", "numpy", "multicore"):
            backend = get_backend(name)
            scores = backend(s.x, s.y, small_grid.values, "epanechnikov")
            if reference is None:
                reference = scores
            else:
                np.testing.assert_allclose(scores, reference, rtol=1e-8)

    def test_numpy_backend_dense_fallback_for_gaussian(
        self, paper_sample_small, small_grid
    ):
        backend = get_backend("numpy")
        s = paper_sample_small
        scores = backend(s.x, s.y, small_grid.values, "gaussian")
        assert np.isfinite(scores).all()

    def test_multicore_backend_dense_fallback_for_cosine(
        self, paper_sample_small, small_grid
    ):
        backend = get_backend("multicore")
        s = paper_sample_small
        scores = backend(s.x, s.y, small_grid.values, "cosine", workers=2)
        assert np.isfinite(scores).all()

    def test_multicore_accepts_external_pool(self, paper_sample_small, small_grid):
        from repro.parallel import WorkerPool

        backend = get_backend("multicore")
        s = paper_sample_small
        with WorkerPool(2) as pool:
            a = backend(s.x, s.y, small_grid.values, "epanechnikov", pool=pool)
            b = backend(s.x, s.y, small_grid.values, "epanechnikov", pool=pool)
        np.testing.assert_allclose(a, b)
