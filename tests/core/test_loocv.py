"""Tests for the LOO-CV objective — including hand-computed golden cases."""

import numpy as np
import pytest

from repro.core.loocv import (
    cv_score,
    cv_score_reference,
    cv_scores_dense_grid,
    dense_cv_block_sums,
    loo_estimates,
)
from repro.data import paper_dgp


class TestGoldenValues:
    """Hand calculations on tiny samples (the paper's §IV-C debugging
    method: 'sample sizes for which hand calculation was feasible')."""

    def test_three_equally_spaced_points_uniform_kernel(self):
        # x = 0, 0.5, 1; y = 0, 1, 4; h = 0.6 (uniform kernel, radius 1:
        # window |u| <= 1 means |dx| <= 0.6, so each endpoint sees only
        # the middle point, and the middle point sees both endpoints).
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([0.0, 1.0, 4.0])
        h = 0.6
        # g_-0 = 1 (only x=0.5); g_-1 = (0+4)/2 = 2; g_-2 = 1.
        expected = ((0.0 - 1.0) ** 2 + (1.0 - 2.0) ** 2 + (4.0 - 1.0) ** 2) / 3.0
        assert cv_score(x, y, h, "uniform") == pytest.approx(expected)
        assert cv_score_reference(x, y, h, "uniform") == pytest.approx(expected)

    def test_epanechnikov_weighting_by_hand(self):
        # x = 0, 0.5, 1; y = 1, 2, 3; h = 1.
        # For i=0: u = (0-0.5)/1 and (0-1)/1 -> weights K(0.5)=0.5625, K(1)=0.
        # g_-0 = 2. For i=1: both neighbours at u=0.5 -> g = (1+3)/2 = 2.
        # For i=2: symmetric to i=0 -> g = 2.
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([1.0, 2.0, 3.0])
        expected = ((1 - 2) ** 2 + (2 - 2) ** 2 + (3 - 2) ** 2) / 3.0
        assert cv_score(x, y, 1.0, "epanechnikov") == pytest.approx(expected)

    def test_empty_window_excluded_via_m_indicator(self):
        # A far outlier whose window contains no neighbour: M(X_i) = 0,
        # so it contributes nothing.
        x = np.array([0.0, 0.1, 0.2, 100.0])
        y = np.array([1.0, 2.0, 3.0, 999.0])
        h = 0.15
        score = cv_score(x, y, h, "epanechnikov")
        # Same data without the outlier, rescaled by the n in 1/n.
        inner = cv_score_reference(x[:3], y[:3], h, "epanechnikov")
        assert score == pytest.approx(inner * 3.0 / 4.0)


class TestLooEstimates:
    def test_matches_reference_loop(self, paper_sample_small):
        s = paper_sample_small
        h = 0.2
        g_loo, valid = loo_estimates(s.x, s.y, h)
        assert valid.all()
        # Manual check of a single observation.
        i = 7
        u = (s.x[i] - np.delete(s.x, i)) / h
        w = 0.75 * (1 - u**2) * (np.abs(u) <= 1)
        expected = (w * np.delete(s.y, i)).sum() / w.sum()
        assert g_loo[i] == pytest.approx(expected)

    def test_invalid_entries_are_nan(self):
        x = np.array([0.0, 0.1, 50.0])
        y = np.array([1.0, 2.0, 3.0])
        g_loo, valid = loo_estimates(x, y, 0.5)
        assert not valid[2]
        assert np.isnan(g_loo[2])

    def test_chunking_does_not_change_result(self, paper_sample_medium):
        s = paper_sample_medium
        full, _ = loo_estimates(s.x, s.y, 0.1)
        chunked, _ = loo_estimates(s.x, s.y, 0.1, chunk_rows=17)
        np.testing.assert_allclose(full, chunked)

    def test_nonpositive_bandwidth_rejected(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValueError):
            loo_estimates(s.x, s.y, 0.0)


class TestCvScore:
    def test_matches_reference(self, paper_sample_small):
        s = paper_sample_small
        for h in (0.05, 0.2, 0.8):
            assert cv_score(s.x, s.y, h) == pytest.approx(
                cv_score_reference(s.x, s.y, h)
            )

    def test_oversmoothing_hurts_on_curved_data(self, paper_sample_medium):
        s = paper_sample_medium
        # The paper's DGP is strongly curved: a huge bandwidth (global
        # mean) must score much worse than a moderate one.
        assert cv_score(s.x, s.y, 1.0) > 2.0 * cv_score(s.x, s.y, 0.1)

    def test_gaussian_kernel_supported(self, paper_sample_small):
        s = paper_sample_small
        val = cv_score(s.x, s.y, 0.2, "gaussian")
        assert np.isfinite(val) and val > 0.0


class TestDenseGrid:
    def test_matches_per_h_scores(self, paper_sample_small, small_grid):
        s = paper_sample_small
        grid_scores = cv_scores_dense_grid(s.x, s.y, small_grid.values)
        singles = [cv_score(s.x, s.y, h) for h in small_grid.values]
        np.testing.assert_allclose(grid_scores, singles)

    def test_chunking_invariance(self, paper_sample_medium, medium_grid):
        s = paper_sample_medium
        a = cv_scores_dense_grid(s.x, s.y, medium_grid.values)
        b = cv_scores_dense_grid(s.x, s.y, medium_grid.values, chunk_rows=23)
        np.testing.assert_allclose(a, b)

    def test_cosine_kernel_grid(self, paper_sample_small, small_grid):
        s = paper_sample_small
        scores = cv_scores_dense_grid(s.x, s.y, small_grid.values, "cosine")
        assert np.isfinite(scores).all()


class TestDenseBlockSums:
    def test_blocks_sum_to_full_score(self, paper_sample_medium):
        s = paper_sample_medium
        n = s.n
        h = 0.15
        total = sum(
            dense_cv_block_sums(s.x, s.y, h, "epanechnikov", lo, hi)
            for lo, hi in [(0, 100), (100, 250), (250, n)]
        )
        assert total / n == pytest.approx(cv_score(s.x, s.y, h))
