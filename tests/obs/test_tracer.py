"""Unit tests for the tracing core (`repro.obs.tracer`)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    coerce_tracer,
    current_tracer,
    reset_worker_context,
    use_tracer,
)


def make_clock(step: float = 1.0):
    """A deterministic monotonic clock advancing ``step`` per call."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestSpans:
    def test_span_records_name_times_and_attributes(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("work", n=10, backend="numpy"):
            pass
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.attributes == {"n": 10, "backend": "numpy"}
        assert record.end > record.start
        assert record.duration == record.end - record.start

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        by_name = {rec.name: rec for rec in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_set_adds_attributes_midflight(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(h_opt=0.25, cache="miss")
        (record,) = tracer.spans()
        assert record.attributes["h_opt"] == 0.25
        assert record.attributes["cache"] == "miss"

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.spans()
        assert record.attributes["error"] == "RuntimeError"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        parents = {r.name: r.parent_id for r in tracer.spans()}
        assert parents["a"] == root.span_id
        assert parents["b"] == root.span_id

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(max_events=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [r.name for r in tracer.spans()] == ["b", "c"]
        assert tracer.dropped == 1


class TestCountersAndMaxima:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.counter("hits")
        tracer.counter("hits", 2.5)
        assert tracer.counters()["hits"] == 3.5

    def test_record_max_keeps_maximum(self):
        tracer = Tracer()
        tracer.record_max("comp", 1.0)
        tracer.record_max("comp", 0.5)
        tracer.record_max("comp", 2.0)
        assert tracer.maxima()["comp"] == 2.0

    def test_merge_counters(self):
        tracer = Tracer()
        tracer.counter("hits", 1.0)
        tracer.record_max("peak", 1.0)
        tracer.merge_counters({"hits": 2.0, "new": 3.0}, {"peak": 0.5})
        assert tracer.counters() == {"hits": 3.0, "new": 3.0}
        assert tracer.maxima() == {"peak": 1.0}


class TestAdoption:
    def test_adopt_reparents_and_remaps_ids(self):
        worker = Tracer()
        with worker.span("block"):
            with worker.span("sort"):
                pass
            with worker.span("sweep"):
                pass
        parent = Tracer()
        with parent.span("pool") as pool_span:
            parent.adopt(worker.export_spans(), parent_id=pool_span.span_id)
        by_name = {r.name: r for r in parent.spans()}
        # Ring-buffer export order is completion order (children first);
        # adoption must still reconstruct the worker-local hierarchy.
        assert by_name["block"].parent_id == pool_span.span_id
        assert by_name["sort"].parent_id == by_name["block"].span_id
        assert by_name["sweep"].parent_id == by_name["block"].span_id
        ids = [r.span_id for r in parent.spans()]
        assert len(set(ids)) == len(ids)

    def test_adopt_without_parent_makes_roots(self):
        worker = Tracer()
        with worker.span("lonely"):
            pass
        parent = Tracer()
        parent.adopt(worker.export_spans())
        (record,) = parent.spans()
        assert record.parent_id is None


class TestContextPropagation:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_use_tracer_sets_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(tracer):
                raise ValueError("x")
        assert current_tracer() is NULL_TRACER

    def test_reset_worker_context_clears_inherited_state(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("outer"):
                reset_worker_context()
                assert current_tracer() is NULL_TRACER
                # A fresh worker tracer must not see the inherited span
                # as a parent.
                local = Tracer()
                with local.span("inner"):
                    pass
                (rec,) = local.spans()
                assert rec.parent_id is None

    def test_foreign_active_span_is_not_a_parent(self):
        outer = Tracer()
        inner = Tracer()
        with use_tracer(outer):
            with outer.span("outer"):
                with inner.span("mine"):
                    pass
        (rec,) = inner.spans()
        assert rec.parent_id is None


class TestNullTracer:
    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as span:
            span.set(b=2)
        tracer.counter("c")
        tracer.record_max("m", 1.0)
        assert tracer.spans() == []
        assert tracer.counters() == {}
        assert tracer.maxima() == {}
        assert tracer.dropped == 0
        assert not tracer.enabled


class TestCoercion:
    def test_none_and_false_give_null(self):
        assert coerce_tracer(None) is NULL_TRACER
        assert coerce_tracer(False) is NULL_TRACER

    def test_true_gives_fresh_tracer(self):
        tracer = coerce_tracer(True)
        assert isinstance(tracer, Tracer)
        assert tracer is not coerce_tracer(True)

    def test_instances_pass_through(self):
        tracer = Tracer()
        assert coerce_tracer(tracer) is tracer
        null = NullTracer()
        assert coerce_tracer(null) is null

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            coerce_tracer("yes")


class TestPayload:
    def test_to_payload_shape(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("work", n=3):
            tracer.counter("hits")
        payload = tracer.to_payload()
        assert set(payload) == {"spans", "counters", "maxima", "dropped"}
        (span,) = payload["spans"]
        assert span["name"] == "work"
        assert span["attributes"] == {"n": 3}
        assert payload["counters"] == {"hits": 1.0}
        assert payload["dropped"] == 0


class TestThreadSafety:
    def test_concurrent_spans_and_counters(self):
        tracer = Tracer(max_events=100_000)
        threads_n, reps = 8, 200
        barrier = threading.Barrier(threads_n)

        def hammer(idx: int) -> None:
            barrier.wait()
            for _ in range(reps):
                with tracer.span(f"t{idx}"):
                    tracer.counter("ticks")

        workers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads_n)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(tracer.spans()) == threads_n * reps
        assert tracer.counters()["ticks"] == float(threads_n * reps)
        ids = [r.span_id for r in tracer.spans()]
        assert len(set(ids)) == len(ids)
