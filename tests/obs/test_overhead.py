"""Pay-for-what-you-use: the no-op tracing path must cost ~nothing.

Two guards:

* a fast microbenchmark bounding the per-call cost of the disabled
  (``NULL_TRACER``) instrumentation sites, scaled against the measured
  paper-configuration sweep to prove the ≤2 % budget holds with orders
  of magnitude to spare;
* a ``perf``-marked end-to-end comparison of the n=2000 / k=50 numpy
  sweep with tracing off vs on.  CI boxes are noisy, so the default
  bound is generous; set ``REPRO_PERF_STRICT=1`` on quiet hardware for
  the tight bound.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.fastgrid import cv_scores_fastgrid
from repro.obs import Tracer, current_tracer, use_tracer

N, K = 2000, 50


@pytest.fixture(scope="module")
def paper_problem():
    rng = np.random.default_rng(42)
    x = rng.uniform(0.0, 1.0, N)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, N)
    grid = np.linspace(0.01, 0.5, K)
    return x, y, grid


def best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestNoopPathMicrobench:
    def test_disabled_span_sites_fit_the_two_percent_budget(
        self, paper_problem
    ):
        """Per-site no-op cost × sites-per-sweep ≪ 2 % of one sweep."""
        x, y, grid = paper_problem

        calls = 20_000
        tracer = current_tracer()  # NULL_TRACER by default
        assert not tracer.enabled

        def hammer():
            for _ in range(calls):
                with tracer.span("site", n=N, k=K):
                    pass

        per_call = best_of(hammer, 3) / calls
        sweep_seconds = best_of(lambda: cv_scores_fastgrid(x, y, grid), 1)
        # The instrumented sweep path crosses a handful of span sites per
        # chunk; 100 is a generous ceiling for any n/k in the paper.
        sites_per_sweep = 100
        budget = 0.02 * sweep_seconds
        assert per_call * sites_per_sweep < budget, (
            f"no-op span cost {per_call:.3e}s x {sites_per_sweep} sites "
            f"exceeds 2% of the {sweep_seconds:.3f}s sweep"
        )


@pytest.mark.perf
class TestEndToEndOverhead:
    def test_sweep_overhead_bounded(self, paper_problem):
        x, y, grid = paper_problem

        def plain():
            cv_scores_fastgrid(x, y, grid)

        def traced():
            with use_tracer(Tracer()):
                cv_scores_fastgrid(x, y, grid)

        base = best_of(plain, 2)
        tracked = best_of(traced, 2)
        # Tracing on pays for span bookkeeping plus the Neumaier
        # compensation shadow pass — bounded, but not free.  Tracing is
        # opt-in, so the guard protects "reasonable", not "negligible".
        limit = 1.10 if os.environ.get("REPRO_PERF_STRICT") == "1" else 1.5
        assert tracked <= base * limit, (
            f"traced sweep {tracked:.3f}s vs plain {base:.3f}s "
            f"exceeds {limit:.2f}x"
        )
