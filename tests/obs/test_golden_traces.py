"""Golden-trace regression tests: span names, nesting and attributes.

The span vocabulary is part of the public observability contract — the
``repro trace`` output, the Chrome trace JSON and the ``/metrics``
aggregation all key off these names.  These tests freeze the exact
``(depth, name)`` tree each backend emits on a single-chunk problem, so
a renamed or re-nested span fails loudly rather than silently breaking
dashboards.  The Chrome exporter output is additionally validated
against a JSON schema of the trace-event format.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.cuda_port  # noqa: F401 - registers gpusim + gpusim-tiled
from repro.core.api import select_bandwidth
from repro.obs import Tracer, chrome_trace, span_tree
from repro.parallel.pool import WorkerPool

N = 32
K = 5


@pytest.fixture(scope="module")
def sample():
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, N)
    y = np.sin(6.0 * x) + rng.normal(0.0, 0.3, N)
    return x, y


def run_traced(x, y, backend, **options):
    tracer = Tracer()
    result = select_bandwidth(
        x, y, backend=backend, n_bandwidths=K, trace=tracer, **options
    )
    return tracer, result


def shape(tracer):
    return [(depth, rec.name) for rec, depth in span_tree(tracer)]


SWEEP = [(6, "sort"), (6, "sweep"), (6, "reduction")]

GOLDEN = {
    "python": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:python"),
        (4, "fastgrid-python"),
        (2, "argmin"),
    ],
    "numpy": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:numpy"),
        (4, "fastgrid"),
        (5, "block"),
        *SWEEP,
        (2, "argmin"),
    ],
    "gpusim": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:gpusim"),
        (4, "cuda-program"),
        (5, "upload"),
        (5, "main-kernel"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (5, "device-argmin"),
        (2, "argmin"),
    ],
    "gpusim-tiled": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:gpusim-tiled"),
        (4, "cuda-program-tiled"),
        (5, "upload"),
        (5, "main-kernel"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (5, "device-argmin"),
        (2, "argmin"),
    ],
    "multicore": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:multicore"),
        # map, not sum: the backend folds the ordered row matrices itself
        # so the curve is bit-identical to numpy at any worker count.
        (4, "pool.map_over_blocks"),
        (5, "block"),
        *SWEEP,
        (5, "block"),
        *SWEEP,
        (2, "argmin"),
    ],
    "blocked": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:blocked"),
        (4, "blocked-sweep"),
        (5, "plan"),
        (5, "block-sweep"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (6, "reduce"),
        (2, "argmin"),
    ],
    "blocked-shm": [
        (0, "select_bandwidth"),
        (1, "grid-search"),
        (2, "evaluate-grid"),
        (3, "backend:blocked-shm"),
        (4, "blocked-shm-sweep"),
        (5, "plan"),
        (5, "block-sweep"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (6, "block"),
        (7, "sort"),
        (7, "sweep"),
        (7, "reduction"),
        (5, "reduce"),
        (2, "argmin"),
    ],
}


class TestGoldenTrees:
    def test_python_tree(self, sample):
        tracer, _ = run_traced(*sample, "python")
        assert shape(tracer) == GOLDEN["python"]

    def test_numpy_tree(self, sample):
        tracer, _ = run_traced(*sample, "numpy")
        assert shape(tracer) == GOLDEN["numpy"]

    def test_gpusim_tree(self, sample):
        tracer, _ = run_traced(*sample, "gpusim", mode="fast")
        assert shape(tracer) == GOLDEN["gpusim"]

    def test_gpusim_tiled_tree(self, sample):
        # tile_rows = N/2 forces exactly two tiles.
        tracer, _ = run_traced(*sample, "gpusim-tiled", tile_rows=N // 2)
        assert shape(tracer) == GOLDEN["gpusim-tiled"]

    def test_multicore_tree(self, sample):
        with WorkerPool(2) as pool:
            tracer, _ = run_traced(*sample, "multicore", pool=pool)
        assert shape(tracer) == GOLDEN["multicore"]

    def test_blocked_tree(self, sample):
        # The default budget plans the whole N=32 sample into one block.
        tracer, _ = run_traced(*sample, "blocked")
        assert shape(tracer) == GOLDEN["blocked"]

    def test_blocked_shm_tree(self, sample):
        # block_rows = N/2 forces exactly two adopted worker blocks.
        tracer, _ = run_traced(
            *sample, "blocked-shm", workers=2, block_rows=N // 2
        )
        assert shape(tracer) == GOLDEN["blocked-shm"]

    def test_blocked_plan_attributes(self, sample):
        tracer, _ = run_traced(*sample, "blocked")
        by_name = {rec.name: rec for rec, _ in span_tree(tracer)}
        plan = by_name["plan"].attributes
        assert plan["n"] == N and plan["k"] == K
        assert plan["block_rows"] >= 1
        assert plan["n_blocks"] == -(-N // plan["block_rows"])
        assert plan["predicted_peak_bytes"] <= plan["budget_bytes"]

    def test_resilient_tree_structure(self, sample):
        tracer, _ = run_traced(*sample, "numpy", resilience=True)
        names = [name for _, name in shape(tracer)]
        prefix = ["select_bandwidth", "grid-search", "evaluate-grid",
                  "resilient-sweep", "candidate", "wave"]
        assert names[: len(prefix)] == prefix
        assert names.count("block") >= 1
        assert names[-1] == "argmin"


class TestGoldenAttributes:
    def test_root_span_attributes(self, sample):
        tracer, result = run_traced(*sample, "numpy")
        root = span_tree(tracer)[0][0]
        assert root.attributes["method"] == "grid"
        assert root.attributes["backend"] == "numpy"
        assert root.attributes["n"] == N
        assert root.attributes["h_opt"] == result.bandwidth
        assert root.attributes["backend_used"] == "numpy"

    def test_fastgrid_attributes(self, sample):
        tracer, _ = run_traced(*sample, "numpy")
        by_name = {rec.name: rec for rec, _ in span_tree(tracer)}
        fg = by_name["fastgrid"].attributes
        assert fg["n"] == N and fg["k"] == K
        assert fg["kernel"] == "epanechnikov"
        assert fg["dtype"] == "float64"
        block = by_name["block"].attributes
        assert (block["start"], block["stop"]) == (0, N)
        assert by_name["sort"].attributes["rows"] == N

    def test_diagnostics_carry_trace_payload(self, sample):
        _, result = run_traced(*sample, "numpy")
        payload = result.diagnostics["trace"]
        assert payload["spans"][0]["name"] in {
            name for _, name in GOLDEN["numpy"]
        }
        assert payload["dropped"] == 0

    def test_counters_present(self, sample):
        tracer, _ = run_traced(*sample, "numpy")
        assert "numeric.empty_windows" in tracer.counters()
        assert "numeric.kahan_compensation" in tracer.maxima()


CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit", "otherData"],
    "properties": {
        "displayTimeUnit": {"const": "ms"},
        "otherData": {
            "type": "object",
            "required": ["dropped_spans"],
            "properties": {
                "dropped_spans": {"type": "integer", "minimum": 0}
            },
        },
        "traceEvents": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "ph": {"enum": ["M", "X", "C"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
                "allOf": [
                    {
                        "if": {"properties": {"ph": {"const": "X"}}},
                        "then": {
                            "required": ["ts", "dur", "cat", "args"],
                            "properties": {
                                "ts": {"type": "number", "minimum": 0},
                                "dur": {
                                    "type": "number",
                                    "exclusiveMinimum": 0,
                                },
                                "args": {
                                    "type": "object",
                                    "required": ["span_id"],
                                },
                            },
                        },
                    }
                ],
            },
        },
    },
}


class TestChromeTraceSchema:
    def test_exported_document_validates(self, sample):
        jsonschema = pytest.importorskip("jsonschema")
        tracer, _ = run_traced(*sample, "numpy")
        jsonschema.validate(chrome_trace(tracer), CHROME_TRACE_SCHEMA)

    def test_gpusim_document_validates(self, sample):
        jsonschema = pytest.importorskip("jsonschema")
        tracer, _ = run_traced(*sample, "gpusim", mode="fast")
        jsonschema.validate(chrome_trace(tracer), CHROME_TRACE_SCHEMA)
