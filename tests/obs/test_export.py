"""Unit tests for the trace exporters (`repro.obs.export`)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    render_tree,
    span_tree,
    trace_metrics_lines,
    write_chrome_trace,
)

from tests.obs.test_tracer import make_clock


@pytest.fixture
def sample_tracer() -> Tracer:
    tracer = Tracer(clock=make_clock())
    with tracer.span("select", n=100, backend="numpy"):
        with tracer.span("sort", rows=100):
            pass
        with tracer.span("sweep", rows=100):
            pass
    tracer.counter("cache.hits", 2.0)
    tracer.record_max("numeric.kahan_compensation", 1.5e-13)
    return tracer


class TestChromeTrace:
    def test_structure_and_relative_timestamps(self, sample_tracer):
        doc = chrome_trace(sample_tracer, process_name="unit")
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"dropped_spans": 0}
        events = doc["traceEvents"]
        meta = events[0]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "unit"}
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["sort", "sweep", "select"]
        # Microseconds relative to the earliest span: the root started
        # first, so its ts is 0.
        root = next(e for e in xs if e["name"] == "select")
        assert root["ts"] == 0.0
        assert all(e["ts"] >= 0.0 and e["dur"] > 0.0 for e in xs)

    def test_span_args_carry_attributes_and_links(self, sample_tracer):
        doc = chrome_trace(sample_tracer)
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["select"]["args"]["n"] == 100
        assert xs["select"]["args"]["backend"] == "numpy"
        assert "parent_id" not in xs["select"]["args"]
        assert xs["sort"]["args"]["parent_id"] == xs["select"]["args"]["span_id"]

    def test_counter_event_merges_counters_and_maxima(self, sample_tracer):
        doc = chrome_trace(sample_tracer)
        (counter,) = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counter["args"]["cache.hits"] == 2.0
        assert counter["args"]["max:numeric.kahan_compensation"] == 1.5e-13

    def test_non_json_attribute_values_stringified(self):
        tracer = Tracer()
        with tracer.span("x", obj=object(), flag=True):
            pass
        doc = chrome_trace(tracer)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["flag"] is True
        json.dumps(doc)  # must be serialisable end to end

    def test_empty_tracer_still_valid(self):
        doc = chrome_trace(Tracer())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]

    def test_write_chrome_trace_round_trips(self, sample_tracer, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", sample_tracer)
        loaded = json.loads(path.read_text())
        assert loaded == chrome_trace(sample_tracer)


class TestSpanTree:
    def test_depth_first_with_depths(self, sample_tracer):
        tree = [(rec.name, depth) for rec, depth in span_tree(sample_tracer)]
        assert tree == [("select", 0), ("sort", 1), ("sweep", 1)]

    def test_orphans_surface_as_roots(self):
        tracer = Tracer(max_events=2)
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        # max_events=2 evicted the first-completed span (grandchild)?  No:
        # completion order is grandchild, child, root — the ring keeps the
        # last two, so grandchild is gone and child's parent (root) stays.
        names = {rec.name for rec in tracer.spans()}
        assert names == {"child", "root"}
        tree = [(rec.name, depth) for rec, depth in span_tree(tracer)]
        assert ("root", 0) in tree
        assert ("child", 1) in tree

    def test_missing_parent_becomes_root(self):
        tracer = Tracer(max_events=1)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tree = [(rec.name, depth) for rec, depth in span_tree(tracer)]
        assert tree == [("root", 0)]


class TestRenderTree:
    def test_contains_names_durations_counters(self, sample_tracer):
        text = render_tree(sample_tracer)
        assert "select" in text and "  sort" in text
        assert "ms" in text
        assert "cache.hits = 2" in text
        assert "max numeric.kahan_compensation" in text

    def test_attribute_overflow_elided(self):
        tracer = Tracer()
        with tracer.span("x", a=1, b=2, c=3, d=4, e=5, f=6):
            pass
        assert "+2 more" in render_tree(tracer)

    def test_dropped_note(self):
        tracer = Tracer(max_events=1)
        for name in ("a", "b"):
            with tracer.span(name):
                pass
        assert "dropped 1 spans" in render_tree(tracer)


class TestMetricsLines:
    def test_aggregates_per_span_name(self, sample_tracer):
        lines = trace_metrics_lines(sample_tracer)
        joined = "\n".join(lines)
        assert "repro_trace_span_select_seconds_total" in joined
        assert "repro_trace_span_select_count 1" in joined
        assert "repro_trace_counter_cache_hits 2" in joined
        assert "repro_trace_max_numeric_kahan_compensation" in joined
        assert "repro_trace_spans_dropped 0" in joined

    def test_names_are_exposition_safe(self):
        tracer = Tracer()
        with tracer.span("backend:gpusim-tiled"):
            pass
        (line, _, _) = trace_metrics_lines(tracer)
        metric = line.split()[0]
        assert metric == "repro_trace_span_backend_gpusim_tiled_seconds_total"

    def test_repeated_spans_accumulate(self):
        tracer = Tracer(clock=make_clock())
        for _ in range(3):
            with tracer.span("block"):
                pass
        lines = "\n".join(trace_metrics_lines(tracer))
        assert "repro_trace_span_block_count 3" in lines
        assert "repro_trace_span_block_seconds_total 3" in lines
