"""The healthy-fleet coordinator: equality, accounting, wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import select_bandwidth
from repro.core.backends import get_backend, list_backends
from repro.core.blockwise import cv_scores_blocked
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.distributed import (
    CoordinatorConfig,
    Fleet,
    FleetCoordinator,
    InProcessFleet,
    WorkerApp,
    fleet_metrics,
    last_fleet_report,
    resolve_fleet,
    select_distributed,
)
from repro.exceptions import ValidationError, WorkerUnavailableError

from tests.distributed.conftest import make_chaos_fleet


def _fleet(n_workers: int) -> InProcessFleet:
    return InProcessFleet([WorkerApp(worker_id=f"w{i}") for i in range(n_workers)])


class TestEquality:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("block_rows", [32, 100])
    def test_bit_for_bit_vs_blocked_and_fastgrid(
        self, fleet_sample, fleet_grid, fast_config, n_workers, block_rows
    ) -> None:
        x, y = fleet_sample
        coord = FleetCoordinator(_fleet(n_workers), fast_config)
        scores = coord.cv_scores(
            x, y, fleet_grid, "epanechnikov", block_rows=block_rows
        )
        assert np.array_equal(
            scores,
            cv_scores_blocked(
                x, y, fleet_grid, "epanechnikov", block_rows=block_rows
            ),
        )
        assert np.array_equal(
            scores, cv_scores_fastgrid(x, y, fleet_grid, kernel="epanechnikov")
        )

    def test_worker_count_does_not_change_the_curve(
        self, fleet_sample, fleet_grid, fast_config
    ) -> None:
        x, y = fleet_sample
        curves = [
            FleetCoordinator(_fleet(n), fast_config).cv_scores(
                x, y, fleet_grid, "epanechnikov", block_rows=48
            )
            for n in (1, 3)
        ]
        assert np.array_equal(curves[0], curves[1])


class TestAccounting:
    def test_healthy_sweep_report(self, fleet_sample, fleet_grid, fast_config):
        x, y = fleet_sample
        coord = FleetCoordinator(_fleet(2), fast_config)
        coord.cv_scores(x, y, fleet_grid, "epanechnikov", block_rows=48)
        report = coord.report
        assert report.blocks_total == 5
        assert report.blocks_remote == 5
        assert report.blocks_local == 0
        assert report.dispatches == 5
        assert report.retries == 0
        assert not report.degraded
        assert report.fault_codes == []
        assert len(report.workers) == 2
        assert all(w["alive"] for w in report.workers)

    def test_report_round_trips_to_json_dict(
        self, fleet_sample, fleet_grid, fast_config
    ):
        import json

        x, y = fleet_sample
        coord = FleetCoordinator(_fleet(2), fast_config)
        coord.cv_scores(x, y, fleet_grid, "epanechnikov", block_rows=48)
        payload = json.loads(json.dumps(coord.report.to_dict()))
        assert payload["blocks_remote"] == 5
        assert payload["degraded"] is False

    def test_health_gauges_published(self, fleet_sample, fleet_grid, fast_config):
        x, y = fleet_sample
        coord = FleetCoordinator(_fleet(2), fast_config)
        coord.cv_scores(x, y, fleet_grid, "epanechnikov", block_rows=48)
        text = fleet_metrics().render_text()
        assert "dist_worker_up_w0" in text
        assert "dist_worker_up_w1" in text


class TestStagingFailures:
    def test_worker_that_cannot_stage_is_out_but_sweep_succeeds(
        self, fleet_sample, fleet_grid, fast_config
    ) -> None:
        x, y = fleet_sample

        class BrokenStaging:
            endpoint = "broken"

            def request(self, method, path, body=None, *, timeout=None):
                if path == "/dataset":
                    raise WorkerUnavailableError("staging always fails")
                return {"status": "ok", "worker_id": "broken"}

            def drain_duplicates(self):
                return []

        healthy = WorkerApp(worker_id="w0")
        fleet = InProcessFleet([healthy, BrokenStaging()])
        coord = FleetCoordinator(fleet, fast_config)
        scores = coord.cv_scores(x, y, fleet_grid, "epanechnikov", block_rows=48)
        assert np.array_equal(
            scores,
            cv_scores_blocked(x, y, fleet_grid, "epanechnikov", block_rows=48),
        )
        stage_faults = [f for f in coord.report.faults if f["stage"] == "stage"]
        assert stage_faults, coord.report.faults
        assert stage_faults[0]["code"] == "REPRO_RETRY_EXHAUSTED"
        assert "REPRO_DIST_UNREACHABLE" in stage_faults[0]["error"]
        assert coord.report.blocks_remote == coord.report.blocks_total


class TestAtMostOnce:
    """Unit coverage of the fold-accounting discard paths in ``_absorb``."""

    def _coordinator(self, fast_config) -> FleetCoordinator:
        return FleetCoordinator(_fleet(1), fast_config)

    def _delivery(self, coord, *, block_id=0, epoch=0, payload=None, error=None):
        from repro.distributed.coordinator import _Delivery

        return _Delivery(
            block_id=block_id,
            epoch=epoch,
            handle=coord.fleet.handles[0],
            payload=payload,
            error=error,
        )

    def test_already_folded_block_discards_duplicate(self, fast_config):
        coord = self._coordinator(fast_config)
        rows = {0: np.zeros((4, 3))}
        coord._absorb(
            self._delivery(coord),
            rows,
            leases={},
            epochs={0: 0},
            k=3,
            fail_block=lambda *_: pytest.fail("must not touch the block"),
        )
        assert coord.report.duplicates_discarded == 1
        assert np.array_equal(rows[0], np.zeros((4, 3)))

    def test_superseded_epoch_discards_stale(self, fast_config):
        coord = self._coordinator(fast_config)
        rows: dict = {}
        coord._absorb(
            self._delivery(coord, epoch=0),
            rows,
            leases={},
            epochs={0: 2},
            k=3,
            fail_block=lambda *_: pytest.fail("stale is not a failure"),
        )
        assert coord.report.stale_discarded == 1
        assert rows == {}

    def test_current_epoch_folds_exactly_once(self, fast_config):
        from repro.distributed.coordinator import _Lease
        from repro.distributed.protocol import (
            encode_compute_request,
            encode_compute_response,
        )

        coord = self._coordinator(fast_config)
        block = np.arange(12.0).reshape(4, 3)
        request = encode_compute_request("ds", 0, 1, 0, 4)
        payload = encode_compute_response(request, block, "w0")
        handle = coord.fleet.handles[0]
        rows: dict = {}
        leases = {0: _Lease(handle=handle, epoch=1, deadline=99.0)}
        delivery = self._delivery(coord, epoch=1, payload=payload)
        coord._absorb(
            rows=rows,
            leases=leases,
            epochs={0: 1},
            k=3,
            delivery=delivery,
            fail_block=lambda *_: pytest.fail("valid delivery"),
        )
        assert np.array_equal(rows[0], block)
        assert leases == {}
        assert coord.report.blocks_remote == 1
        # The duplicate of the very same delivery is now discarded.
        coord._absorb(
            rows=rows,
            leases=leases,
            epochs={0: 1},
            k=3,
            delivery=delivery,
            fail_block=lambda *_: pytest.fail("valid delivery"),
        )
        assert coord.report.duplicates_discarded == 1
        assert coord.report.blocks_remote == 1


class TestBackendWiring:
    def test_lazy_registration(self) -> None:
        backend = get_backend("distributed")
        assert callable(backend)
        assert "distributed" in list_backends()

    def test_select_distributed_attaches_fleet_diagnostics(
        self, fleet_sample, fast_config
    ) -> None:
        x, y = fleet_sample
        grid = BandwidthGrid(np.linspace(0.2, 3.0, 8))
        result = select_distributed(
            x,
            y,
            grid=grid,
            kernel="epanechnikov",
            fleet=_fleet(2),
            coordinator_config=fast_config,
        )
        reference = select_bandwidth(
            x, y, grid=grid, kernel="epanechnikov", backend="numpy"
        )
        assert result.bandwidth == reference.bandwidth
        assert np.array_equal(result.scores, reference.scores)
        fleet_diag = result.diagnostics["fleet"]
        assert fleet_diag["degraded"] is False
        assert fleet_diag["blocks_remote"] == fleet_diag["blocks_total"]

    def test_no_workers_degrades_losslessly(self, fleet_sample, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        x, y = fleet_sample
        grid = BandwidthGrid(np.linspace(0.2, 3.0, 8))
        result = select_bandwidth(
            x, y, grid=grid, kernel="epanechnikov", backend="distributed"
        )
        reference = select_bandwidth(
            x, y, grid=grid, kernel="epanechnikov", backend="numpy"
        )
        assert result.bandwidth == reference.bandwidth
        assert np.array_equal(result.scores, reference.scores)
        report = last_fleet_report()
        assert report is not None
        assert report.fleet_lost
        assert report.fault_codes == ["REPRO_DIST_FLEET_LOST"]

    def test_dense_kernel_evaluates_locally(self, fleet_sample):
        x, y = fleet_sample
        grid = BandwidthGrid(np.linspace(0.2, 3.0, 6))
        result = select_bandwidth(
            x, y, grid=grid, kernel="gaussian", backend="distributed"
        )
        reference = select_bandwidth(
            x, y, grid=grid, kernel="gaussian", backend="numpy"
        )
        assert np.array_equal(result.scores, reference.scores)


class TestFleetResolution:
    def test_none_without_env_is_no_fleet(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_fleet(None) == (None, False)

    def test_fleet_passthrough_is_not_owned(self):
        fleet = _fleet(1)
        resolved, owned = resolve_fleet(fleet)
        assert resolved is fleet
        assert not owned

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            resolve_fleet(True)

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            resolve_fleet(object())

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            Fleet([])


def test_chaos_free_chaos_fleet_matches(fleet_sample, fleet_grid, fast_config):
    """The chaos harness itself is transparent when no faults fire."""
    x, y = fleet_sample
    fleet = make_chaos_fleet(2, lambda worker_id: ())
    coord = FleetCoordinator(fleet, fast_config)
    scores = coord.cv_scores(x, y, fleet_grid, "epanechnikov", block_rows=48)
    assert np.array_equal(
        scores,
        cv_scores_blocked(x, y, fleet_grid, "epanechnikov", block_rows=48),
    )
    assert coord.report.fault_codes == []
