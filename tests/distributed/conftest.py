"""Fixtures for the distributed coordinator and its chaos suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.distributed import (
    ChaosTransport,
    CoordinatorConfig,
    InProcessFleet,
    InProcessTransport,
    WorkerApp,
)
from repro.resilience.policy import RetryPolicy


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Injection seed: CI sweeps a matrix via ``REPRO_CHAOS_SEED``."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(scope="session")
def fleet_sample() -> tuple[np.ndarray, np.ndarray]:
    """A fixed (x, y) sample big enough for several row blocks."""
    rng = np.random.default_rng(20170529)
    x = rng.uniform(0.0, 10.0, 240)
    y = np.sin(x) + rng.normal(0.0, 0.3, 240)
    return x, y


@pytest.fixture(scope="session")
def fleet_grid() -> np.ndarray:
    return np.linspace(0.2, 3.0, 15)


@pytest.fixture
def fast_config() -> CoordinatorConfig:
    """Generous retries, zero backoff sleeping — chaos tests run in ms."""
    return CoordinatorConfig(
        policy=RetryPolicy(max_retries=4, base_delay=0.0, max_delay=0.0),
        lease_timeout=5.0,
        heartbeat_interval=60.0,
        tick=0.005,
        sleep=lambda _seconds: None,
    )


def make_chaos_fleet(n_workers: int, specs_for) -> InProcessFleet:
    """An in-process fleet whose transports fault on schedule.

    ``specs_for(worker_id)`` returns the :class:`NetFaultSpec` tuple for
    that worker's transport (empty tuple = a healthy worker).
    """
    transports = []
    for index in range(n_workers):
        worker_id = f"w{index}"
        app = WorkerApp(worker_id=worker_id)
        inner = InProcessTransport(app, endpoint=worker_id)
        transports.append(ChaosTransport(inner, specs_for(worker_id)))
    return InProcessFleet(transports)
