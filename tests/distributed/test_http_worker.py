"""Real worker processes over real sockets (spawn, serve, die).

Slower than the in-process suite — these tests cover the pieces the
:class:`InProcessTransport` skips: the worker's ``__main__`` banner,
the HTTP framing, typed error payloads over the wire, and a worker
SIGKILLed mid-sweep.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.blockwise import cv_scores_blocked
from repro.distributed import (
    CoordinatorConfig,
    FleetCoordinator,
    HttpWorkerTransport,
    LocalProcessFleet,
)
from repro.exceptions import DistributedProtocolError, ReproError
from repro.resilience.policy import RetryPolicy

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def fleet():
    fleet = LocalProcessFleet(2)
    yield fleet
    fleet.close()


@pytest.fixture(scope="module")
def process_config() -> CoordinatorConfig:
    return CoordinatorConfig(
        policy=RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0),
        lease_timeout=10.0,
        request_timeout=10.0,
        stage_timeout=10.0,
        heartbeat_interval=0.2,
        heartbeat_timeout=2.0,
    )


def test_worker_answers_healthz_and_metrics(fleet):
    handle = fleet.handles[0]
    health = handle.transport.request("GET", "/healthz", timeout=5.0)
    assert health["status"] == "ok"
    assert health["worker_id"] == handle.worker_id
    metrics = handle.transport.request("GET", "/metrics", timeout=5.0)
    assert "dist_worker_blocks_total" in metrics["text"]


def test_unknown_dataset_is_a_typed_wire_error(fleet):
    from repro.distributed.protocol import encode_compute_request

    handle = fleet.handles[0]
    request = encode_compute_request("no-such-dataset", 0, 0, 0, 8)
    with pytest.raises(DistributedProtocolError):
        handle.transport.request("POST", "/compute", request, timeout=5.0)


def test_http_sweep_matches_local_blocked(fleet, process_config):
    rng = np.random.default_rng(3)
    x = np.sort(rng.uniform(0, 10, 300))
    y = np.sin(x) + rng.normal(0, 0.2, 300)
    grid = np.linspace(0.2, 3.0, 12)
    coord = FleetCoordinator(fleet, process_config)
    scores = coord.cv_scores(x, y, grid, "epanechnikov", block_rows=64)
    assert np.array_equal(
        scores, cv_scores_blocked(x, y, grid, "epanechnikov", block_rows=64)
    )
    assert coord.report.blocks_remote == coord.report.blocks_total


def test_worker_killed_mid_sweep_never_changes_the_curve():
    """SIGKILL one of two workers while the sweep runs.

    Whenever the kill lands — before, during, or between blocks — the
    curve must stay bit-for-bit; only the accounting may differ.
    """
    fleet = LocalProcessFleet(2)
    try:
        rng = np.random.default_rng(5)
        x = np.sort(rng.uniform(0, 10, 400))
        y = np.sin(x) + rng.normal(0, 0.2, 400)
        grid = np.linspace(0.2, 3.0, 12)
        config = CoordinatorConfig(
            policy=RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0),
            lease_timeout=5.0,
            request_timeout=5.0,
            stage_timeout=10.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
        )
        coord = FleetCoordinator(fleet, config)
        killer = threading.Timer(0.05, fleet.kill_worker, args=(0,))
        killer.start()
        try:
            scores = coord.cv_scores(
                x, y, grid, "epanechnikov", block_rows=32
            )
        finally:
            killer.cancel()
        assert np.array_equal(
            scores,
            cv_scores_blocked(x, y, grid, "epanechnikov", block_rows=32),
        )
        report = coord.report
        assert report.blocks_remote + report.blocks_local == report.blocks_total
    finally:
        fleet.close()


def test_transport_timeout_is_typed(fleet):
    # Port 9 (discard) on localhost is almost never listening; a refused
    # connection must surface as the typed unreachable error, fast.
    transport = HttpWorkerTransport("127.0.0.1", 9, timeout=0.5)
    with pytest.raises(ReproError) as excinfo:
        transport.request("GET", "/healthz", timeout=0.5)
    from repro.exceptions import error_code

    assert error_code(excinfo.value) in {
        "REPRO_DIST_UNREACHABLE",
        "REPRO_SERVE_TIMEOUT",
    }
