"""Wire-message shapes: bit-exact floats, checksums, version skew."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    decode_compute_request,
    decode_compute_rows,
    decode_dataset,
    encode_compute_request,
    encode_compute_response,
    encode_dataset,
    payload_checksum,
)
from repro.exceptions import (
    DistributedProtocolError,
    PayloadChecksumError,
    error_code,
)


def _wire(message: dict) -> dict:
    """A real JSON round trip — what the HTTP transport actually does."""
    return json.loads(json.dumps(message))


class TestDatasetMessages:
    def test_roundtrip_is_bit_exact(self) -> None:
        rng = np.random.default_rng(7)
        x = np.sort(rng.uniform(0, 10, 50))
        y = rng.normal(0, 1, 50)
        grid = np.geomspace(0.01, 3.0, 9)
        body = _wire(encode_dataset("ds1", x, y, grid, "epanechnikov", "float64"))
        decoded = decode_dataset(body)
        assert decoded["dataset_id"] == "ds1"
        assert decoded["kernel"] == "epanechnikov"
        assert np.array_equal(decoded["x"], x)
        assert np.array_equal(decoded["y"], y)
        assert np.array_equal(decoded["grid"], grid)

    def test_mismatched_shapes_rejected(self) -> None:
        body = encode_dataset(
            "ds1", np.arange(5.0), np.arange(4.0), np.ones(3), "uniform", "float64"
        )
        with pytest.raises(DistributedProtocolError):
            decode_dataset(body)

    def test_non_numeric_arrays_rejected(self) -> None:
        body = encode_dataset(
            "ds1", np.arange(5.0), np.arange(5.0), np.ones(3), "uniform", "float64"
        )
        body["x"] = ["a", "b", "c", "d", "e"]
        with pytest.raises(DistributedProtocolError):
            decode_dataset(body)


class TestComputeRequest:
    def test_roundtrip(self) -> None:
        req = _wire(encode_compute_request("ds1", 3, 1, 64, 128))
        decoded = decode_compute_request(req)
        assert decoded == {
            "dataset_id": "ds1",
            "block_id": 3,
            "epoch": 1,
            "start": 64,
            "stop": 128,
        }

    def test_bool_is_not_an_int(self) -> None:
        req = encode_compute_request("ds1", 0, 0, 0, 8)
        req["epoch"] = True
        with pytest.raises(DistributedProtocolError):
            decode_compute_request(req)

    @pytest.mark.parametrize("start,stop", [(5, 5), (8, 4), (-1, 4)])
    def test_malformed_bounds_rejected(self, start: int, stop: int) -> None:
        req = encode_compute_request("ds1", 0, 0, start, stop)
        with pytest.raises(DistributedProtocolError):
            decode_compute_request(req)


class TestComputeResponse:
    def _response(self, rows: np.ndarray) -> dict:
        req = encode_compute_request("ds1", 0, 0, 0, rows.shape[0])
        return _wire(encode_compute_response(req, rows, "w0"))

    def test_rows_survive_the_wire_bit_for_bit(self) -> None:
        rng = np.random.default_rng(11)
        rows = rng.normal(0, 1, (6, 4))
        decoded = decode_compute_rows(self._response(rows), k=4)
        assert decoded.dtype == np.float64
        assert np.array_equal(decoded, rows)

    def test_corrupted_row_fails_checksum(self) -> None:
        rows = np.ones((4, 3))
        body = self._response(rows)
        body["rows"][2][1] = 1.0 + 1e-12
        with pytest.raises(PayloadChecksumError) as excinfo:
            decode_compute_rows(body, k=3)
        assert error_code(excinfo.value) == "REPRO_DIST_CHECKSUM"

    def test_right_rows_for_the_wrong_block_fail(self) -> None:
        rows = np.ones((4, 3))
        body = self._response(rows)
        # Same rows, shifted bounds: the bounds are part of the digest.
        body["start"], body["stop"] = 4, 8
        with pytest.raises(PayloadChecksumError):
            decode_compute_rows(body, k=3)

    def test_wrong_shape_is_structural_not_checksum(self) -> None:
        rows = np.ones((4, 3))
        body = self._response(rows)
        body["rows"] = body["rows"][:-1]
        with pytest.raises(DistributedProtocolError):
            decode_compute_rows(body, k=3)

    def test_checksum_binds_shape(self) -> None:
        rows = np.arange(12.0).reshape(4, 3)
        assert payload_checksum(rows, 0, 4) != payload_checksum(
            rows.reshape(3, 4), 0, 4
        )


def test_version_skew_is_a_typed_error() -> None:
    req = encode_compute_request("ds1", 0, 0, 0, 8)
    req["version"] = PROTOCOL_VERSION + 1
    with pytest.raises(DistributedProtocolError) as excinfo:
        decode_compute_request(req)
    assert "version skew" in str(excinfo.value)
