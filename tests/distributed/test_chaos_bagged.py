"""Chaos: bagged selection over a faulty distributed fleet.

The bagged cell of the distributed-chaos matrix: each subsample sweep
runs on a fleet whose transports inject a seeded storm of network
faults, and the bagged ``h_opt`` must stay **bit-for-bit identical** to
the plain serial-numpy bagged selection — retries and re-dispatches
never perturb the subsample draws, the inflated grid, or the fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import select_bandwidth
from repro.distributed import NetFaultSpec
from repro.distributed.chaos import seeded_compute_faults

from tests.distributed.conftest import make_chaos_fleet

pytestmark = pytest.mark.chaos

PLAN = dict(subsamples=4, subsample_size=120, root_seed=5)


@pytest.fixture(scope="module")
def bagged_reference(fleet_sample):
    x, y = fleet_sample
    return select_bandwidth(
        x, y, method="bagged", n_bandwidths=15, **PLAN
    )


def _run_bagged_over_fleet(fleet_sample, fleet, fast_config):
    x, y = fleet_sample
    try:
        return select_bandwidth(
            x,
            y,
            method="bagged",
            n_bandwidths=15,
            backend="distributed",
            fleet=fleet,
            coordinator_config=fast_config,
            block_rows=30,
            **PLAN,
        )
    finally:
        fleet.close()


class TestBaggedOverChaosFleet:
    def test_healthy_fleet_matches_serial(
        self, fleet_sample, fast_config, bagged_reference
    ):
        fleet = make_chaos_fleet(2, lambda wid: ())
        res = _run_bagged_over_fleet(fleet_sample, fleet, fast_config)
        assert res.bandwidth == bagged_reference.bandwidth
        assert np.array_equal(res.scores, bagged_reference.scores)

    def test_seeded_fault_storm_is_bit_exact(
        self, fleet_sample, fast_config, chaos_seed, bagged_reference
    ):
        # The CI matrix entry (REPRO_CHAOS_SEED 0/1/2): every compute
        # fault kind at once, yet h_opt is the serial answer to the bit.
        fleet = make_chaos_fleet(
            3,
            lambda wid: seeded_compute_faults(
                chaos_seed,
                wid,
                n_blocks=16,
                kinds=("drop", "hang", "duplicate", "corrupt"),
                rate=0.3,
            ),
        )
        res = _run_bagged_over_fleet(fleet_sample, fleet, fast_config)
        assert res.bandwidth == bagged_reference.bandwidth
        assert np.array_equal(res.scores, bagged_reference.scores)
        assert res.diagnostics["bagged"] == bagged_reference.diagnostics["bagged"]

    def test_dead_fleet_degrades_losslessly(
        self, fleet_sample, fast_config, bagged_reference
    ):
        # Workers die on their first exchange; every subsample sweep
        # falls back to local blocks — still byte-identical.
        fleet = make_chaos_fleet(2, lambda wid: (NetFaultSpec("die", at=(1,)),))
        res = _run_bagged_over_fleet(fleet_sample, fleet, fast_config)
        assert res.bandwidth == bagged_reference.bandwidth
        assert np.array_equal(res.scores, bagged_reference.scores)
