"""Chaos: the distributed sweep under injected network faults.

Every test asserts the headline invariant — the CV curve (and hence
``h_opt``) stays **bit-for-bit identical** to the local ``blocked`` and
``numpy`` backends no matter which faults fire — plus the accounting
that proves the fault actually happened and was absorbed the intended
way (retry, epoch discard, checksum reject, local fallback).

Seeds sweep a CI matrix via ``REPRO_CHAOS_SEED`` (see conftest).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import select_bandwidth
from repro.core.blockwise import cv_scores_blocked
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.distributed import (
    CoordinatorConfig,
    FleetCoordinator,
    NetFaultSpec,
    select_distributed,
)
from repro.distributed.chaos import FAULT_KINDS, seeded_compute_faults
from repro.resilience.policy import RetryPolicy

from tests.distributed.conftest import make_chaos_fleet

pytestmark = pytest.mark.chaos

BLOCK_ROWS = 48  # 240 rows -> 5 blocks


def _reference(x, y, grid):
    ref = cv_scores_blocked(x, y, grid, "epanechnikov", block_rows=BLOCK_ROWS)
    assert np.array_equal(
        ref, cv_scores_fastgrid(x, y, grid, kernel="epanechnikov")
    ), "local backends disagree; the distributed assertion would be vacuous"
    return ref


def _run(fleet, config, fleet_sample, fleet_grid):
    x, y = fleet_sample
    coord = FleetCoordinator(fleet, config)
    scores = coord.cv_scores(
        x, y, fleet_grid, "epanechnikov", block_rows=BLOCK_ROWS
    )
    assert np.array_equal(scores, _reference(x, y, fleet_grid))
    return coord.report


class TestSingleFaultClasses:
    def test_drop_is_retried(self, fleet_sample, fleet_grid, fast_config):
        fleet = make_chaos_fleet(
            2,
            lambda wid: (NetFaultSpec("drop", at=(1,)),) if wid == "w0" else (),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.retries >= 1
        assert "REPRO_DIST_UNREACHABLE" in report.fault_codes
        assert report.blocks_local == 0

    def test_hang_times_out_and_retries(self, fleet_sample, fleet_grid, fast_config):
        fleet = make_chaos_fleet(
            2,
            lambda wid: (NetFaultSpec("hang", at=(1,)),) if wid == "w0" else (),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.retries >= 1
        assert "REPRO_SERVE_TIMEOUT" in report.fault_codes

    def test_worker_death_mid_sweep(self, fleet_sample, fleet_grid, fast_config):
        fleet = make_chaos_fleet(
            3,
            lambda wid: (NetFaultSpec("die", at=(1,)),) if wid == "w1" else (),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert "REPRO_DIST_UNREACHABLE" in report.fault_codes
        dead = [w for w in report.workers if not w["alive"]]
        assert len(dead) == 1 and dead[0]["worker_id"] == "w1"

    def test_duplicate_delivery_folds_once(
        self, fleet_sample, fleet_grid, fast_config
    ):
        fleet = make_chaos_fleet(
            2,
            lambda wid: (
                (NetFaultSpec("duplicate", at=(1, 2)),) if wid == "w0" else ()
            ),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.duplicates_discarded >= 1
        assert report.blocks_remote == report.blocks_total

    def test_corrupt_payload_is_checksum_rejected(
        self, fleet_sample, fleet_grid, fast_config
    ):
        fleet = make_chaos_fleet(
            2,
            lambda wid: (NetFaultSpec("corrupt", at=(1,)),) if wid == "w0" else (),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.checksum_rejects >= 1
        assert "REPRO_DIST_CHECKSUM" in report.fault_codes
        assert report.blocks_remote == report.blocks_total

    def test_straggler_is_redispatched_and_stale_discarded(
        self, fleet_sample, fleet_grid
    ):
        config = CoordinatorConfig(
            policy=RetryPolicy(max_retries=4, base_delay=0.0, max_delay=0.0),
            lease_timeout=0.05,
            heartbeat_interval=60.0,
            tick=0.005,
            sleep=lambda _s: None,
        )
        fleet = make_chaos_fleet(
            2,
            lambda wid: (
                (NetFaultSpec("delay", at=(1,), delay_s=0.4),)
                if wid == "w0"
                else ()
            ),
        )
        report = _run(fleet, config, fleet_sample, fleet_grid)
        assert report.stragglers >= 1
        assert "REPRO_DIST_LEASE_EXPIRED" in report.fault_codes
        # The late epoch-0 answer either landed mid-sweep (discarded by
        # epoch) or after the fold completed (dropped with the executor)
        # — the bit-for-bit equality above proves it was never folded
        # twice; the discard paths themselves are unit-tested in
        # test_coordinator.py::TestAtMostOnce.
        assert report.blocks_remote + report.blocks_local == report.blocks_total


class TestFleetLoss:
    def test_every_worker_dead_degrades_to_local(
        self, fleet_sample, fleet_grid, fast_config
    ):
        fleet = make_chaos_fleet(
            2, lambda wid: (NetFaultSpec("die", at=(1,)),)
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.fleet_lost
        assert report.degraded
        assert "REPRO_DIST_FLEET_LOST" in report.fault_codes
        assert report.blocks_local + report.blocks_remote == report.blocks_total
        assert report.blocks_local >= 1

    def test_block_that_exhausts_retries_goes_local(
        self, fleet_sample, fleet_grid
    ):
        # One worker, always dropping: every block burns its budget and
        # falls back to the in-process row function.
        config = CoordinatorConfig(
            policy=RetryPolicy(max_retries=1, base_delay=0.0, max_delay=0.0),
            heartbeat_interval=60.0,
            tick=0.005,
            sleep=lambda _s: None,
        )
        fleet = make_chaos_fleet(
            1, lambda wid: (NetFaultSpec("drop", at=tuple(range(1, 40))),)
        )
        report = _run(fleet, config, fleet_sample, fleet_grid)
        assert report.blocks_local == report.blocks_total
        assert report.degraded


class TestSeededMatrix:
    """The CI matrix entry: a seeded storm of every fault kind at once."""

    def test_seeded_fault_storm_is_bit_exact(
        self, fleet_sample, fleet_grid, fast_config, chaos_seed
    ):
        fleet = make_chaos_fleet(
            3,
            lambda wid: seeded_compute_faults(
                chaos_seed,
                wid,
                n_blocks=10,
                kinds=("drop", "hang", "duplicate", "corrupt"),
                rate=0.4,
            ),
        )
        report = _run(fleet, fast_config, fleet_sample, fleet_grid)
        assert report.blocks_remote + report.blocks_local == report.blocks_total

    def test_schedule_is_a_pure_function_of_seed(self, chaos_seed):
        first = seeded_compute_faults(chaos_seed, "w0", n_blocks=20)
        again = seeded_compute_faults(chaos_seed, "w0", n_blocks=20)
        other = seeded_compute_faults(chaos_seed + 1, "w0", n_blocks=20)
        assert first == again
        # Distinct seeds should (for these parameters) differ somewhere;
        # equality would make the CI matrix vacuous.
        assert first != other or chaos_seed < 0

    def test_unknown_fault_kind_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            NetFaultSpec("gremlin", at=(1,))

    def test_fault_kind_table_is_closed(self):
        assert set(FAULT_KINDS) == {
            "drop", "hang", "delay", "duplicate", "corrupt", "die",
        }


class TestSelectionUnderChaos:
    def test_h_opt_identical_and_report_names_faults(
        self, fleet_sample, fast_config, chaos_seed
    ):
        x, y = fleet_sample
        grid = BandwidthGrid(np.linspace(0.2, 3.0, 10))
        # Both workers fault identically so the schedule is independent
        # of which worker wins which block: with five pending blocks,
        # every worker is leased at least twice, so call 1 (drop) and
        # call 2 (corrupt) are both guaranteed to fire.
        fleet = make_chaos_fleet(
            2,
            lambda wid: (
                NetFaultSpec("drop", at=(1,)),
                NetFaultSpec("corrupt", at=(2,)),
            ),
        )
        result = select_distributed(
            x,
            y,
            grid=grid,
            kernel="epanechnikov",
            fleet=fleet,
            coordinator_config=fast_config,
            block_rows=BLOCK_ROWS,
        )
        reference = select_bandwidth(
            x, y, grid=grid, kernel="epanechnikov", backend="numpy"
        )
        assert result.bandwidth == reference.bandwidth
        assert np.array_equal(result.scores, reference.scores)
        fleet_diag = result.diagnostics["fleet"]
        assert set(fleet_diag["fault_codes"]) >= {
            "REPRO_DIST_UNREACHABLE",
            "REPRO_DIST_CHECKSUM",
        }
