"""Unit tests for multivariate validation helpers."""

import numpy as np
import pytest

from repro.exceptions import DataShapeError
from repro.multivariate import (
    as_design_matrix,
    check_multivariate_sample,
    ensure_bandwidth_vector,
)


class TestDesignMatrix:
    def test_2d_passes_through(self):
        x = as_design_matrix(np.ones((5, 3)))
        assert x.shape == (5, 3)
        assert x.dtype == np.float64

    def test_1d_promoted_to_column(self):
        x = as_design_matrix(np.arange(4.0))
        assert x.shape == (4, 1)

    def test_3d_rejected(self):
        with pytest.raises(DataShapeError):
            as_design_matrix(np.ones((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            as_design_matrix(np.ones((0, 2)))

    def test_nan_rejected(self):
        bad = np.ones((3, 2))
        bad[1, 1] = np.nan
        with pytest.raises(DataShapeError):
            as_design_matrix(bad)


class TestMultivariateSample:
    def test_valid_pair(self):
        x, y = check_multivariate_sample(np.ones((5, 2)), np.arange(5.0))
        assert x.shape == (5, 2) and y.shape == (5,)

    def test_row_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            check_multivariate_sample(np.ones((5, 2)), np.arange(4.0))

    def test_min_size(self):
        with pytest.raises(DataShapeError):
            check_multivariate_sample(np.ones((2, 2)), np.arange(2.0))


class TestBandwidthVector:
    def test_scalar_broadcasts(self):
        np.testing.assert_array_equal(ensure_bandwidth_vector(0.5, 3), [0.5] * 3)

    def test_vector_validated(self):
        np.testing.assert_array_equal(
            ensure_bandwidth_vector([0.1, 0.2], 2), [0.1, 0.2]
        )

    def test_wrong_length_rejected(self):
        with pytest.raises(DataShapeError):
            ensure_bandwidth_vector([0.1, 0.2], 3)

    def test_nonpositive_rejected(self):
        with pytest.raises(DataShapeError):
            ensure_bandwidth_vector([0.1, 0.0], 2)
