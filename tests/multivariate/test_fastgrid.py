"""Tests for the weighted per-dimension fast sweep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.multivariate import mv_cv_score, mv_cv_scores_along_dim


@pytest.fixture(scope="module")
def trivariate():
    rng = np.random.default_rng(8)
    n = 120
    x = rng.uniform(0, 1, (n, 3))
    y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2 - x[:, 2] + rng.normal(0, 0.1, n)
    return x, y


class TestSweepDenseEquivalence:
    @pytest.mark.parametrize("dim", [0, 1, 2])
    def test_matches_dense_per_dim(self, trivariate, dim):
        x, y = trivariate
        h = np.array([0.3, 0.25, 0.4])
        grid = np.linspace(0.08, 0.9, 6)
        fast = mv_cv_scores_along_dim(x, y, h, dim, grid)
        dense = []
        for g in grid:
            h_try = h.copy()
            h_try[dim] = g
            dense.append(mv_cv_score(x, y, h_try))
        np.testing.assert_allclose(fast, dense, rtol=1e-9)

    @given(seed=st.integers(0, 2000), dim=st.integers(0, 1))
    @settings(max_examples=15, deadline=None)
    def test_property_2d(self, seed, dim):
        rng = np.random.default_rng(seed)
        n = 30
        x = rng.uniform(0, 1, (n, 2))
        y = rng.normal(0, 1, n)
        h = np.array([0.4, 0.5])
        grid = np.array([0.1, 0.35, 0.8])
        fast = mv_cv_scores_along_dim(x, y, h, dim, grid)
        dense = []
        for g in grid:
            h_try = h.copy()
            h_try[dim] = g
            dense.append(mv_cv_score(x, y, h_try))
        np.testing.assert_allclose(fast, dense, rtol=1e-8, atol=1e-10)

    def test_mixed_other_dim_kernels_allowed(self, trivariate):
        # The swept dim needs a polynomial kernel; the others can be
        # anything, including the Gaussian.
        x, y = trivariate
        h = np.array([0.3, 0.3, 0.3])
        grid = np.array([0.2, 0.6])
        kernels = ["epanechnikov", "gaussian", "cosine"]
        fast = mv_cv_scores_along_dim(x, y, h, 0, grid, kernels)
        dense = []
        for g in grid:
            h_try = h.copy()
            h_try[0] = g
            dense.append(mv_cv_score(x, y, h_try, kernels))
        np.testing.assert_allclose(fast, dense, rtol=1e-9)

    def test_gaussian_swept_dim_rejected(self, trivariate):
        x, y = trivariate
        with pytest.raises(ValidationError):
            mv_cv_scores_along_dim(
                x, y, np.array([0.3, 0.3, 0.3]), 1,
                np.array([0.2, 0.4]),
                ["epanechnikov", "gaussian", "epanechnikov"],
            )

    def test_invalid_dim_rejected(self, trivariate):
        x, y = trivariate
        with pytest.raises(ValidationError):
            mv_cv_scores_along_dim(
                x, y, np.array([0.3, 0.3, 0.3]), 5, np.array([0.2])
            )

    def test_chunking_invariance(self, trivariate):
        x, y = trivariate
        h = np.array([0.3, 0.3, 0.3])
        grid = np.array([0.2, 0.5, 0.9])
        a = mv_cv_scores_along_dim(x, y, h, 0, grid, chunk_rows=120)
        b = mv_cv_scores_along_dim(x, y, h, 0, grid, chunk_rows=11)
        np.testing.assert_allclose(a, b, rtol=1e-12)
