"""Tests for multivariate bandwidth selection."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.multivariate import (
    CoordinateDescentSelector,
    ProductGridSelector,
    mv_cv_score,
    mv_rule_of_thumb,
)


@pytest.fixture(scope="module")
def anisotropic():
    # Strong curvature in dim 0, nearly flat in dim 1: the CV-optimal
    # bandwidth vector should be clearly anisotropic (h0 << h1).
    rng = np.random.default_rng(17)
    n = 400
    x = rng.uniform(0, 1, (n, 2))
    y = np.sin(8 * x[:, 0]) + 0.1 * x[:, 1] + rng.normal(0, 0.15, n)
    return x, y


class TestRuleOfThumb:
    def test_returns_per_dimension_vector(self, anisotropic):
        x, _ = anisotropic
        h = mv_rule_of_thumb(x)
        assert h.shape == (2,)
        assert (h > 0).all()

    def test_d_adjusted_rate(self):
        rng = np.random.default_rng(0)
        x1 = rng.uniform(0, 1, (1000, 1))
        x2 = np.column_stack([x1[:, 0], rng.uniform(0, 1, 1000)])
        h1 = mv_rule_of_thumb(x1)[0]
        h2 = mv_rule_of_thumb(x2)[0]
        # Same column, but the 2-D rate n^(-1/6) > n^(-1/5) => larger h.
        assert h2 > h1


class TestProductGrid:
    def test_finds_anisotropic_optimum(self, anisotropic):
        x, y = anisotropic
        res = ProductGridSelector(n_bandwidths=8).select(x, y)
        assert res.n_evaluations == 64
        assert res.bandwidths[0] < res.bandwidths[1]
        assert res.score > 0.0

    def test_dimension_cap(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (30, 4))
        y = rng.normal(0, 1, 30)
        with pytest.raises(ValidationError, match="CoordinateDescent"):
            ProductGridSelector(n_bandwidths=5).select(x, y)

    def test_explicit_grids(self, anisotropic):
        from repro.core.grid import BandwidthGrid

        x, y = anisotropic
        grids = [
            BandwidthGrid(np.array([0.1, 0.3])),
            BandwidthGrid(np.array([0.5, 1.0])),
        ]
        res = ProductGridSelector(grids=grids).select(x, y)
        assert res.bandwidths[0] in grids[0].values
        assert res.bandwidths[1] in grids[1].values


class TestCoordinateDescent:
    def test_converges_and_improves_on_rot(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(n_bandwidths=30).select(x, y)
        assert res.converged
        rot_score = mv_cv_score(x, y, mv_rule_of_thumb(x))
        assert res.score <= rot_score

    def test_detects_anisotropy(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(n_bandwidths=30).select(x, y)
        assert res.bandwidths[0] < 0.5 * res.bandwidths[1]

    def test_score_matches_dense_evaluation(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(n_bandwidths=20).select(x, y)
        assert res.score == pytest.approx(
            mv_cv_score(x, y, res.bandwidths), rel=1e-9
        )

    def test_trace_is_monotone(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(n_bandwidths=20, max_cycles=5).select(x, y)
        scores = [step["score"] for step in res.trace]
        assert scores == sorted(scores, reverse=True)

    def test_competitive_with_product_grid(self, anisotropic):
        x, y = anisotropic
        cd = CoordinateDescentSelector(n_bandwidths=20).select(x, y)
        pg = ProductGridSelector(n_bandwidths=8).select(x, y)
        # CD uses a 20-point per-dim grid vs PG's 8 — it should not lose
        # by much, and typically wins.
        assert cd.score <= pg.score * 1.10

    def test_explicit_init(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(
            n_bandwidths=15, init=np.array([0.2, 0.8])
        ).select(x, y)
        assert res.score > 0.0

    def test_bad_init_shape_rejected(self, anisotropic):
        x, y = anisotropic
        with pytest.raises(ValidationError):
            CoordinateDescentSelector(init=np.array([0.2])).select(x, y)

    def test_summary_renders(self, anisotropic):
        x, y = anisotropic
        res = CoordinateDescentSelector(n_bandwidths=10).select(x, y)
        text = res.summary()
        assert "coordinate-descent" in text
        assert "h*" in text
