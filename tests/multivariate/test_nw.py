"""Tests for multivariate NW estimation and its CV objective."""

import numpy as np
import pytest

from repro.core.loocv import cv_score
from repro.exceptions import ValidationError
from repro.multivariate import (
    mv_cv_score,
    mv_loo_estimates,
    mv_nw_estimate,
    product_weights,
    resolve_kernels,
    self_weight_constant,
)


@pytest.fixture(scope="module")
def bivariate():
    rng = np.random.default_rng(3)
    n = 200
    x = rng.uniform(0, 1, (n, 2))
    y = x[:, 0] + 2.0 * x[:, 1] + rng.normal(0, 0.1, n)
    return x, y


class TestProductWeights:
    def test_product_of_univariate_weights(self):
        from repro.kernels import get_kernel

        kern = get_kernel("epanechnikov")
        at = np.array([[0.5, 0.5]])
        x = np.array([[0.4, 0.7], [0.9, 0.5]])
        h = np.array([0.5, 0.5])
        w = product_weights(at, x, h, resolve_kernels("epanechnikov", 2))
        expected0 = float(kern(np.array([0.2]))[0] * kern(np.array([-0.4]))[0])
        expected1 = float(kern(np.array([-0.8]))[0] * kern(np.array([0.0]))[0])
        np.testing.assert_allclose(w[0], [expected0, expected1])

    def test_skip_dim_drops_one_factor(self):
        at = np.array([[0.5, 0.5]])
        x = np.array([[0.4, 0.7]])
        h = np.array([0.5, 0.5])
        kerns = resolve_kernels("epanechnikov", 2)
        full = product_weights(at, x, h, kerns)
        partial = product_weights(at, x, h, kerns, skip_dim=1)
        from repro.kernels import get_kernel

        factor = float(get_kernel("epanechnikov")(np.array([-0.4]))[0])
        np.testing.assert_allclose(full, partial * factor)

    def test_self_weight_constant(self):
        kerns = resolve_kernels("epanechnikov", 3)
        assert self_weight_constant(kerns) == pytest.approx(0.75**3)
        assert self_weight_constant(kerns, skip_dim=0) == pytest.approx(0.75**2)

    def test_mixed_kernels(self):
        kerns = resolve_kernels(["epanechnikov", "uniform"], 2)
        assert self_weight_constant(kerns) == pytest.approx(0.75 * 0.5)

    def test_kernel_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            resolve_kernels(["epanechnikov"], 2)


class TestMvEstimation:
    def test_reduces_to_univariate_for_d1(self, paper_sample_medium):
        s = paper_sample_medium
        h = 0.15
        mv, mv_ok = mv_nw_estimate(s.x[:, None], s.y, s.x[:, None], h)
        from repro.regression import nw_estimate

        uni, uni_ok = nw_estimate(s.x, s.y, s.x, h)
        np.testing.assert_allclose(mv[mv_ok], uni[uni_ok])

    def test_cv_reduces_to_univariate_for_d1(self, paper_sample_small):
        s = paper_sample_small
        assert mv_cv_score(s.x[:, None], s.y, 0.2) == pytest.approx(
            cv_score(s.x, s.y, 0.2)
        )

    def test_loo_excludes_self(self, bivariate):
        x, y = bivariate
        g_loo, valid = mv_loo_estimates(x, y, np.array([0.3, 0.3]))
        # Direct check for one observation.
        i = 11
        from repro.kernels import get_kernel

        kern = get_kernel("epanechnikov")
        w = kern((x[i, 0] - x[:, 0]) / 0.3) * kern((x[i, 1] - x[:, 1]) / 0.3)
        w[i] = 0.0
        assert g_loo[i] == pytest.approx((w @ y) / w.sum())

    def test_empty_window_invalid(self):
        x = np.array([[0.0, 0.0], [0.1, 0.1], [5.0, 5.0]])
        y = np.array([1.0, 2.0, 3.0])
        est, valid = mv_nw_estimate(x, y, np.array([[5.0, 5.0]]), 0.5)
        # Only the isolated point itself is in window at (5,5).
        assert valid[0]
        assert est[0] == pytest.approx(3.0)

    def test_dimension_mismatch_rejected(self, bivariate):
        x, y = bivariate
        with pytest.raises(ValidationError):
            mv_nw_estimate(x, y, np.array([[0.5]]), 0.3)

    def test_recovers_additive_surface(self, bivariate):
        x, y = bivariate
        at = np.array([[0.5, 0.5], [0.3, 0.7]])
        est, _ = mv_nw_estimate(x, y, at, np.array([0.2, 0.2]))
        truth = at[:, 0] + 2.0 * at[:, 1]
        np.testing.assert_allclose(est, truth, atol=0.15)

    def test_chunking_invariance(self, bivariate):
        x, y = bivariate
        a = mv_cv_score(x, y, 0.25, chunk_rows=200)
        b = mv_cv_score(x, y, 0.25, chunk_rows=7)
        assert a == pytest.approx(b)
