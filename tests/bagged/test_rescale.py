"""The n^(-1/5) rescaling primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bagged.rescale import (
    DEFAULT_RATE_EXPONENT,
    rate_exponent,
    rescale_bandwidth,
    scale_factor,
    scale_grid,
)
from repro.exceptions import ValidationError


class TestRateExponent:
    def test_univariate_is_one_fifth(self) -> None:
        assert rate_exponent(1) == pytest.approx(0.2)
        assert DEFAULT_RATE_EXPONENT == pytest.approx(0.2)

    def test_multivariate_rate(self) -> None:
        assert rate_exponent(2) == pytest.approx(1.0 / 6.0)

    def test_zero_features_rejected(self) -> None:
        with pytest.raises(ValidationError):
            rate_exponent(0)


class TestScaleFactor:
    def test_known_value(self) -> None:
        # (100000 / 3125)^(1/5) = 32^(0.2) = 2
        assert scale_factor(3125, 100_000) == pytest.approx(2.0)

    def test_identity_when_m_equals_n(self) -> None:
        assert scale_factor(500, 500) == 1.0

    def test_inflation_always_at_least_one(self) -> None:
        for m, n in [(10, 10), (10, 100), (999, 1000)]:
            assert scale_factor(m, n) >= 1.0

    def test_m_greater_than_n_rejected(self) -> None:
        with pytest.raises(ValidationError):
            scale_factor(11, 10)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.2, 1.5])
    def test_rate_outside_unit_interval_rejected(self, rate) -> None:
        with pytest.raises(ValidationError):
            scale_factor(10, 100, rate=rate)


class TestScaleGrid:
    def test_elementwise_inflation(self) -> None:
        grid = np.array([0.1, 0.2, 0.4])
        scaled = scale_grid(grid, 3125, 100_000)
        assert np.allclose(scaled, grid * 2.0)

    def test_returns_float64_copy(self) -> None:
        grid = np.array([0.1, 0.2], dtype=np.float32)
        scaled = scale_grid(grid, 100, 100)
        assert scaled.dtype == np.float64
        scaled[0] = 99.0
        assert grid[0] == pytest.approx(0.1)


class TestRescaleBandwidth:
    def test_inverse_of_scale_factor(self) -> None:
        h = 0.37
        m, n = 200, 50_000
        inflated = h * scale_factor(m, n)
        assert rescale_bandwidth(inflated, m, n) == pytest.approx(h)

    def test_round_trip_is_exact_for_grid_matched_path(self) -> None:
        # The selector never round-trips floats (it maps indices), but
        # the raw estimator should still invert to ~machine precision.
        h = 0.02
        back = rescale_bandwidth(h * scale_factor(137, 9999), 137, 9999)
        assert back == pytest.approx(h, rel=1e-12)

    @pytest.mark.parametrize("h", [0.0, -1.0, float("nan"), float("inf")])
    def test_degenerate_bandwidths_rejected(self, h) -> None:
        with pytest.raises(ValidationError):
            rescale_bandwidth(h, 10, 100)

    def test_custom_rate(self) -> None:
        # d=2 rate: (m/n)^(1/6)
        assert rescale_bandwidth(1.0, 1, 64, rate=1.0 / 6.0) == pytest.approx(0.5)
