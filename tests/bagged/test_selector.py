"""End-to-end behaviour of BaggedCVSelector and the select_bandwidth wiring.

The load-bearing property is the bit-for-bit contract: identical
``(root_seed, r, m, grid)`` must produce the identical bagged ``h_opt``
across every strict-fold backend, across serial vs. pooled dispatch,
across fault/retry schedules, and from a warm cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BaggedCVSelector, select_bandwidth
from repro.bagged.plan import plan_subsamples
from repro.bagged.rescale import scale_factor
from repro.core.selectors import GridSearchSelector
from repro.data import paper_dgp
from repro.exceptions import ValidationError
from repro.obs import Tracer, use_tracer
from repro.resilience.faults import FaultInjector, FaultSpec, inject_faults
from repro.resilience.engine import ResilienceConfig
from repro.resilience.policy import RetryPolicy

N = 1200
PLAN = dict(subsamples=5, subsample_size=300, root_seed=7)


@pytest.fixture(scope="module")
def sample():
    return paper_dgp(N, seed=0)


@pytest.fixture(scope="module")
def reference(sample):
    return select_bandwidth(sample.x, sample.y, method="bagged", **PLAN)


class TestSelection:
    def test_result_shape(self, sample, reference) -> None:
        res = reference
        assert res.method == "bagged-cv"
        assert res.converged
        assert res.n_evaluations == 5 * 50
        assert res.bandwidths.shape == (5,)  # per-subsample votes
        assert res.scores.shape == (5,)
        bag = res.diagnostics["bagged"]
        assert bag["n"] == N
        assert bag["subsample_size"] == 300
        assert bag["n_subsamples"] == 5
        assert bag["root_seed"] == 7
        assert bag["scale_factor"] == pytest.approx(
            scale_factor(300, N), rel=0, abs=0
        )
        assert len(bag["subsamples"]) == 5
        for record in bag["subsamples"]:
            assert record["attempts"] == 1
            assert len(record["curve"]["scores"]) == 50

    def test_votes_are_exact_full_grid_points(self, sample, reference) -> None:
        # Grid-matched rescaling: every subsample votes for an exact
        # point of the full-sample grid, not a float round-trip.
        from repro.core.grid import BandwidthGrid

        grid = BandwidthGrid.for_sample(sample.x, 50)
        for h in reference.bandwidths:
            assert h in grid.values

    def test_same_plan_same_answer(self, sample, reference) -> None:
        again = select_bandwidth(sample.x, sample.y, method="bagged", **PLAN)
        assert again.bandwidth == reference.bandwidth
        assert np.array_equal(again.scores, reference.scores)

    def test_different_root_seed_changes_draws(self, sample, reference) -> None:
        other = select_bandwidth(
            sample.x, sample.y, method="bagged",
            subsamples=5, subsample_size=300, root_seed=8,
        )
        # h_opt may coincide (coarse grid) but the CV scores cannot.
        assert not np.array_equal(other.scores, reference.scores)

    def test_aliases_share_the_canonical_method(self, sample, reference) -> None:
        for alias in ("bagged-cv", "bagging"):
            res = select_bandwidth(sample.x, sample.y, method=alias, **PLAN)
            assert res.bandwidth == reference.bandwidth

    def test_m_equals_n_reduces_to_exact_grid_search(self, sample) -> None:
        # A full-size draw without replacement is the identity sample and
        # the scale factor is 1 — bagging degenerates to the exact sweep.
        bagged = BaggedCVSelector(
            subsamples=1, subsample_size=N, root_seed=0
        ).select(sample.x, sample.y)
        exact = GridSearchSelector().select(sample.x, sample.y)
        assert bagged.bandwidth == exact.bandwidth

    def test_median_log_aggregate(self, sample) -> None:
        res = select_bandwidth(
            sample.x, sample.y, method="bagged", aggregate="median-log", **PLAN
        )
        votes = np.sort(res.bandwidths)
        assert res.bandwidth == pytest.approx(votes[2])  # r=5 → middle vote

    def test_unknown_aggregate_rejected(self) -> None:
        with pytest.raises(ValidationError):
            BaggedCVSelector(aggregate="mode")

    def test_resume_rejected_for_bagged(self, sample) -> None:
        with pytest.raises(ValidationError, match="resume"):
            select_bandwidth(
                sample.x, sample.y, method="bagged", resume="ckpt.json", **PLAN
            )

    def test_nested_pool_rejected(self) -> None:
        for backend in ("multicore", "blocked-shm", "distributed"):
            with pytest.raises(ValidationError, match="nest"):
                BaggedCVSelector(backend=backend, subsample_workers=2)


class TestCrossBackendBitForBit:
    @pytest.mark.parametrize(
        ("backend", "options"),
        [
            ("multicore", {"workers": 2}),
            ("blocked", {}),
            ("blocked", {"memory_budget": "64MiB"}),
            ("blocked-shm", {"workers": 2}),
            ("compiled", {}),
            ("blocked-compiled", {"memory_budget": "64MiB"}),
        ],
    )
    def test_backends_match_numpy(self, sample, reference, backend, options) -> None:
        res = select_bandwidth(
            sample.x, sample.y, method="bagged", backend=backend, **PLAN, **options
        )
        assert res.bandwidth == reference.bandwidth
        assert np.array_equal(res.scores, reference.scores)

    def test_pooled_dispatch_matches_serial(self, sample, reference) -> None:
        res = select_bandwidth(
            sample.x, sample.y, method="bagged", subsample_workers=2, **PLAN
        )
        assert res.bandwidth == reference.bandwidth
        assert np.array_equal(res.scores, reference.scores)


class TestTracing:
    def test_span_tree(self, sample, reference) -> None:
        tracer = Tracer()
        with use_tracer(tracer):
            res = select_bandwidth(sample.x, sample.y, method="bagged", **PLAN)
        names = [s.name for s in tracer.spans()]
        assert "bagged.plan" in names
        assert "bagged.aggregate" in names
        for i in range(5):
            assert f"bagged.subsample[{i}]" in names
        assert res.bandwidth == reference.bandwidth  # tracing changes nothing

    def test_pooled_dispatch_ships_spans_home(self, sample) -> None:
        tracer = Tracer()
        with use_tracer(tracer):
            select_bandwidth(
                sample.x, sample.y, method="bagged", subsample_workers=2, **PLAN
            )
        names = [s.name for s in tracer.spans()]
        assert "bagged.dispatch" in names
        assert sum(1 for n in names if n.startswith("bagged.subsample[")) == 5


class TestResilience:
    def _config(self) -> ResilienceConfig:
        return ResilienceConfig(
            policy=RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0),
            sleep=lambda s: None,
        )

    def test_transient_faults_do_not_change_the_answer(
        self, sample, reference
    ) -> None:
        injector = FaultInjector(
            [FaultSpec(site="bagged.subsample", kind="timeout", at=(1, 3))],
            seed=0,
        )
        with inject_faults(injector):
            res = select_bandwidth(
                sample.x, sample.y, method="bagged",
                resilience=self._config(), **PLAN,
            )
        assert res.bandwidth == reference.bandwidth
        assert np.array_equal(res.scores, reference.scores)
        assert res.resilience is not None
        assert res.resilience.retries == 2
        assert len(injector.log) == 2
        attempts = [
            rec["attempts"]
            for rec in res.diagnostics["bagged"]["subsamples"]
        ]
        assert sum(attempts) == 5 + 2

    def test_retry_budget_exhaustion_degrades_losslessly(
        self, sample, reference
    ) -> None:
        # Subsample 0 faults on every attempt; with fallback enabled the
        # sweep degrades to the serial numpy terminal — byte-identical.
        # Events 0..2 are the three attempts of subsample 0 (budget
        # max_retries=2); event 3 is the fallback's own sweep, which the
        # schedule leaves healthy.
        injector = FaultInjector(
            [
                FaultSpec(
                    site="bagged.subsample", kind="timeout",
                    at=(0, 1, 2),
                )
            ],
            seed=0,
        )
        config = ResilienceConfig(
            policy=RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0),
            sleep=lambda s: None,
        )
        with inject_faults(injector):
            res = select_bandwidth(
                sample.x, sample.y, method="bagged", backend="blocked",
                resilience=config, **PLAN,
            )
        assert res.bandwidth == reference.bandwidth
        assert np.array_equal(res.scores, reference.scores)

    def test_fallback_disabled_raises(self, sample) -> None:
        from repro.exceptions import BlockTimeoutError
        from repro.resilience.policy import RetryBudgetExceeded

        injector = FaultInjector(
            [FaultSpec(site="bagged.subsample", kind="timeout", rate=1.0)],
            seed=0,
        )
        config = ResilienceConfig(
            policy=RetryPolicy(max_retries=1, base_delay=0.0, max_delay=0.0),
            fallback=False,
            sleep=lambda s: None,
        )
        with inject_faults(injector):
            with pytest.raises((RetryBudgetExceeded, BlockTimeoutError)):
                select_bandwidth(
                    sample.x, sample.y, method="bagged", backend="blocked",
                    resilience=config, **PLAN,
                )


class TestSelectionCache:
    def test_warm_hit_skips_every_sweep(self, sample, reference, tmp_path) -> None:
        from repro.serving import ArtifactCache

        cache = ArtifactCache(tmp_path)
        cold = select_bandwidth(
            sample.x, sample.y, method="bagged", cache=cache, **PLAN
        )
        tracer = Tracer()
        with use_tracer(tracer):
            warm = select_bandwidth(
                sample.x, sample.y, method="bagged", cache=cache, **PLAN
            )
        assert warm.diagnostics.get("cache") == "hit" or tracer.counters().get(
            "selection_cache.hit"
        )
        # No subsample sweep ran on the warm path.
        assert not any(
            s.name.startswith("bagged.subsample") for s in tracer.spans()
        )
        assert warm.bandwidth == cold.bandwidth == reference.bandwidth
        assert np.array_equal(warm.scores, cold.scores)
        assert warm.diagnostics["bagged"] == cold.diagnostics["bagged"]

    def test_explicit_defaults_share_the_fingerprint(self, sample, tmp_path) -> None:
        from repro.serving import ArtifactCache

        cache = ArtifactCache(tmp_path)
        n = sample.x.shape[0]
        plan = plan_subsamples(n)
        select_bandwidth(sample.x, sample.y, method="bagged", cache=cache)
        tracer = Tracer()
        with use_tracer(tracer):
            warm = select_bandwidth(
                sample.x, sample.y, method="bagged", cache=cache,
                subsamples=plan.n_subsamples,
                subsample_size=plan.subsample_size,
                root_seed=0,
            )
        assert tracer.counters().get("selection_cache.hit") == 1
        assert warm.diagnostics["bagged"]["n_subsamples"] == plan.n_subsamples

    def test_different_plan_different_fingerprint(self, sample, tmp_path) -> None:
        from repro.serving import ArtifactCache

        cache = ArtifactCache(tmp_path)
        select_bandwidth(sample.x, sample.y, method="bagged", cache=cache, **PLAN)
        tracer = Tracer()
        with use_tracer(tracer):
            select_bandwidth(
                sample.x, sample.y, method="bagged", cache=cache,
                subsamples=5, subsample_size=300, root_seed=8,
            )
        assert tracer.counters().get("selection_cache.miss") == 1
