"""Log-space aggregation of per-subsample bandwidths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bagged.aggregate import (
    AGGREGATORS,
    SubsampleOutcome,
    aggregate_bandwidths,
)
from repro.exceptions import ValidationError


class TestAggregateBandwidths:
    def test_mean_log_is_geometric_mean(self) -> None:
        values = [0.1, 0.4]
        assert aggregate_bandwidths(values) == pytest.approx(0.2)

    def test_median_log_is_order_statistic(self) -> None:
        values = [0.1, 0.2, 10.0]
        assert aggregate_bandwidths(values, aggregate="median-log") == pytest.approx(
            0.2
        )

    def test_median_robust_to_one_outlier(self) -> None:
        clean = [0.2, 0.21, 0.19]
        dirty = clean + [50.0]
        med = aggregate_bandwidths(dirty, aggregate="median-log")
        assert 0.19 <= med <= 0.21

    def test_constant_input_is_identity(self) -> None:
        for agg in AGGREGATORS:
            assert aggregate_bandwidths([0.37] * 5, aggregate=agg) == pytest.approx(
                0.37
            )

    def test_permutation_invariant(self) -> None:
        values = np.array([0.11, 0.31, 0.21, 0.17])
        shuffled = values[[2, 0, 3, 1]]
        for agg in AGGREGATORS:
            assert aggregate_bandwidths(values, aggregate=agg) == aggregate_bandwidths(
                shuffled, aggregate=agg
            )

    def test_unknown_aggregate_rejected(self) -> None:
        with pytest.raises(ValidationError, match="mean-log"):
            aggregate_bandwidths([0.1], aggregate="mode")

    @pytest.mark.parametrize(
        "values", [[], [[0.1, 0.2]], [0.0, 0.1], [-0.1], [float("nan")]]
    )
    def test_degenerate_inputs_rejected(self, values) -> None:
        with pytest.raises(ValidationError):
            aggregate_bandwidths(values)


class TestSubsampleOutcome:
    def test_diagnostics_record_is_json_ready(self) -> None:
        import json

        outcome = SubsampleOutcome(
            index=3,
            argmin=7,
            bandwidth=0.04,
            rescaled_bandwidth=0.02,
            score=0.5,
            attempts=2,
            bandwidths=np.array([0.03, 0.04]),
            scores=np.array([0.6, 0.5]),
        )
        record = outcome.to_diagnostics()
        json.dumps(record)  # must not raise
        assert record["index"] == 3
        assert record["attempts"] == 2
        assert record["curve"]["scores"] == [0.6, 0.5]

    def test_curve_can_be_elided(self) -> None:
        outcome = SubsampleOutcome(
            index=0,
            argmin=0,
            bandwidth=0.1,
            rescaled_bandwidth=0.1,
            score=1.0,
            bandwidths=np.array([0.1]),
            scores=np.array([1.0]),
        )
        assert "curve" not in outcome.to_diagnostics(include_curve=False)
