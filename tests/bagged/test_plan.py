"""Seeded subsample planning: determinism, defaults, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bagged.plan import (
    DEFAULT_SUBSAMPLES,
    MAX_DEFAULT_SUBSAMPLE_SIZE,
    MIN_SUBSAMPLE_SIZE,
    SubsamplePlan,
    default_subsample_size,
    default_subsamples,
    plan_subsamples,
    resolve_plan_options,
)
from repro.exceptions import ValidationError
from repro.utils.rng import spawn_seed


class TestDefaults:
    def test_polynomial_growth(self) -> None:
        assert default_subsample_size(10_000) == int(np.ceil(10_000**0.7))

    def test_capped(self) -> None:
        assert default_subsample_size(10**6) == MAX_DEFAULT_SUBSAMPLE_SIZE

    def test_floored(self) -> None:
        # ceil(120^0.7) = 29 is below the floor; m snaps up to 100.
        assert default_subsample_size(120) == MIN_SUBSAMPLE_SIZE
        assert default_subsample_size(5000) >= MIN_SUBSAMPLE_SIZE

    def test_never_exceeds_n(self) -> None:
        for n in (3, 50, 99, 100, 101):
            assert default_subsample_size(n) <= n

    def test_single_subsample_when_m_covers_n(self) -> None:
        assert default_subsamples(100, 100) == 1
        assert default_subsamples(100, 99) == DEFAULT_SUBSAMPLES


class TestSubsamplePlan:
    def test_draw_is_pure_function_of_root_and_index(self) -> None:
        plan = SubsamplePlan(n=1000, subsample_size=50, n_subsamples=8, root_seed=3)
        again = SubsamplePlan(n=1000, subsample_size=50, n_subsamples=8, root_seed=3)
        for i in range(8):
            assert np.array_equal(plan.indices(i), again.indices(i))

    def test_draw_is_execution_order_independent(self) -> None:
        plan = SubsamplePlan(n=1000, subsample_size=50, n_subsamples=8, root_seed=3)
        forward = [plan.indices(i) for i in range(8)]
        backward = [plan.indices(i) for i in reversed(range(8))][::-1]
        for a, b in zip(forward, backward):
            assert np.array_equal(a, b)

    def test_draws_differ_across_indices_and_roots(self) -> None:
        plan = SubsamplePlan(n=1000, subsample_size=50, n_subsamples=4, root_seed=0)
        other = SubsamplePlan(n=1000, subsample_size=50, n_subsamples=4, root_seed=1)
        assert not np.array_equal(plan.indices(0), plan.indices(1))
        assert not np.array_equal(plan.indices(0), other.indices(0))

    def test_indices_sorted_without_replacement_in_range(self) -> None:
        plan = SubsamplePlan(n=500, subsample_size=100, n_subsamples=3, root_seed=7)
        for i in range(3):
            idx = plan.indices(i)
            assert idx.shape == (100,)
            assert np.array_equal(idx, np.sort(idx))
            assert len(np.unique(idx)) == 100
            assert idx.min() >= 0 and idx.max() < 500

    def test_indices_pinned_to_spawn_seed_contract(self) -> None:
        # The draw construction is a documented replay contract.
        plan = SubsamplePlan(n=300, subsample_size=40, n_subsamples=2, root_seed=11)
        rng = np.random.default_rng(spawn_seed(11, 1))
        expected = np.sort(rng.choice(300, size=40, replace=False))
        assert np.array_equal(plan.indices(1), expected)

    def test_seeds_match_indices_streams(self) -> None:
        plan = SubsamplePlan(n=300, subsample_size=40, n_subsamples=5, root_seed=2)
        seeds = plan.seeds()
        assert len(seeds) == 5
        rng = np.random.default_rng(seeds[3])
        expected = np.sort(rng.choice(300, size=40, replace=False))
        assert np.array_equal(plan.indices(3), expected)

    def test_take_slices_pairs(self) -> None:
        plan = SubsamplePlan(n=100, subsample_size=10, n_subsamples=1, root_seed=0)
        x = np.arange(100, dtype=np.float64)
        y = x * 2
        xs, ys = plan.take(0, x, y)
        assert np.array_equal(ys, xs * 2)
        assert np.array_equal(xs, plan.indices(0).astype(np.float64))

    def test_take_rejects_mismatched_n(self) -> None:
        plan = SubsamplePlan(n=100, subsample_size=10, n_subsamples=1, root_seed=0)
        with pytest.raises(ValidationError, match="n=100"):
            plan.take(0, np.zeros(50), np.zeros(50))

    def test_index_out_of_range(self) -> None:
        plan = SubsamplePlan(n=100, subsample_size=10, n_subsamples=2, root_seed=0)
        with pytest.raises(ValidationError):
            plan.indices(2)
        with pytest.raises(ValidationError):
            plan.indices(-1)

    @pytest.mark.parametrize(
        ("n", "m", "r"),
        [(2, 2, 1), (100, 2, 1), (100, 101, 1), (100, 10, 0)],
    )
    def test_degenerate_plans_rejected(self, n, m, r) -> None:
        with pytest.raises(ValidationError):
            SubsamplePlan(n=n, subsample_size=m, n_subsamples=r, root_seed=0)

    def test_to_dict_is_the_full_recipe(self) -> None:
        plan = SubsamplePlan(n=100, subsample_size=10, n_subsamples=2, root_seed=9)
        snap = plan.to_dict()
        rebuilt = SubsamplePlan(**snap)
        assert np.array_equal(plan.indices(1), rebuilt.indices(1))


class TestPlanSubsamples:
    def test_defaults_resolve(self) -> None:
        plan = plan_subsamples(10_000)
        assert plan.subsample_size == default_subsample_size(10_000)
        assert plan.n_subsamples == DEFAULT_SUBSAMPLES
        assert plan.root_seed == 0

    def test_oversized_subsample_rejected(self) -> None:
        with pytest.raises(ValidationError, match="exceeds"):
            plan_subsamples(100, subsample_size=101)

    def test_resolve_plan_options_makes_plan_explicit(self) -> None:
        resolved = resolve_plan_options(10_000, {})
        assert resolved["subsamples"] == DEFAULT_SUBSAMPLES
        assert resolved["subsample_size"] == default_subsample_size(10_000)
        assert resolved["root_seed"] == 0

    def test_resolve_plan_options_idempotent(self) -> None:
        first = resolve_plan_options(10_000, {"root_seed": 4})
        assert resolve_plan_options(10_000, dict(first)) == first

    def test_resolve_plan_options_preserves_other_keys(self) -> None:
        resolved = resolve_plan_options(1000, {"workers": 2})
        assert resolved["workers"] == 2
