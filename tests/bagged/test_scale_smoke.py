"""Nightly scale smoke: bagged selection at n = 10⁶.

Runs only under both the ``scale`` marker (the nightly CI job selects
``-m scale``) and ``REPRO_SCALE=1`` (so a plain tier-1 ``pytest -x -q``
skips it even when the marker filter is absent).

The exact sweep at n = 10⁶ would be ~100× the 1479 s the blocked sweep
takes at n = 10⁵ (BENCH_blockwise.json) — out of reach for any CI box.
The bagged selector's whole claim is that this n is interactive: r = 20
subsamples of m = 5000 cost the same as 20 small sweeps.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.api import select_bandwidth

pytestmark = [
    pytest.mark.scale,
    pytest.mark.skipif(
        os.environ.get("REPRO_SCALE", "") in ("", "0"),
        reason="set REPRO_SCALE=1 to run the n=1,000,000 bagged smoke",
    ),
]

N = 1_000_000


def test_n1e6_bagged_selection_is_interactive() -> None:
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, N)
    y = 0.5 * x + 10.0 * x**2 + rng.uniform(0.0, 0.5, N)

    start = time.perf_counter()
    result = select_bandwidth(x, y, method="bagged", root_seed=0)
    wall = time.perf_counter() - start

    assert result.method == "bagged-cv"
    bag = result.diagnostics["bagged"]
    assert bag["n"] == N
    assert bag["subsample_size"] == 5000  # default m cap engaged
    assert bag["n_subsamples"] == 20
    assert np.isfinite(result.score)
    assert 0.0 < result.bandwidth <= 1.0
    # "Interactive" means minutes, not the ~40 hours an exact sweep
    # would extrapolate to; generous bound for loaded CI boxes.
    assert wall < 600.0

    # Determinism survives scale: the same root seed replays the same
    # subsample votes without rerunning the whole selection.
    again = select_bandwidth(x, y, method="bagged", root_seed=0)
    assert again.bandwidth == result.bandwidth
    assert np.array_equal(again.scores, result.scores)
