"""Tests for the bagged subsampled-CV selection subsystem."""
