"""Tests for the shared-memory workspace substrate.

Two invariants matter more than any feature: segment *ownership* (the
parent unlinks every segment exactly once, workers never do) and
*litter* (``/dev/shm`` holds no ``repro-shm-*`` entry once a workspace
closes, no matter how the run ended).
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.exceptions import SharedSegmentError, ValidationError
from repro.parallel import (
    SEGMENT_PREFIX,
    SharedArray,
    ShmWorkspace,
    WorkerPool,
    attach_workspace,
    current_workspace,
    detach_workspace,
)


def _litter() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


@pytest.fixture(autouse=True)
def no_segment_litter():
    assert _litter() == [], "leaked segments from an earlier test"
    yield
    assert _litter() == [], "test leaked shared-memory segments"


# Top-level so fork-pool workers can resolve them by name.
def _span_sum(start: int, stop: int) -> float:
    workspace = current_workspace()
    return float(np.sum(workspace["x"][start:stop]))


def _write_span(value: float, start: int, stop: int) -> tuple[int, int]:
    workspace = current_workspace()
    workspace["out"][start:stop] = value
    return start, stop


class TestSharedArray:
    def test_create_names_carry_the_prefix(self) -> None:
        shared = SharedArray.create("x", (8,), "float64")
        try:
            assert shared.spec.name.startswith(f"{SEGMENT_PREFIX}-x-")
            assert shared.owner
        finally:
            shared.close()

    def test_attach_sees_the_owner_bytes(self) -> None:
        owner = SharedArray.create("x", (16,), "float64")
        try:
            owner.array[...] = np.arange(16.0)
            view = SharedArray.attach(owner.spec)
            try:
                np.testing.assert_array_equal(view.array, np.arange(16.0))
                assert not view.owner
            finally:
                view.close()
        finally:
            owner.close()

    def test_attach_after_unlink_is_typed(self) -> None:
        owner = SharedArray.create("x", (4,), "float64")
        spec = owner.spec
        owner.close()
        with pytest.raises(SharedSegmentError, match="vanished"):
            SharedArray.attach(spec)

    def test_empty_segment_rejected(self) -> None:
        with pytest.raises(ValidationError):
            SharedArray.create("x", (0,), "float64")

    def test_close_is_idempotent(self) -> None:
        shared = SharedArray.create("x", (4,), "float64")
        shared.close()
        shared.close()


class TestShmWorkspace:
    def test_manifest_round_trip(self) -> None:
        x = np.arange(32.0)
        with ShmWorkspace.create(inputs={"x": x}) as workspace:
            attached = ShmWorkspace.attach(workspace.manifest())
            try:
                np.testing.assert_array_equal(attached["x"], x)
            finally:
                attached.close()

    def test_outputs_are_zeroed(self) -> None:
        with ShmWorkspace.create(
            inputs={}, outputs={"out": ((4, 3), "float64")}
        ) as workspace:
            assert workspace["out"].shape == (4, 3)
            assert not workspace["out"].any()

    def test_unknown_tag_is_typed(self) -> None:
        with ShmWorkspace.create(inputs={"x": np.arange(4.0)}) as workspace:
            with pytest.raises(SharedSegmentError, match="no segment"):
                workspace["nope"]

    def test_closed_workspace_refuses_access(self) -> None:
        workspace = ShmWorkspace.create(inputs={"x": np.arange(4.0)})
        workspace.close()
        workspace.close()  # idempotent
        with pytest.raises(SharedSegmentError, match="closed"):
            workspace["x"]

    def test_create_registers_the_parent_as_current(self) -> None:
        with ShmWorkspace.create(inputs={"x": np.arange(4.0)}) as workspace:
            assert current_workspace() is workspace
        with pytest.raises(SharedSegmentError, match="no shared-memory"):
            current_workspace()

    def test_detach_never_closes_the_owner(self) -> None:
        workspace = ShmWorkspace.create(inputs={"x": np.arange(4.0)})
        try:
            detach_workspace()
            # The owner's segments must survive a stray detach: only the
            # close() below may unlink them.
            np.testing.assert_array_equal(workspace["x"], np.arange(4.0))
        finally:
            workspace.close()


class TestPoolIntegration:
    def test_workers_read_through_the_manifest(self) -> None:
        x = np.arange(100.0)
        with ShmWorkspace.create(inputs={"x": x}) as workspace:
            with WorkerPool(
                2,
                initializer=attach_workspace,
                initargs=(workspace.manifest(),),
            ) as pool:
                got = pool.starmap(_span_sum, [(0, 50), (50, 100)])
        assert got == [float(np.sum(x[:50])), float(np.sum(x[50:]))]

    def test_workers_write_the_shared_output(self) -> None:
        with ShmWorkspace.create(
            inputs={}, outputs={"out": ((10,), "float64")}
        ) as workspace:
            with WorkerPool(
                2,
                initializer=attach_workspace,
                initargs=(workspace.manifest(),),
            ) as pool:
                pool.starmap(
                    _write_span, [(1.0, 0, 4), (2.0, 4, 10)]
                )
            expected = np.r_[np.ones(4), 2.0 * np.ones(6)]
            np.testing.assert_array_equal(workspace["out"], expected)

    def test_rebuild_reattaches_the_workspace(self) -> None:
        # The regression behind WorkerPool.rebuild(): a refork that
        # forgot its initializer would leave workers with no workspace
        # and every block call raising SharedSegmentError.
        x = np.arange(60.0)
        with ShmWorkspace.create(inputs={"x": x}) as workspace:
            with WorkerPool(
                2,
                initializer=attach_workspace,
                initargs=(workspace.manifest(),),
            ) as pool:
                before = pool.starmap(_span_sum, [(0, 30), (30, 60)])
                pool.rebuild()
                after = pool.starmap(_span_sum, [(0, 30), (30, 60)])
        assert after == before

    def test_serial_fallback_runs_in_the_parent(self) -> None:
        # workers=1 never forks: the parent's own (owning) workspace is
        # the process-current one and the block function resolves it.
        x = np.arange(20.0)
        with ShmWorkspace.create(inputs={"x": x}) as workspace:
            with WorkerPool(
                1,
                initializer=attach_workspace,
                initargs=(workspace.manifest(),),
            ) as pool:
                got = pool.starmap(_span_sum, [(0, 20)])
        assert got == [float(np.sum(x))]
