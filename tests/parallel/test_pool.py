"""Tests for the process-pool substrate."""

import os

import numpy as np
import pytest

from repro.exceptions import PoolStateError, ValidationError
from repro.parallel import WorkerPool, available_workers, parallel_sum


def _square(v):
    return v * v


_INIT_FLAG = "REPRO_TEST_POOL_INIT"


def _mark_initialized(value):
    os.environ[_INIT_FLAG] = value


def _read_init_flag(_item):
    return os.environ.get(_INIT_FLAG, "uninitialized")


def _block_vector(scale, start, stop):
    return scale * np.arange(start, stop, dtype=float)


class TestAvailableWorkers:
    def test_explicit_request_honoured(self):
        assert available_workers(3) == 3

    def test_default_positive(self):
        assert available_workers() >= 1

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            available_workers(0)


class TestWorkerPoolLifecycle:
    def test_context_manager_opens_and_closes(self):
        with WorkerPool(2) as pool:
            assert pool.is_open or pool.workers == 1
        assert not pool.is_open

    def test_open_idempotent(self):
        pool = WorkerPool(2)
        try:
            pool.open()
            pool.open()
            assert pool.is_open
        finally:
            pool.close()

    def test_close_idempotent(self):
        pool = WorkerPool(2)
        pool.open()
        pool.close()
        pool.close()
        assert not pool.is_open

    def test_terminate_idempotent(self):
        pool = WorkerPool(2)
        pool.open()
        pool.terminate()
        pool.terminate()
        assert not pool.is_open and pool.is_closed

    def test_closed_pool_reentry_is_typed(self):
        pool = WorkerPool(2)
        pool.open()
        pool.close()
        with pytest.raises(PoolStateError, match="closed worker pool"):
            pool.open()
        with pytest.raises(PoolStateError):
            pool.map(_square, [1, 2])

    def test_never_opened_pool_close_then_reentry(self):
        pool = WorkerPool(2)
        pool.close()  # retiring an unopened pool is fine...
        with pytest.raises(PoolStateError):
            pool.open()  # ...but it stays retired

    def test_exit_on_exception_terminates(self):
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError):
            with pool:
                raise RuntimeError("abandon the computation")
        assert pool.is_closed and not pool.is_open

    def test_rebuild_swaps_workers_and_counts(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            pool.rebuild()
            assert pool.rebuilds == 1
            assert pool.map(_square, [3]) == [9]

    def test_rebuild_reruns_the_initializer(self, monkeypatch):
        # Regression: rebuild() used to refork *without* the caller's
        # initializer/initargs, so replacement workers came up with none
        # of the state the original fork had (for the shm backend: no
        # attached workspace, every block call dead on arrival).  The
        # flag lives in worker environments only — the parent never sets
        # it — so a refork that skips the initializer reads
        # "uninitialized".
        monkeypatch.delenv(_INIT_FLAG, raising=False)
        with WorkerPool(
            2, initializer=_mark_initialized, initargs=("ready",)
        ) as pool:
            assert set(pool.map(_read_init_flag, range(4))) == {"ready"}
            pool.rebuild()
            assert set(pool.map(_read_init_flag, range(4))) == {"ready"}
        assert _INIT_FLAG not in os.environ

    def test_rebuild_of_closed_pool_rejected(self):
        pool = WorkerPool(2)
        pool.open()
        pool.close()
        with pytest.raises(PoolStateError, match="rebuild"):
            pool.rebuild()

    def test_healthy_pool_is_not_rebuilt(self):
        with WorkerPool(2) as pool:
            pool.open()
            assert pool.is_healthy
            assert not pool.ensure_healthy()
            assert pool.rebuilds == 0


class TestExecution:
    def test_apply_async_returns_future(self):
        with WorkerPool(2) as pool:
            future = pool.apply_async(_square, (6,))
            assert future.get(timeout=30) == 36

    def test_map_parallel(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_map_serial_fallback(self):
        assert WorkerPool(1).map(_square, [2, 3]) == [4, 9]

    def test_starmap(self):
        with WorkerPool(2) as pool:
            got = pool.starmap(_block_vector, [(2.0, 0, 3), (3.0, 3, 5)])
        np.testing.assert_array_equal(got[0], [0.0, 2.0, 4.0])
        np.testing.assert_array_equal(got[1], [9.0, 12.0])

    def test_sum_over_blocks_reduces_vectors(self):
        # 2 equal blocks of 5 rows: the reduce adds the two 5-vectors.
        with WorkerPool(2) as pool:
            total = pool.sum_over_blocks(_block_vector, 10, shared_args=(1.0,))
        np.testing.assert_array_equal(
            total, np.arange(0, 5, dtype=float) + np.arange(5, 10, dtype=float)
        )

    def test_sum_over_blocks_custom_block_args(self):
        with WorkerPool(2) as pool:
            total = pool.sum_over_blocks(
                _scalar_block,
                60,
                block_args=lambda lo, hi: (3.0, lo, hi),
            )
        assert total == 3.0 * sum(range(60))

    def test_sum_over_blocks_scalar(self):
        def args_for(start, stop):
            return (1.0, start, stop)

        with WorkerPool(2) as pool:
            total = pool.sum_over_blocks(
                _scalar_block, 100, shared_args=(1.0,)
            )
        assert total == sum(range(100))


def _scalar_block(scale, start, stop):
    return scale * sum(range(start, stop))


class TestParallelSum:
    def test_one_shot_helper(self):
        total = parallel_sum(_scalar_block, 50, shared_args=(2.0,), workers=2)
        assert total == 2.0 * sum(range(50))

    def test_single_worker_path(self):
        total = parallel_sum(_scalar_block, 50, shared_args=(1.0,), workers=1)
        assert total == sum(range(50))
