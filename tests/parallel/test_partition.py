"""Tests for the work partitioner."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.parallel import balanced_blocks


class TestBalancedBlocks:
    def test_even_split(self):
        assert balanced_blocks(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_spread_to_front(self):
        assert balanced_blocks(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        blocks = balanced_blocks(3, 10)
        assert blocks == [(0, 1), (1, 2), (2, 3)]

    def test_zero_total(self):
        assert balanced_blocks(0, 4) == []

    def test_single_part(self):
        assert balanced_blocks(7, 1) == [(0, 7)]

    def test_negative_total_rejected(self):
        with pytest.raises(ValidationError):
            balanced_blocks(-1, 2)

    def test_nonpositive_parts_rejected(self):
        with pytest.raises(ValidationError):
            balanced_blocks(5, 0)

    @given(total=st.integers(0, 2000), parts=st.integers(1, 64))
    def test_blocks_partition_exactly_and_balance(self, total, parts):
        blocks = balanced_blocks(total, parts)
        covered = [i for lo, hi in blocks for i in range(lo, hi)]
        assert covered == list(range(total))
        if blocks:
            sizes = [hi - lo for lo, hi in blocks]
            assert max(sizes) - min(sizes) <= 1
            assert 0 not in sizes
