"""Tests for the roofline timing-model primitives."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import TESLA_S1070, PhaseTime, SimulatedRuntime, TimingModel


class TestPhaseTime:
    def test_phase_time_is_max_of_resources(self):
        p = PhaseTime("x", compute_seconds=2.0, memory_seconds=5.0)
        assert p.seconds == 5.0
        assert p.bound == "memory"

    def test_compute_bound(self):
        p = PhaseTime("x", compute_seconds=3.0, memory_seconds=1.0)
        assert p.bound == "compute"


class TestSimulatedRuntime:
    def _runtime(self):
        return SimulatedRuntime(
            phases=(
                PhaseTime("a", 1.0, 0.5),
                PhaseTime("b", 0.1, 2.0),
            ),
            overhead_seconds=0.09,
        )

    def test_total_adds_overhead_and_phases(self):
        assert self._runtime().total_seconds == pytest.approx(0.09 + 1.0 + 2.0)

    def test_phase_lookup(self):
        assert self._runtime().phase("b").memory_seconds == 2.0
        with pytest.raises(ValidationError):
            self._runtime().phase("zzz")

    def test_breakdown_renders_all_phases(self):
        text = self._runtime().breakdown()
        assert "a" in text and "b" in text and "TOTAL" in text


class TestTimingModel:
    def test_compute_rate_scales_with_ops(self):
        tm = TimingModel(TESLA_S1070)
        assert tm.compute_seconds(2e9) == pytest.approx(
            2.0 * tm.compute_seconds(1e9)
        )

    def test_low_occupancy_slows_compute(self):
        tm = TimingModel(TESLA_S1070)
        # 32 threads use one warp; 240+ threads saturate the device.
        slow = tm.compute_seconds(1e9, threads=32)
        fast = tm.compute_seconds(1e9, threads=10_000)
        assert slow > 5.0 * fast

    def test_threads_rounded_to_warps(self):
        tm = TimingModel(TESLA_S1070)
        assert tm.compute_seconds(1e9, threads=1) == pytest.approx(
            tm.compute_seconds(1e9, threads=32)
        )

    def test_uncoalesced_access_much_slower_than_coalesced(self):
        tm = TimingModel(TESLA_S1070)
        accesses = 1e8
        coalesced = tm.memory_seconds_coalesced(accesses * 4)
        scattered = tm.memory_seconds_uncoalesced(accesses)
        assert scattered == pytest.approx(coalesced * 32)  # 128B / 4B

    def test_divergence_penalty_validated(self):
        with pytest.raises(ValidationError):
            TimingModel(divergence_penalty=0.5)

    def test_negative_work_rejected(self):
        tm = TimingModel()
        with pytest.raises(ValidationError):
            tm.compute_seconds(-1)
        with pytest.raises(ValidationError):
            tm.memory_seconds_coalesced(-1)
        with pytest.raises(ValidationError):
            tm.memory_seconds_uncoalesced(-1)

    def test_phase_combines_both_memory_kinds(self):
        tm = TimingModel()
        p = tm.phase("x", ops=0, coalesced_bytes=1e9, uncoalesced_accesses=1e6)
        expected = tm.memory_seconds_coalesced(1e9) + tm.memory_seconds_uncoalesced(1e6)
        assert p.memory_seconds == pytest.approx(expected)

    def test_launch_overhead_linear(self):
        tm = TimingModel()
        assert tm.launch_overhead(100) == pytest.approx(100 * 5e-6)
        with pytest.raises(ValidationError):
            tm.launch_overhead(-1)

    def test_modern_gpu_faster(self):
        paper = TimingModel("tesla-s1070")
        modern = TimingModel("modern-gpu")
        assert modern.compute_seconds(1e10) < paper.compute_seconds(1e10)
        assert modern.memory_seconds_coalesced(1e10) < paper.memory_seconds_coalesced(1e10)
