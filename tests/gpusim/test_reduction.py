"""Tests for the Harris-style tree reductions (paper §IV-B / ref [17])."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LaunchConfigurationError
from repro.gpusim import device_argmin, device_sum


class TestDeviceSum:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(size=1000).astype(np.float32)
        total, _ = device_sum(data, block_dim=128)
        assert total == pytest.approx(float(data.sum()), rel=1e-4)

    def test_shorter_than_block(self):
        data = np.arange(5, dtype=np.float32)
        total, _ = device_sum(data, block_dim=64)
        assert total == pytest.approx(10.0)

    def test_explicit_n_limits_range(self):
        data = np.ones(100, dtype=np.float32)
        total, _ = device_sum(data, n=40, block_dim=32)
        assert total == pytest.approx(40.0)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(LaunchConfigurationError, match="power-of-two"):
            device_sum(np.ones(8, dtype=np.float32), block_dim=48)

    def test_barrier_count_is_log_tree(self):
        data = np.ones(10, dtype=np.float32)
        _, stats = device_sum(data, block_dim=64)
        # 1 alloc barrier + 1 accumulate barrier + log2(64) tree rounds.
        assert stats.barriers == 2 + 6

    @given(
        values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                        max_size=300),
        block=st.sampled_from([32, 64, 256, 512]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, values, block):
        data = np.array(values, dtype=np.float32)
        total, _ = device_sum(data, block_dim=block)
        assert total == pytest.approx(float(data.astype(np.float64).sum()),
                                      rel=1e-3, abs=1e-2)


class TestDeviceArgmin:
    def test_matches_numpy_argmin(self):
        rng = np.random.default_rng(1)
        scores = rng.uniform(size=500).astype(np.float32)
        values = np.arange(500, dtype=np.float32)
        mn, val, _ = device_argmin(scores, values, block_dim=128)
        j = int(scores.argmin())
        assert mn == pytest.approx(float(scores[j]))
        assert val == float(j)

    def test_carries_bandwidth_not_index(self):
        scores = np.array([3.0, 1.0, 2.0], dtype=np.float32)
        bandwidths = np.array([0.1, 0.2, 0.3], dtype=np.float32)
        _, best_h, _ = device_argmin(scores, bandwidths, block_dim=32)
        assert best_h == pytest.approx(0.2)

    def test_nonfinite_scores_never_win(self):
        scores = np.array([np.inf, np.nan, 5.0], dtype=np.float32)
        values = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        mn, val, _ = device_argmin(scores, values, block_dim=32)
        assert mn == pytest.approx(5.0)
        assert val == pytest.approx(3.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LaunchConfigurationError):
            device_argmin(
                np.zeros(3, dtype=np.float32), np.zeros(4, dtype=np.float32)
            )

    def test_k_larger_than_block(self):
        # More scores than threads: the modulus-T accumulation loop.
        rng = np.random.default_rng(2)
        scores = rng.uniform(1, 2, size=2000).astype(np.float32)
        scores[1234] = 0.5
        values = np.arange(2000, dtype=np.float32)
        mn, val, _ = device_argmin(scores, values, block_dim=64)
        assert val == 1234.0

    @given(seed=st.integers(0, 5000), k=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, seed, k):
        rng = np.random.default_rng(seed)
        scores = rng.uniform(size=k).astype(np.float32)
        values = rng.uniform(size=k).astype(np.float32)
        mn, val, _ = device_argmin(scores, values, block_dim=32)
        j = int(scores.argmin())
        assert mn == pytest.approx(float(scores[j]), rel=1e-6)
        # Ties in float32 could map to any tied value; check score match.
        candidates = values[scores == scores[j]]
        assert any(val == pytest.approx(float(c), rel=1e-6) for c in candidates)
