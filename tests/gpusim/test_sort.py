"""Tests for the iterative dual-array quicksort (paper §IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.gpusim import MAX_LEVELS, iterative_quicksort, quicksort_ops_estimate


class TestBasicSorting:
    def test_sorts_random_keys(self):
        rng = np.random.default_rng(0)
        keys = rng.uniform(size=500)
        iterative_quicksort(keys)
        assert (np.diff(keys) >= 0).all()

    def test_payload_follows_keys(self):
        keys = np.array([3.0, 1.0, 2.0])
        payload = np.array([30.0, 10.0, 20.0])
        iterative_quicksort(keys, payload)
        np.testing.assert_array_equal(keys, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(payload, [10.0, 20.0, 30.0])

    def test_empty_and_singleton(self):
        empty = np.empty(0)
        iterative_quicksort(empty)
        one = np.array([5.0])
        iterative_quicksort(one)
        assert one[0] == 5.0

    def test_two_elements(self):
        keys = np.array([2.0, 1.0])
        iterative_quicksort(keys)
        np.testing.assert_array_equal(keys, [1.0, 2.0])

    def test_payload_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            iterative_quicksort(np.zeros(3), np.zeros(4))

    def test_2d_keys_rejected(self):
        with pytest.raises(ValidationError):
            iterative_quicksort(np.zeros((2, 2)))


class TestAdversarialInputs:
    """The fixed-size explicit stack must survive worst-case patterns."""

    def test_already_sorted(self):
        keys = np.arange(500.0)
        iterative_quicksort(keys)
        np.testing.assert_array_equal(keys, np.arange(500.0))

    def test_reverse_sorted(self):
        keys = np.arange(500.0)[::-1].copy()
        iterative_quicksort(keys)
        np.testing.assert_array_equal(keys, np.arange(500.0))

    def test_all_equal(self):
        keys = np.full(300, 1.5)
        iterative_quicksort(keys)
        assert (keys == 1.5).all()

    def test_many_ties_with_payload(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 5, 400).astype(float)
        payload = rng.uniform(size=400)
        pairs_before = sorted(zip(keys.tolist(), payload.tolist()))
        iterative_quicksort(keys, payload)
        pairs_after = sorted(zip(keys.tolist(), payload.tolist()))
        assert pairs_before == pairs_after  # same multiset of pairs
        assert (np.diff(keys) >= 0).all()

    def test_organ_pipe(self):
        keys = np.concatenate([np.arange(100.0), np.arange(100.0)[::-1]])
        iterative_quicksort(keys)
        assert (np.diff(keys) >= 0).all()


class TestProperties:
    @given(
        data=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=200
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_sort(self, data):
        keys = np.array(data, dtype=float)
        expected = np.sort(keys)
        iterative_quicksort(keys)
        np.testing.assert_array_equal(keys, expected)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 150))
    @settings(max_examples=40, deadline=None)
    def test_key_payload_pairing_preserved(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = rng.uniform(size=n)
        payload = keys * 2.0 + 1.0  # payload functionally tied to key
        iterative_quicksort(keys, payload)
        np.testing.assert_allclose(payload, keys * 2.0 + 1.0)


class TestOpsAccounting:
    def test_count_ops_positive_for_random_input(self):
        rng = np.random.default_rng(3)
        keys = rng.uniform(size=256)
        ops = iterative_quicksort(keys, count_ops=True)
        assert ops > 0

    def test_count_disabled_returns_zero(self):
        rng = np.random.default_rng(4)
        keys = rng.uniform(size=64)
        assert iterative_quicksort(keys) == 0

    def test_analytic_estimate_within_factor_two(self):
        rng = np.random.default_rng(5)
        for n in (128, 1024):
            keys = rng.uniform(size=n)
            ops = iterative_quicksort(keys, count_ops=True)
            estimate = quicksort_ops_estimate(n)
            assert estimate / 2.5 < ops < estimate * 2.5

    def test_estimate_edge_cases(self):
        assert quicksort_ops_estimate(0) == 0.0
        assert quicksort_ops_estimate(1) == 0.0
        assert quicksort_ops_estimate(1000) > 10_000

    def test_max_levels_constant_sane(self):
        assert MAX_LEVELS >= 64
