"""Tests for the simulated device memory — including the paper's limits."""

import numpy as np
import pytest

from repro.exceptions import (
    ConstantMemoryError,
    DeviceMemoryError,
    DeviceStateError,
    SharedMemoryError,
    ValidationError,
)
from repro.gpusim import ConstantMemory, GlobalMemory, SharedMemory, TESLA_S1070


class TestGlobalMemoryAccounting:
    def test_allocation_tracks_bytes(self):
        gm = GlobalMemory()
        buf = gm.malloc(1000, np.float32)
        assert gm.bytes_allocated >= 4000
        gm.free(buf)
        assert gm.bytes_allocated == 0

    def test_alignment_to_256(self):
        gm = GlobalMemory()
        buf = gm.malloc(1, np.float32)
        assert buf.nbytes_reserved == 256

    def test_peak_tracked(self):
        gm = GlobalMemory()
        a = gm.malloc(10000, np.float32)
        gm.free(a)
        gm.malloc(100, np.float32)
        assert gm.peak_bytes >= 40000

    def test_oom_raises_and_leaves_state_clean(self):
        gm = GlobalMemory()
        with pytest.raises(DeviceMemoryError):
            gm.malloc((100_000, 100_000), np.float64)
        assert gm.bytes_allocated == 0

    def test_double_free_rejected(self):
        gm = GlobalMemory()
        buf = gm.malloc(10)
        gm.free(buf)
        with pytest.raises(DeviceStateError, match="double free"):
            gm.free(buf)

    def test_use_after_free_rejected(self):
        gm = GlobalMemory()
        buf = gm.malloc(10)
        gm.free(buf)
        with pytest.raises(DeviceStateError):
            buf.copy_to_host()

    def test_free_all(self):
        gm = GlobalMemory()
        gm.malloc(10)
        gm.malloc(20)
        gm.free_all()
        assert gm.bytes_allocated == 0
        assert gm.live_buffers == []

    def test_negative_shape_rejected(self):
        gm = GlobalMemory()
        with pytest.raises(ValidationError):
            gm.malloc((-1, 5))

    def test_report_fields(self):
        gm = GlobalMemory()
        gm.malloc(1000)
        report = gm.report()
        assert report["device"] == "tesla-s1070"
        assert report["live_buffers"] == 1
        assert report["allocated_gb"] > 0

    def test_reserve_accounts_without_backing(self):
        gm = GlobalMemory()
        buf = gm.reserve((20_000, 20_000), np.float32, label="big")
        assert gm.bytes_allocated >= 20_000 * 20_000 * 4
        with pytest.raises(DeviceStateError, match="account-only"):
            buf.copy_to_host()
        gm.free(buf)
        assert gm.bytes_allocated == 0

    def test_reserve_enforces_capacity_like_malloc(self):
        gm = GlobalMemory()
        gm.reserve((20_000, 20_000), np.float32)
        gm.reserve((20_000, 20_000), np.float32)
        with pytest.raises(DeviceMemoryError):
            gm.reserve((20_000, 20_000), np.float32)


class TestDeviceBuffer:
    def test_copy_roundtrip(self):
        gm = GlobalMemory()
        buf = gm.malloc(5, np.float32)
        host = np.arange(5, dtype=np.float64)
        buf.copy_from_host(host)
        got = buf.copy_to_host()
        assert got.dtype == np.float32
        np.testing.assert_array_equal(got, host.astype(np.float32))

    def test_copy_shape_mismatch_rejected(self):
        gm = GlobalMemory()
        buf = gm.malloc(5)
        with pytest.raises(ValidationError):
            buf.copy_from_host(np.zeros(6))

    def test_fill(self):
        gm = GlobalMemory()
        buf = gm.malloc(4)
        buf.fill(2.5)
        np.testing.assert_array_equal(buf.copy_to_host(), 2.5)

    def test_copy_returns_independent_array(self):
        gm = GlobalMemory()
        buf = gm.malloc(3)
        host = buf.copy_to_host()
        host[:] = 99.0
        assert (buf.copy_to_host() == 0.0).all()


class TestPaperLimits:
    """§IV-A / §V: the exact resource walls the paper reports."""

    def test_two_nxn_matrices_fit_at_n_20000(self):
        gm = GlobalMemory(TESLA_S1070)
        gm.reserve((20_000, 20_000), np.float32, label="absdiff")
        gm.reserve((20_000, 20_000), np.float32, label="y")
        assert gm.bytes_allocated < gm.capacity

    def test_two_nxn_matrices_oom_at_n_25000(self):
        gm = GlobalMemory(TESLA_S1070)
        gm.reserve((25_000, 25_000), np.float32, label="absdiff")
        with pytest.raises(DeviceMemoryError):
            gm.reserve((25_000, 25_000), np.float32, label="y")

    def test_constant_memory_2048_float32_cap(self):
        cm = ConstantMemory(TESLA_S1070)
        cm.store(np.zeros(2048, dtype=np.float32))
        with pytest.raises(ConstantMemoryError, match="2048"):
            cm.store(np.zeros(2049, dtype=np.float32))

    def test_shared_memory_16kb_cap(self):
        sm = SharedMemory(TESLA_S1070)
        sm.alloc(2 * 512, np.float32)  # the argmin reduction's 2T floats
        with pytest.raises(SharedMemoryError):
            sm.alloc(4096, np.float32)


class TestConstantMemory:
    def test_read_before_store_rejected(self):
        with pytest.raises(DeviceStateError):
            ConstantMemory().read()

    def test_store_and_read(self):
        cm = ConstantMemory()
        cm.store(np.array([1.0, 2.0]))
        got = cm.read()
        assert got.dtype == np.float32
        np.testing.assert_array_equal(got, [1.0, 2.0])
        assert cm.occupied_bytes == 8


class TestSharedMemory:
    def test_alloc_and_reset(self):
        sm = SharedMemory()
        arr = sm.alloc(100, np.float32)
        assert arr.shape == (100,)
        assert sm.bytes_allocated == 400
        sm.reset()
        assert sm.bytes_allocated == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            SharedMemory().alloc(-1)
