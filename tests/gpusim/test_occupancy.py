"""Tests for the SM occupancy model (paper §IV-B block-size choice)."""

import pytest

from repro.exceptions import LaunchConfigurationError, ValidationError
from repro.gpusim import TESLA_S1070
from repro.gpusim.occupancy import OccupancyReport, best_block_size, occupancy


class TestOccupancyCalculation:
    def test_512_full_occupancy_for_light_kernel(self):
        rep = occupancy(512, registers_per_thread=16)
        assert rep.blocks_per_sm == 2
        assert rep.occupancy == pytest.approx(1.0)

    def test_small_blocks_hit_the_block_cap(self):
        rep = occupancy(32, registers_per_thread=16)
        assert rep.limiter == "blocks"
        assert rep.blocks_per_sm == 8
        assert rep.occupancy == pytest.approx(8 * 32 / 1024)

    def test_warp_rounding(self):
        # 33 threads occupy 2 warps = 64 lanes.
        rep = occupancy(33)
        assert rep.warps_per_block == 2

    def test_register_pressure_limits(self):
        light = occupancy(512, registers_per_thread=16)
        heavy = occupancy(512, registers_per_thread=64)
        assert heavy.occupancy < light.occupancy
        assert heavy.limiter == "registers"

    def test_shared_memory_limits(self):
        # The argmin reduction's 2*512 floats = 4 KB/block: 4 blocks fit
        # 16 KB but the thread cap binds first at 512 threads/block.
        rep = occupancy(512, shared_bytes_per_block=4096)
        assert rep.blocks_per_sm == 2
        heavy = occupancy(128, shared_bytes_per_block=9000)
        assert heavy.limiter == "shared-memory"
        assert heavy.blocks_per_sm == 1

    def test_block_limit_validated(self):
        with pytest.raises(LaunchConfigurationError):
            occupancy(1024, device=TESLA_S1070)
        with pytest.raises(LaunchConfigurationError):
            occupancy(0)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            occupancy(64, registers_per_thread=0)
        with pytest.raises(ValidationError):
            occupancy(64, shared_bytes_per_block=-1)


class TestPaperBlockSizeChoice:
    def test_512_is_best_for_the_main_kernel(self):
        # The paper's main kernel: no shared memory, no synchronisation.
        best, reports = best_block_size(registers_per_thread=16)
        assert best == 512
        by_block = {r.block_dim: r for r in reports}
        # Everything from 128 up reaches full occupancy; the tie breaks
        # toward the largest block, which is the paper's empirical pick.
        assert by_block[128].occupancy == pytest.approx(1.0)
        assert by_block[32].occupancy < 1.0

    def test_modern_device_allows_1024(self):
        best, _ = best_block_size(
            device="modern-gpu", candidates=(256, 512, 1024)
        )
        assert best == 1024

    def test_no_fitting_candidate_rejected(self):
        with pytest.raises(ValidationError):
            best_block_size(candidates=(2048,))

    def test_report_str(self):
        assert "threads/block" in str(occupancy(256))
