"""Tests for the SPMD launch engine and barrier scheduling."""

import numpy as np
import pytest

from repro.exceptions import KernelExecutionError, LaunchConfigurationError
from repro.gpusim import TESLA_S1070, launch_kernel


def _fill_global_id(ctx, out):
    out[ctx.global_id] = ctx.global_id


class TestLaunchConfiguration:
    def test_grid_times_block_threads(self):
        out = np.full(8, -1.0)
        stats = launch_kernel(_fill_global_id, grid_dim=2, block_dim=4, args=(out,))
        assert stats.threads == 8
        np.testing.assert_array_equal(out, np.arange(8))

    def test_block_limit_enforced(self):
        with pytest.raises(LaunchConfigurationError, match="exceeds device limit"):
            launch_kernel(_fill_global_id, grid_dim=1, block_dim=1024,
                          args=(np.zeros(1024),), device=TESLA_S1070)

    def test_modern_device_allows_1024(self):
        out = np.zeros(1024)
        launch_kernel(_fill_global_id, grid_dim=1, block_dim=1024,
                      args=(out,), device="modern-gpu")
        assert out[-1] == 1023

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(LaunchConfigurationError):
            launch_kernel(_fill_global_id, grid_dim=0, block_dim=4, args=(np.zeros(1),))

    def test_thread_context_indices(self):
        records = []

        def probe(ctx):
            records.append((ctx.block_idx, ctx.thread_idx, ctx.global_id,
                            ctx.block_dim, ctx.grid_dim))

        launch_kernel(probe, grid_dim=2, block_dim=3)
        assert (1, 2, 5, 3, 2) in records
        assert len(records) == 6


class TestErrorPropagation:
    def test_thread_exception_wrapped(self):
        def boom(ctx):
            if ctx.global_id == 3:
                raise ValueError("device fault")

        with pytest.raises(KernelExecutionError, match="device fault"):
            launch_kernel(boom, grid_dim=1, block_dim=8)

    def test_cooperative_exception_wrapped(self):
        def boom(ctx):
            yield
            raise RuntimeError("after barrier")

        with pytest.raises(KernelExecutionError, match="after barrier"):
            launch_kernel(boom, grid_dim=1, block_dim=2)


class TestBarrierSemantics:
    def test_all_threads_reach_barrier_before_any_proceeds(self):
        n = 8
        stage = np.zeros(n)

        def kernel(ctx, stage):
            stage[ctx.thread_idx] = 1.0
            yield  # barrier
            # After the barrier, every thread must observe every write.
            assert stage.sum() == n
            ctx.tally(ops=1)

        stats = launch_kernel(kernel, grid_dim=1, block_dim=n, args=(stage,))
        assert stats.barriers >= 1
        assert stats.ops == n

    def test_blocks_do_not_share_barriers(self):
        # Two blocks, each with its own barrier round: per-block shared
        # state must not leak across blocks.
        def kernel(ctx, out):
            local = ctx.shared.alloc(1) if ctx.thread_idx == 0 else None
            yield
            arr = ctx.shared._arrays[0]
            if ctx.thread_idx == 0:
                arr[0] = ctx.block_idx
            yield
            out[ctx.global_id] = ctx.shared._arrays[0][0]

        out = np.full(4, -1.0)
        launch_kernel(kernel, grid_dim=2, block_dim=2, args=(out,))
        np.testing.assert_array_equal(out, [0.0, 0.0, 1.0, 1.0])

    def test_divergent_barrier_detected(self):
        def divergent(ctx):
            if ctx.thread_idx == 0:
                return  # exits before the barrier other threads reach
                yield  # pragma: no cover - makes this a generator fn
            yield

        with pytest.raises(KernelExecutionError, match="divergent"):
            launch_kernel(divergent, grid_dim=1, block_dim=4)


class TestInstrumentation:
    def test_tallies_accumulate_across_threads(self):
        def worker(ctx):
            ctx.tally(ops=2, bytes_read=8, bytes_written=4)

        stats = launch_kernel(worker, grid_dim=2, block_dim=3)
        assert stats.ops == 12
        assert stats.bytes_read == 48
        assert stats.bytes_written == 24

    def test_kernel_name_recorded(self):
        def my_named_kernel(ctx):
            pass

        stats = launch_kernel(my_named_kernel, grid_dim=1, block_dim=1)
        assert stats.kernel_name == "my_named_kernel"
