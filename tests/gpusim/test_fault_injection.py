"""Failure-injection tests: the simulator must fail loudly and typed.

Real CUDA programs die in characteristic ways — OOM mid-sequence,
invalid launches, device faults inside kernels, divergent barriers.
These tests drive each failure path and assert (a) the typed exception
surfaces and (b) the simulator's state stays consistent afterwards.
"""

import numpy as np
import pytest

from repro.exceptions import (
    DeviceMemoryError,
    DeviceStateError,
    GpuSimError,
    KernelExecutionError,
    LaunchConfigurationError,
    ReproError,
)
from repro.gpusim import GlobalMemory, TESLA_S1070, launch_kernel


class TestOomMidSequence:
    def test_partial_allocations_survive_oom(self):
        gm = GlobalMemory()
        a = gm.malloc((1000,), np.float32, label="a")
        before = gm.bytes_allocated
        with pytest.raises(DeviceMemoryError):
            gm.malloc((60_000, 60_000), np.float32, label="huge")
        # The failed allocation must not leak accounting.
        assert gm.bytes_allocated == before
        # ... and the earlier buffer is still usable.
        a.fill(1.0)
        assert (a.copy_to_host() == 1.0).all()

    def test_free_after_oom_returns_capacity(self):
        gm = GlobalMemory()
        a = gm.reserve((20_000, 20_000), np.float32)
        b = gm.reserve((20_000, 20_000), np.float32)
        with pytest.raises(DeviceMemoryError):
            gm.reserve((20_000, 20_000), np.float32)
        gm.free(a)
        # Freed capacity is immediately reusable.
        c = gm.reserve((20_000, 20_000), np.float32)
        assert c.nbytes_reserved == a.nbytes_reserved


class TestKernelFaults:
    def test_fault_reports_thread_coordinates(self):
        def faulty(ctx):
            if ctx.global_id == 5:
                raise ZeroDivisionError("boom")

        with pytest.raises(KernelExecutionError, match=r"\(1,1\)"):
            launch_kernel(faulty, grid_dim=2, block_dim=4)

    def test_original_exception_chained(self):
        def faulty(ctx):
            raise IndexError("out of range")

        with pytest.raises(KernelExecutionError) as excinfo:
            launch_kernel(faulty, grid_dim=1, block_dim=1)
        assert isinstance(excinfo.value.__cause__, IndexError)

    def test_cooperative_fault_before_first_barrier(self):
        def faulty(ctx):
            if ctx.thread_idx == 2:
                raise RuntimeError("early fault")
            yield

        with pytest.raises(KernelExecutionError, match="early fault"):
            launch_kernel(faulty, grid_dim=1, block_dim=4)


class TestExceptionHierarchy:
    def test_gpusim_errors_are_repro_errors(self):
        assert issubclass(GpuSimError, ReproError)
        assert issubclass(DeviceMemoryError, GpuSimError)
        assert issubclass(DeviceMemoryError, MemoryError)
        assert issubclass(LaunchConfigurationError, GpuSimError)
        assert issubclass(DeviceStateError, GpuSimError)

    def test_single_catch_all(self):
        # A caller catching ReproError sees every library failure mode.
        gm = GlobalMemory()
        with pytest.raises(ReproError):
            gm.malloc((60_000, 60_000), np.float64)
        with pytest.raises(ReproError):
            launch_kernel(lambda ctx: None, grid_dim=0, block_dim=1)


class TestEndToEndFaultRecovery:
    def test_program_usable_after_oom(self):
        """An OOM'd program run must not poison subsequent runs."""
        from repro.core.grid import BandwidthGrid
        from repro.cuda_port import CudaBandwidthProgram
        from repro.data import paper_dgp

        rng = np.random.default_rng(0)
        big_x = rng.uniform(size=25_000)
        big_y = big_x + rng.normal(size=25_000) * 0.1
        program = CudaBandwidthProgram(mode="fast")
        with pytest.raises(DeviceMemoryError):
            program.run(big_x, big_y, BandwidthGrid.for_sample(big_x, 10).values)

        small = paper_dgp(200, seed=1)
        grid = BandwidthGrid.for_sample(small.x, 10)
        result = program.run(small.x, small.y, grid.values)
        assert result.bandwidth > 0.0
