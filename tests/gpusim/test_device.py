"""Tests for the device models."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import (
    DEVICE_REGISTRY,
    MODERN_GPU,
    TESLA_S1070,
    DeviceSpec,
    get_device,
    register_device,
)


class TestTeslaProfile:
    """The paper's hardware: 240 streaming cores, 4 GB, CC 1.3."""

    def test_core_count(self):
        assert TESLA_S1070.total_cores == 240
        assert TESLA_S1070.sm_count == 30
        assert TESLA_S1070.cores_per_sm == 8

    def test_memory_sizes(self):
        assert TESLA_S1070.global_memory_bytes == 4 * 1024**3
        assert TESLA_S1070.constant_cache_bytes == 8 * 1024
        assert TESLA_S1070.shared_memory_per_block_bytes == 16 * 1024

    def test_block_and_warp_limits(self):
        assert TESLA_S1070.max_threads_per_block == 512
        assert TESLA_S1070.warp_size == 32

    def test_cc13_restrictions(self):
        # Why the paper needs an *iterative* quicksort and host-side
        # allocation of every intermediate.
        assert not TESLA_S1070.supports_recursion
        assert not TESLA_S1070.supports_device_malloc

    def test_constant_float_cap_is_2048(self):
        assert TESLA_S1070.max_constant_floats() == 2048

    def test_throughputs_positive(self):
        assert TESLA_S1070.ops_per_second > 0
        assert TESLA_S1070.bytes_per_second == pytest.approx(102e9)


class TestModernProfile:
    def test_lifts_cc1x_restrictions(self):
        assert MODERN_GPU.supports_recursion
        assert MODERN_GPU.supports_device_malloc

    def test_larger_memory(self):
        assert MODERN_GPU.global_memory_bytes > TESLA_S1070.global_memory_bytes


class TestSpecValidation:
    def test_nonpositive_fields_rejected(self):
        with pytest.raises(ValidationError):
            TESLA_S1070.with_overrides(sm_count=0)

    def test_block_must_be_warp_multiple(self):
        with pytest.raises(ValidationError):
            TESLA_S1070.with_overrides(max_threads_per_block=500)

    def test_with_overrides_copies(self):
        bigger = TESLA_S1070.with_overrides(global_memory_bytes=8 * 1024**3)
        assert bigger.global_memory_bytes == 8 * 1024**3
        assert TESLA_S1070.global_memory_bytes == 4 * 1024**3


class TestRegistry:
    def test_default_device_is_tesla(self):
        assert get_device() is TESLA_S1070

    def test_lookup_by_name(self):
        assert get_device("modern-gpu") is MODERN_GPU

    def test_instance_passthrough(self):
        assert get_device(MODERN_GPU) is MODERN_GPU

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError, match="unknown device"):
            get_device("gtx-480")

    def test_register_and_cleanup(self):
        spec = TESLA_S1070.with_overrides(name="test-device")
        try:
            register_device(spec)
            assert get_device("test-device") is spec
        finally:
            DEVICE_REGISTRY.pop("test-device", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError):
            register_device(TESLA_S1070)
