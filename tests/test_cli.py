"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.k == 50
        assert args.repetitions == 1

    def test_sizes_parsing(self):
        args = build_parser().parse_args(["table1", "--sizes", "100,500"])
        assert args.sizes == "100,500"

    def test_select_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["select", "--method", "magic"])

    def test_select_json_flag(self):
        args = build_parser().parse_args(["select", "--json"])
        assert args.json is True
        assert args.cache_dir is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8173
        assert args.max_batch_size == 32
        assert args.max_wait_ms == 2.0
        assert args.max_queue == 256
        assert args.no_model is False
        assert args.no_resilience is False

    def test_serve_tuning_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--no-model", "--max-batch-size", "4",
            "--max-wait-ms", "0.5", "--cache-dir", "/tmp/c",
        ])
        assert args.port == 0
        assert args.no_model is True
        assert args.max_batch_size == 4
        assert args.cache_dir == "/tmp/c"

    def test_serve_backend_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "cuda"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "epanechnikov" in out
        assert "tesla-s1070" in out
        assert "cuda-gpu" in out

    def test_select_grid(self, capsys):
        assert main(["select", "--n", "200", "--k", "10"]) == 0
        out = capsys.readouterr().out
        assert "grid-search" in out
        assert "h*" in out

    def test_select_rot_on_other_dgp(self, capsys):
        assert main(["select", "--n", "200", "--method", "rot",
                     "--dgp", "sine"]) == 0
        assert "rule-of-thumb" in capsys.readouterr().out

    def test_select_gpusim_backend(self, capsys):
        assert main(["select", "--n", "150", "--k", "8",
                     "--backend", "gpusim"]) == 0
        assert "gpusim" in capsys.readouterr().out

    def test_select_json_output(self, capsys):
        import json

        assert main(["select", "--n", "120", "--k", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "grid-search"
        assert payload["bandwidth"] > 0
        assert len(payload["scores"]) == payload["n_evaluations"]
        assert payload["resilience"] is None
        assert payload["scale_factor"] > 0

    def test_select_json_includes_resilience_report(self, capsys):
        import json

        assert main([
            "select", "--n", "120", "--k", "6", "--json", "--resilient",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["resilience"] is not None
        assert payload["resilience"]["backend_used"] == "numpy"

    def test_select_cache_dir_warm_rerun(self, tmp_path, capsys):
        import json

        argv = [
            "select", "--n", "120", "--k", "6", "--json",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["bandwidth"] == cold["bandwidth"]
        assert warm["scores"] == cold["scores"]
        assert warm["diagnostics"].get("cache") == "hit"

    def test_info_lists_serving_cache(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "serving cache" in out
        assert "memory budget" in out

    def test_table1_tiny(self, capsys):
        code = main([
            "table1", "--sizes", "60,120", "--k", "6",
            "--programs", "sequential-c,cuda-gpu",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "SHAPE REPORT" in out

    def test_table2_tiny(self, capsys):
        code = main([
            "table2", "--sizes", "60,120", "--bandwidths", "5,20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PANEL A" in out and "PANEL B" in out

    def test_fig1_tiny(self, capsys):
        code = main(["fig1", "--sizes", "60,120", "--k", "6"])
        assert code == 0
        assert "FIG. 1" in capsys.readouterr().out

    def test_fig1_output_artifacts(self, tmp_path, capsys):
        code = main([
            "fig1", "--sizes", "60", "--k", "5",
            "--output", str(tmp_path / "figs"),
        ])
        assert code == 0
        assert (tmp_path / "figs" / "figure1_series.csv").exists()
        assert (tmp_path / "figs" / "figure1.json").exists()

    def test_shape_tiny(self, capsys):
        code = main(["shape", "--sizes", "100,400", "--k", "10"])
        out = capsys.readouterr().out
        assert "SHAPE REPORT" in out
        assert code in (0, 1)
