"""Tests for least-squares CV in KDE — the paper's named extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grid import BandwidthGrid
from repro.data import bimodal_normal_sample, uniform_sample
from repro.exceptions import ValidationError
from repro.kde.lscv import (
    lscv_score,
    lscv_scores_fastgrid,
    lscv_scores_grid,
    supports_fast_lscv,
)


class TestEligibility:
    def test_epanechnikov_and_uniform_supported(self):
        assert supports_fast_lscv("epanechnikov")
        assert supports_fast_lscv("uniform")

    def test_others_not_supported(self):
        assert not supports_fast_lscv("gaussian")
        assert not supports_fast_lscv("triangular")
        assert not supports_fast_lscv("biweight")

    def test_fastgrid_rejects_unsupported_kernel(self):
        x = np.random.default_rng(0).normal(size=30)
        with pytest.raises(ValidationError, match="fast-grid LSCV"):
            lscv_scores_fastgrid(x, np.array([0.1, 0.2]), "gaussian")


class TestFastDenseEquivalence:
    @pytest.mark.parametrize("kernel", ["epanechnikov", "uniform"])
    def test_matches_dense_on_normal_sample(self, kernel, rng):
        x = rng.normal(size=150)
        grid = BandwidthGrid.for_sample(x, 12)
        fast = lscv_scores_fastgrid(x, grid.values, kernel)
        dense = lscv_scores_grid(x, grid.values, kernel)
        np.testing.assert_allclose(fast, dense, rtol=1e-9)

    @given(n=st.integers(5, 60), k=st.integers(1, 10), seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_property(self, n, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, n)
        if x.max() == x.min():
            return
        grid = BandwidthGrid.for_sample(x, k)
        fast = lscv_scores_fastgrid(x, grid.values)
        dense = lscv_scores_grid(x, grid.values)
        np.testing.assert_allclose(fast, dense, rtol=1e-8, atol=1e-10)

    def test_duplicate_points_handled(self):
        x = np.repeat([0.1, 0.5, 0.9], 4)
        grid = np.array([0.05, 0.2, 1.0])
        fast = lscv_scores_fastgrid(x, grid)
        dense = lscv_scores_grid(x, grid)
        np.testing.assert_allclose(fast, dense, rtol=1e-9)


class TestLscvBehaviour:
    def test_score_formula_consistency(self, rng):
        x = rng.normal(size=80)
        assert lscv_score(x, 0.4) == pytest.approx(
            lscv_scores_grid(x, np.array([0.4]))[0]
        )

    def test_lscv_minimum_interior_on_normal_data(self, rng):
        x = rng.normal(size=500)
        grid = BandwidthGrid.evenly_spaced(0.02, 3.0, 60)
        scores = lscv_scores_fastgrid(x, grid.values)
        j = int(np.argmin(scores))
        assert 0 < j < len(grid) - 1

    def test_lscv_penalises_tiny_bandwidth(self, rng):
        x = rng.normal(size=300)
        scores = lscv_scores_fastgrid(x, np.array([0.001, 0.5]))
        assert scores[0] > scores[1]

    def test_bimodal_prefers_smaller_h_than_silverman(self):
        from repro.kde.rot import silverman_bandwidth

        s = bimodal_normal_sample(800, seed=7)
        grid = BandwidthGrid.evenly_spaced(0.02, 2.0, 80)
        scores = lscv_scores_fastgrid(s.x, grid.values)
        h_lscv = grid.values[int(np.argmin(scores))]
        h_silv = silverman_bandwidth(s.x, "epanechnikov")
        assert h_lscv < h_silv

    def test_needs_two_observations(self):
        with pytest.raises(ValidationError):
            lscv_score(np.array([1.0]), 0.1)

    def test_bandwidth_positive_required(self):
        with pytest.raises(ValidationError):
            lscv_score(np.array([1.0, 2.0]), 0.0)

    def test_chunking_invariance(self, rng):
        x = rng.normal(size=200)
        grid = np.array([0.1, 0.3, 0.9])
        a = lscv_scores_fastgrid(x, grid, chunk_rows=200)
        b = lscv_scores_fastgrid(x, grid, chunk_rows=11)
        np.testing.assert_allclose(a, b, rtol=1e-12)
