"""Tests for the KDE rules of thumb."""

import numpy as np
import pytest

from repro.exceptions import SelectionError, ValidationError
from repro.kde.rot import scott_bandwidth, silverman_bandwidth


class TestSilverman:
    def test_gaussian_reference_formula(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1.0, 4000)
        h = silverman_bandwidth(x)
        sd = np.std(x, ddof=1)
        q75, q25 = np.percentile(x, [75, 25])
        spread = min(sd, (q75 - q25) / 1.349)
        assert h == pytest.approx(0.9 * spread * 4000 ** (-0.2))

    def test_robust_to_outliers_via_iqr(self):
        rng = np.random.default_rng(1)
        clean = rng.normal(size=500)
        dirty = np.concatenate([clean, [1000.0, -1000.0]])
        # The IQR branch keeps the bandwidth in a sane range.
        assert silverman_bandwidth(dirty) < 3.0 * silverman_bandwidth(clean)

    def test_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        small = silverman_bandwidth(rng.normal(size=100))
        large = silverman_bandwidth(rng.normal(size=10000))
        assert large < small

    def test_kernel_rescaling(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=300)
        assert silverman_bandwidth(x, "epanechnikov") > silverman_bandwidth(x)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(SelectionError):
            silverman_bandwidth(np.ones(50))

    def test_needs_1d_sample(self):
        with pytest.raises(ValidationError):
            silverman_bandwidth(np.ones((3, 3)))


class TestScott:
    def test_formula(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 2.0, 1000)
        assert scott_bandwidth(x) == pytest.approx(
            1.06 * np.std(x, ddof=1) * 1000 ** (-0.2)
        )

    def test_scott_geq_silverman_for_normal_data(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=2000)
        assert scott_bandwidth(x) >= silverman_bandwidth(x)

    def test_zero_sd_rejected(self):
        with pytest.raises(SelectionError):
            scott_bandwidth(np.full(10, 3.3))
