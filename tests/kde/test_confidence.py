"""Tests for KDE confidence bands."""

import numpy as np
import pytest

from repro.data import bimodal_normal_sample, uniform_sample
from repro.exceptions import ValidationError
from repro.kde import kde_confidence_band


class TestBandGeometry:
    def test_band_brackets_estimate(self, rng):
        x = rng.normal(size=300)
        at = np.linspace(-2, 2, 11)
        band = kde_confidence_band(x, at, 0.4)
        assert (band.lower <= band.estimate).all()
        assert (band.estimate <= band.upper).all()

    def test_lower_clipped_at_zero(self, rng):
        x = rng.normal(size=50)
        at = np.array([8.0])  # deep tail: estimate ~ 0
        band = kde_confidence_band(x, at, 0.3, kernel="gaussian")
        assert band.lower[0] >= 0.0

    def test_higher_level_widens(self, rng):
        x = rng.normal(size=200)
        at = np.linspace(-1, 1, 5)
        b90 = kde_confidence_band(x, at, 0.4, level=0.90)
        b99 = kde_confidence_band(x, at, 0.4, level=0.99)
        assert (b99.width >= b90.width).all()

    def test_more_data_narrows(self):
        at = np.array([0.0])
        widths = []
        for n in (100, 5000):
            x = np.random.default_rng(1).normal(size=n)
            widths.append(kde_confidence_band(x, at, 0.4).width[0])
        assert widths[1] < widths[0]

    def test_validation(self, rng):
        x = rng.normal(size=20)
        with pytest.raises(ValidationError):
            kde_confidence_band(x, np.array([0.0]), 0.0)
        with pytest.raises(ValidationError):
            kde_confidence_band(x, np.array([0.0]), 0.3, level=2.0)
        with pytest.raises(ValidationError):
            kde_confidence_band(np.array([1.0]), np.array([0.0]), 0.3)


class TestCoverage:
    def test_monte_carlo_coverage_near_nominal(self):
        # Coverage at interior points of an easy density over 30 draws.
        at = np.linspace(0.25, 0.75, 5)
        hits = []
        for seed in range(30):
            s = uniform_sample(600, seed=seed)
            band = kde_confidence_band(s.x, at, 0.15)
            hits.append(band.coverage_of(s.true_density(at)))
        assert float(np.mean(hits)) > 0.75

    def test_coverage_shape_mismatch_rejected(self, rng):
        x = rng.normal(size=50)
        band = kde_confidence_band(x, np.array([0.0, 1.0]), 0.4)
        with pytest.raises(ValidationError):
            band.coverage_of(np.zeros(3))

    def test_estimate_matches_kde_evaluate(self, rng):
        from repro.kde import kde_evaluate

        x = rng.normal(size=150)
        at = np.linspace(-1, 1, 7)
        band = kde_confidence_band(x, at, 0.5)
        np.testing.assert_allclose(band.estimate, kde_evaluate(x, at, 0.5))
