"""Tests for KernelDensity and select_kde_bandwidth."""

import numpy as np
import pytest

from repro.data import bimodal_normal_sample, uniform_sample
from repro.exceptions import SelectionError, ValidationError
from repro.kde import KernelDensity, kde_evaluate, select_kde_bandwidth

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


class TestKdeEvaluate:
    def test_single_point_sample_shape(self, rng):
        x = rng.normal(size=50)
        d = kde_evaluate(x, np.array([0.0]), 0.5)
        assert d.shape == (1,)
        assert d[0] > 0.0

    def test_density_nonnegative(self, rng):
        x = rng.normal(size=200)
        pts = np.linspace(-5, 5, 101)
        assert (kde_evaluate(x, pts, 0.3) >= 0.0).all()

    def test_density_integrates_to_one(self, rng):
        x = rng.normal(size=500)
        pts = np.linspace(-6, 6, 2001)
        mass = float(_TRAPEZOID(kde_evaluate(x, pts, 0.4), pts))
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_bandwidth_validated(self, rng):
        x = rng.normal(size=10)
        with pytest.raises(ValidationError):
            kde_evaluate(x, x, 0.0)

    def test_hand_computed_value(self):
        # x = {0, 1}, h = 1, Epanechnikov: f(0) = (K(0) + K(1)) / 2 = 0.375.
        x = np.array([0.0, 1.0])
        assert kde_evaluate(x, np.array([0.0]), 1.0)[0] == pytest.approx(0.375)


class TestSelectKdeBandwidth:
    def test_lscv_grid_default(self, rng):
        x = rng.normal(size=400)
        res = select_kde_bandwidth(x)
        assert res.method == "kde-lscv-grid"
        assert res.backend == "fastgrid"
        assert res.bandwidth > 0.0
        assert res.n_evaluations == 50

    def test_dense_backend_for_gaussian(self, rng):
        x = rng.normal(size=100)
        res = select_kde_bandwidth(x, kernel="gaussian", n_bandwidths=8)
        assert res.backend == "dense"

    def test_silverman_and_scott(self, rng):
        x = rng.normal(size=300)
        silv = select_kde_bandwidth(x, method="silverman")
        scott = select_kde_bandwidth(x, method="scott")
        assert silv.method == "kde-silverman"
        assert scott.bandwidth >= silv.bandwidth

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValidationError):
            select_kde_bandwidth(rng.normal(size=50), method="plugin")


class TestKernelDensityModel:
    def test_fit_evaluate_workflow(self, rng):
        x = rng.normal(size=300)
        kde = KernelDensity().fit(x)
        assert kde.bandwidth is not None
        assert (kde.evaluate(np.linspace(-3, 3, 21)) >= 0.0).all()

    def test_fixed_bandwidth(self, rng):
        kde = KernelDensity(bandwidth=0.7).fit(rng.normal(size=100))
        assert kde.bandwidth == 0.7
        assert kde.selection_ is None

    def test_unfitted_raises(self):
        with pytest.raises(SelectionError):
            KernelDensity(bandwidth=0.5).evaluate(np.array([0.0]))

    def test_lscv_beats_rot_on_bimodal_ise(self):
        s = bimodal_normal_sample(1000, seed=13)
        lscv = KernelDensity(method="lscv-grid", n_bandwidths=60).fit(s.x)
        silv = KernelDensity(
            bandwidth=select_kde_bandwidth(s.x, method="silverman").bandwidth
        ).fit(s.x)
        assert lscv.integrated_squared_error(s.pdf) < silv.integrated_squared_error(
            s.pdf
        )

    def test_ise_decreases_with_n(self):
        ises = []
        for n in (100, 2000):
            s = uniform_sample(n, seed=3)
            kde = KernelDensity(bandwidth=0.1).fit(s.x)
            ises.append(kde.integrated_squared_error(s.pdf))
        assert ises[1] < ises[0]

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            KernelDensity(bandwidth=0.0)
