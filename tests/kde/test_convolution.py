"""Tests for kernel self-convolutions."""

import numpy as np
import pytest

from repro.kde.convolution import CONVOLUTION_REGISTRY, self_convolution
from repro.kernels import get_kernel

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


def _numeric_convolution(kern, t, *, points=40001):
    radius = kern.support_radius if kern.has_compact_support else 10.0
    v = np.linspace(-radius, radius, points)
    kv = kern(v)
    return float(_TRAPEZOID(kv * kern(t - v), v))


@pytest.mark.parametrize("name", sorted(CONVOLUTION_REGISTRY))
class TestClosedForms:
    def test_value_at_zero_is_roughness(self, name):
        conv = CONVOLUTION_REGISTRY[name]
        kern = get_kernel(name)
        assert conv(np.array([0.0]))[0] == pytest.approx(kern.roughness)

    def test_matches_numeric_convolution(self, name):
        conv = CONVOLUTION_REGISTRY[name]
        kern = get_kernel(name)
        for t in (0.0, 0.3, 0.9, 1.5, 1.99):
            assert conv(np.array([t]))[0] == pytest.approx(
                _numeric_convolution(kern, t), abs=1e-5
            )

    def test_symmetric(self, name):
        conv = CONVOLUTION_REGISTRY[name]
        t = np.linspace(0, 3, 31)
        np.testing.assert_allclose(conv(t), conv(-t))

    def test_integrates_to_one(self, name):
        conv = CONVOLUTION_REGISTRY[name]
        radius = conv.support_radius if np.isfinite(conv.support_radius) else 12.0
        t = np.linspace(-radius, radius, 100001)
        assert float(_TRAPEZOID(conv(t), t)) == pytest.approx(1.0, abs=1e-4)

    def test_nonnegative(self, name):
        conv = CONVOLUTION_REGISTRY[name]
        t = np.linspace(-4, 4, 801)
        assert (conv(t) >= -1e-12).all()


class TestCompactSupport:
    def test_epanechnikov_zero_outside_two(self):
        conv = CONVOLUTION_REGISTRY["epanechnikov"]
        assert conv(np.array([2.0]))[0] == pytest.approx(0.0, abs=1e-12)
        assert conv(np.array([2.5]))[0] == 0.0

    def test_uniform_is_triangle_on_pm2(self):
        conv = CONVOLUTION_REGISTRY["uniform"]
        np.testing.assert_allclose(
            conv(np.array([0.0, 1.0, 2.0])), [0.5, 0.25, 0.0]
        )

    def test_poly_terms_match_evaluate(self):
        for name in ("epanechnikov", "uniform"):
            conv = CONVOLUTION_REGISTRY[name]
            t = np.linspace(0, conv.support_radius, 101)
            poly = sum(
                term.coefficient * np.abs(t) ** term.power
                for term in conv.poly_terms
            )
            np.testing.assert_allclose(poly, conv(t), atol=1e-12)


class TestNumericFallback:
    def test_triangular_fallback_matches_direct_numeric(self):
        conv = self_convolution("triangular")
        kern = get_kernel("triangular")
        assert conv.poly_terms is None  # piecewise, not a single polynomial
        for t in (0.0, 0.5, 1.0, 1.7):
            assert conv(np.array([t]))[0] == pytest.approx(
                _numeric_convolution(kern, t), abs=1e-3
            )

    def test_fallback_not_fast_grid_eligible(self):
        assert not self_convolution("biweight").supports_fast_grid

    def test_gaussian_closed_form_is_n02(self):
        conv = self_convolution("gaussian")
        # N(0, 2) density at 0 is 1/(2*sqrt(pi)).
        assert conv(np.array([0.0]))[0] == pytest.approx(
            1.0 / (2.0 * np.sqrt(np.pi))
        )
