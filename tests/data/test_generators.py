"""Unit tests for the regression DGPs."""

import numpy as np
import pytest

from repro.data import (
    DGP_REGISTRY,
    blocks_dgp,
    doppler_dgp,
    generate,
    heteroskedastic_dgp,
    linear_dgp,
    paper_dgp,
    sine_dgp,
)
from repro.exceptions import ValidationError


class TestPaperDgp:
    """The §IV experimental setup: X~U(0,1), Y = 0.5X + 10X² + U(0,0.5)."""

    def test_shapes_and_name(self):
        s = paper_dgp(100, seed=0)
        assert s.n == 100
        assert s.x.shape == s.y.shape == (100,)
        assert s.name == "paper"

    def test_x_in_unit_interval(self):
        s = paper_dgp(5000, seed=1)
        assert s.x.min() >= 0.0 and s.x.max() <= 1.0

    def test_y_respects_dgp_bounds(self):
        s = paper_dgp(5000, seed=2)
        base = 0.5 * s.x + 10.0 * s.x**2
        resid = s.y - base
        assert resid.min() >= 0.0
        assert resid.max() <= 0.5

    def test_true_mean_includes_noise_mean(self):
        s = paper_dgp(10, seed=3)
        at = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(
            s.true_mean(at), 0.5 * at + 10 * at**2 + 0.25
        )

    def test_reproducible_by_seed(self):
        a = paper_dgp(50, seed=7)
        b = paper_dgp(50, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = paper_dgp(50, seed=7)
        b = paper_dgp(50, seed=8)
        assert not np.array_equal(a.x, b.x)

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(0)
        s = paper_dgp(10, seed=rng)
        assert s.n == 10

    def test_float32_dtype(self):
        s = paper_dgp(10, seed=0, dtype=np.float32)
        assert s.x.dtype == np.float32

    def test_residual_sample_mean_near_quarter(self):
        s = paper_dgp(20000, seed=5)
        resid = s.y - (0.5 * s.x + 10 * s.x**2)
        assert abs(resid.mean() - 0.25) < 0.01

    def test_domain_close_to_one(self):
        s = paper_dgp(10000, seed=6)
        assert 0.95 < s.domain() <= 1.0

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValidationError):
            paper_dgp(0)


class TestOtherDgps:
    @pytest.mark.parametrize("factory", [linear_dgp, sine_dgp, doppler_dgp,
                                         blocks_dgp, heteroskedastic_dgp])
    def test_basic_contract(self, factory):
        s = factory(200, seed=1)
        assert s.x.shape == s.y.shape == (200,)
        assert np.isfinite(s.x).all() and np.isfinite(s.y).all()
        truth = s.true_mean()
        assert truth.shape == (200,)
        assert np.isfinite(truth).all()

    def test_linear_mean_is_exact(self):
        s = linear_dgp(10, slope=3.0, intercept=-1.0, seed=0)
        at = np.array([0.0, 1.0])
        np.testing.assert_allclose(s.true_mean(at), [-1.0, 2.0])

    def test_sine_mean_periodicity(self):
        s = sine_dgp(10, cycles=2.0, seed=0)
        np.testing.assert_allclose(s.true_mean(np.array([0.0, 0.5, 1.0])),
                                   [0.0, 0.0, 0.0], atol=1e-12)

    def test_blocks_mean_piecewise_constant(self):
        s = blocks_dgp(10, seed=0)
        left = s.true_mean(np.array([0.05, 0.10]))
        assert left[0] == left[1]

    def test_blocks_has_jump(self):
        s = blocks_dgp(10, seed=0)
        vals = s.true_mean(np.array([0.14, 0.16]))
        assert vals[0] != vals[1]

    def test_heteroskedastic_variance_grows(self):
        s = heteroskedastic_dgp(20000, seed=4)
        resid = s.y - s.true_mean()
        lo = resid[s.x < 0.3].std()
        hi = resid[s.x > 0.7].std()
        assert hi > 1.5 * lo

    def test_doppler_bounded(self):
        s = doppler_dgp(100, seed=2)
        assert np.abs(s.true_mean()).max() <= 0.55


class TestRegistry:
    def test_all_names_generate(self):
        for name in DGP_REGISTRY:
            s = generate(name, 20, seed=0)
            assert s.n == 20

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown DGP"):
            generate("nope", 10)

    def test_kwargs_forwarded(self):
        s = generate("linear", 10, seed=0, slope=5.0)
        np.testing.assert_allclose(s.true_mean(np.array([1.0]))[0], 6.0)
