"""Tests for CSV sample loading/saving."""

import numpy as np
import pytest

from repro.data import load_xy_csv, paper_dgp, save_xy_csv
from repro.exceptions import DataShapeError, ValidationError


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        s = paper_dgp(50, seed=0)
        path = save_xy_csv(tmp_path / "sample.csv", s.x, s.y)
        x, y = load_xy_csv(path)
        np.testing.assert_allclose(x, s.x)
        np.testing.assert_allclose(y, s.y)

    def test_nested_directories_created(self, tmp_path):
        s = paper_dgp(10, seed=1)
        path = save_xy_csv(tmp_path / "a" / "b" / "s.csv", s.x, s.y)
        assert path.exists()

    def test_custom_header(self, tmp_path):
        s = paper_dgp(10, seed=2)
        path = save_xy_csv(tmp_path / "s.csv", s.x, s.y, header=("income", "spend"))
        x, y = load_xy_csv(path, x_column="income", y_column="spend")
        np.testing.assert_allclose(x, s.x)


class TestLoading:
    def test_headerless_file(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("0.1,1.0\n0.2,2.0\n0.3,3.0\n")
        x, y = load_xy_csv(path)
        np.testing.assert_allclose(x, [0.1, 0.2, 0.3])
        np.testing.assert_allclose(y, [1.0, 2.0, 3.0])

    def test_column_selection_by_index(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("id,xval,yval\n1,0.1,5.0\n2,0.2,6.0\n3,0.3,7.0\n")
        x, y = load_xy_csv(path, x_column=1, y_column=2)
        np.testing.assert_allclose(x, [0.1, 0.2, 0.3])

    def test_column_selection_by_name(self, tmp_path):
        path = tmp_path / "named.csv"
        path.write_text("xval,yval\n0.5,1.5\n0.6,1.6\n0.7,1.7\n")
        x, y = load_xy_csv(path, x_column="xval", y_column="yval")
        np.testing.assert_allclose(y, [1.5, 1.6, 1.7])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("0.1,1.0\n\n0.2,2.0\n\n0.3,3.0\n")
        x, _ = load_xy_csv(path)
        assert x.shape == (3,)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="no such data file"):
            load_xy_csv(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataShapeError):
            load_xy_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("x,y\n")
        with pytest.raises(DataShapeError, match="no data rows"):
            load_xy_csv(path)

    def test_name_without_header_rejected(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("0.1,1.0\n0.2,2.0\n0.3,3.0\n")
        with pytest.raises(ValidationError, match="no header"):
            load_xy_csv(path, x_column="x")

    def test_unknown_column_name_rejected(self, tmp_path):
        path = tmp_path / "named.csv"
        path.write_text("a,b\n1,2\n3,4\n5,6\n")
        with pytest.raises(ValidationError, match="not in header"):
            load_xy_csv(path, x_column="zzz")

    def test_non_numeric_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1.0,2.0\nfoo,3.0\n4.0,5.0\n")
        with pytest.raises(DataShapeError):
            load_xy_csv(path)


class TestCliIntegration:
    def test_select_from_csv(self, tmp_path, capsys):
        from repro.cli import main

        s = paper_dgp(300, seed=5)
        path = save_xy_csv(tmp_path / "data.csv", s.x, s.y)
        assert main(["select", "--data", str(path), "--k", "15"]) == 0
        out = capsys.readouterr().out
        assert "h*" in out
        assert "scale factor" in out
