"""Unit tests for the density samplers (KDE extension workloads)."""

import numpy as np
import pytest

from repro.data import (
    DENSITY_REGISTRY,
    bimodal_normal_sample,
    claw_sample,
    sample_density,
    skewed_sample,
    uniform_sample,
)
from repro.exceptions import ValidationError

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


@pytest.mark.parametrize("name", sorted(DENSITY_REGISTRY))
class TestDensityContract:
    def test_sample_shape_and_finiteness(self, name):
        s = sample_density(name, 300, seed=0)
        assert s.x.shape == (300,)
        assert np.isfinite(s.x).all()

    def test_pdf_nonnegative(self, name):
        s = sample_density(name, 50, seed=1)
        pts = np.linspace(s.x.min() - 1, s.x.max() + 1, 200)
        assert (s.true_density(pts) >= 0.0).all()

    def test_pdf_integrates_to_one(self, name):
        s = sample_density(name, 50, seed=2)
        pts = np.linspace(-12.0, 12.0, 20001)
        mass = float(_TRAPEZOID(s.true_density(pts), pts))
        assert mass == pytest.approx(1.0, abs=2e-3)

    def test_reproducible(self, name):
        a = sample_density(name, 40, seed=5)
        b = sample_density(name, 40, seed=5)
        np.testing.assert_array_equal(a.x, b.x)


class TestSpecificDensities:
    def test_uniform_support(self):
        s = uniform_sample(2000, seed=0)
        assert s.x.min() >= 0.0 and s.x.max() <= 1.0
        assert s.true_density(np.array([0.5]))[0] == 1.0
        assert s.true_density(np.array([2.0]))[0] == 0.0

    def test_bimodal_has_two_populations(self):
        s = bimodal_normal_sample(5000, seed=1)
        assert (s.x < 0).sum() > 1500
        assert (s.x > 0).sum() > 1500

    def test_bimodal_valley_at_zero(self):
        s = bimodal_normal_sample(10, seed=0)
        d = s.true_density(np.array([-1.5, 0.0, 1.5]))
        assert d[1] < d[0] and d[1] < d[2]

    def test_claw_spikes_exceed_body(self):
        s = claw_sample(10, seed=0)
        spike = s.true_density(np.array([0.0]))[0]
        off = s.true_density(np.array([0.25]))[0]
        assert spike > off

    def test_skewed_is_positive_valued(self):
        s = skewed_sample(2000, seed=2)
        assert (s.x > 0).all()
        assert s.true_density(np.array([-1.0]))[0] == 0.0

    def test_unknown_density_rejected(self):
        with pytest.raises(ValidationError, match="unknown density"):
            sample_density("nope", 10)
