"""MicroBatchScheduler: coalescing, admission control, graceful drain."""

from __future__ import annotations

import asyncio
from typing import Any

import pytest

from repro.exceptions import OverloadError, ValidationError
from repro.serving import MetricsRegistry, MicroBatchScheduler, SchedulerConfig


def run(coro: Any) -> Any:
    return asyncio.run(coro)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SchedulerConfig(max_batch_size=0)
        with pytest.raises(ValidationError):
            SchedulerConfig(max_wait_ms=-1)
        with pytest.raises(ValidationError):
            SchedulerConfig(max_queue=0)


class TestBatching:
    def test_single_request_roundtrip(self):
        async def main():
            sched = MicroBatchScheduler(lambda items: [i * 2 for i in items])
            sched.start()
            result = await sched.submit(21)
            await sched.drain()
            return result

        assert run(main()) == 42

    def test_concurrent_requests_coalesce(self):
        batches: list[list[int]] = []

        def runner(items):
            batches.append(list(items))
            return [i + 1 for i in items]

        async def main():
            sched = MicroBatchScheduler(
                runner,
                config=SchedulerConfig(max_batch_size=8, max_wait_ms=50.0),
            )
            sched.start()
            results = await asyncio.gather(*[sched.submit(i) for i in range(6)])
            await sched.drain()
            return results

        results = run(main())
        assert sorted(results) == [1, 2, 3, 4, 5, 6]
        # All six arrived within one deadline window -> few large batches,
        # not six singletons.
        assert max(len(b) for b in batches) > 1

    def test_batch_size_cap_respected(self):
        batches: list[int] = []

        def runner(items):
            batches.append(len(items))
            return list(items)

        async def main():
            sched = MicroBatchScheduler(
                runner,
                config=SchedulerConfig(max_batch_size=2, max_wait_ms=50.0),
            )
            sched.start()
            await asyncio.gather(*[sched.submit(i) for i in range(5)])
            await sched.drain()

        run(main())
        assert max(batches) <= 2

    def test_runner_error_fails_all_waiters(self):
        def runner(items):
            raise RuntimeError("device fell over")

        async def main():
            sched = MicroBatchScheduler(
                runner, config=SchedulerConfig(max_wait_ms=10.0)
            )
            sched.start()
            with pytest.raises(RuntimeError, match="device fell over"):
                await sched.submit(1)
            await sched.drain()

        run(main())

    def test_wrong_result_count_is_typed_error(self):
        async def main():
            sched = MicroBatchScheduler(lambda items: [])
            sched.start()
            with pytest.raises(ValidationError, match="0 results"):
                await sched.submit(1)
            await sched.drain()

        run(main())


class TestAdmissionControl:
    def test_submit_before_start_rejected(self):
        async def main():
            sched = MicroBatchScheduler(lambda items: list(items))
            with pytest.raises(OverloadError):
                await sched.submit(1)

        run(main())

    def test_full_queue_rejected_with_typed_code(self):
        async def main():
            blocker = asyncio.Event()

            def runner(items):
                return list(items)

            sched = MicroBatchScheduler(
                runner,
                config=SchedulerConfig(
                    max_batch_size=1, max_wait_ms=0.0, max_queue=1
                ),
            )
            # Don't start the collector: the queue can only fill up.
            sched._collector = asyncio.get_running_loop().create_task(
                blocker.wait()
            )  # fake "running" so submit() passes the liveness check
            task = asyncio.ensure_future(sched.submit(1))
            await asyncio.sleep(0)  # let the first submit enqueue
            with pytest.raises(OverloadError) as err:
                await sched.submit(2)
            assert err.value.code == "REPRO_SERVE_OVERLOAD"
            blocker.set()
            task.cancel()

        run(main())

    def test_drain_rejects_new_requests(self):
        async def main():
            sched = MicroBatchScheduler(lambda items: list(items))
            sched.start()
            await sched.drain()
            with pytest.raises(OverloadError):
                await sched.submit(1)

        run(main())

    def test_drain_completes_queued_work(self):
        async def main():
            sched = MicroBatchScheduler(
                lambda items: [i * 10 for i in items],
                config=SchedulerConfig(max_wait_ms=50.0),
            )
            sched.start()
            pending = [asyncio.ensure_future(sched.submit(i)) for i in range(3)]
            await asyncio.sleep(0)  # let the submits enqueue
            await sched.drain()
            return await asyncio.gather(*pending)

        assert sorted(run(main())) == [0, 10, 20]


class TestObservability:
    def test_metrics_recorded(self):
        async def main():
            metrics = MetricsRegistry()
            sched = MicroBatchScheduler(
                lambda items: list(items),
                config=SchedulerConfig(max_batch_size=8, max_wait_ms=30.0),
                metrics=metrics,
                name="predict",
            )
            sched.start()
            await asyncio.gather(*[sched.submit(i) for i in range(4)])
            await sched.drain()
            return metrics.snapshot(), sched.describe()

        snap, desc = run(main())
        assert snap["predict_requests_total"] == 4
        assert snap["predict_batch_occupancy"]["count"] >= 1
        assert desc["requests"] == 4
        assert desc["mean_occupancy"] > 1.0
