"""ModelRegistry: fit-once-predict-many with provenance and typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RegistryError, ValidationError
from repro.regression import NadarayaWatson
from repro.serving import ArtifactCache, ModelRegistry


@pytest.fixture()
def sample() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(11)
    x = rng.uniform(0.0, 1.0, 50)
    return x, 0.5 * x + 10.0 * x**2 + rng.normal(0.0, 0.1, 50)


def test_fit_registers_model_with_provenance(sample):
    x, y = sample
    registry = ModelRegistry()
    record = registry.fit("m", x, y, n_bandwidths=8)
    assert record.bandwidth > 0
    assert record.provenance["method"] == "grid-search"
    assert record.provenance["cache"] == "miss"
    assert len(record.provenance["fingerprint"]) == 64
    assert "m" in registry
    np.testing.assert_allclose(
        registry.predict("m", np.array([0.5])),
        record.model.predict(np.array([0.5])),
    )


def test_refit_same_data_hits_the_cache(sample):
    x, y = sample
    registry = ModelRegistry(cache=ArtifactCache(None))
    cold = registry.fit("a", x, y, n_bandwidths=8)
    warm = registry.fit("b", x, y, n_bandwidths=8)
    assert warm.provenance["cache"] == "hit"
    assert warm.bandwidth == cold.bandwidth


def test_duplicate_name_needs_overwrite(sample):
    x, y = sample
    registry = ModelRegistry()
    registry.fit("m", x, y, n_bandwidths=8)
    with pytest.raises(RegistryError, match="overwrite"):
        registry.fit("m", x, y, n_bandwidths=8)
    registry.fit("m", x, y, n_bandwidths=8, overwrite=True)


def test_unknown_model_error_lists_registered(sample):
    x, y = sample
    registry = ModelRegistry()
    registry.fit("known", x, y, n_bandwidths=8)
    with pytest.raises(RegistryError, match="known"):
        registry.get("missing")


def test_register_requires_fitted_model():
    registry = ModelRegistry()
    with pytest.raises(ValidationError, match="fitted"):
        registry.register("raw", NadarayaWatson("epanechnikov", bandwidth=0.2))


def test_register_external_model(sample):
    x, y = sample
    registry = ModelRegistry()
    model = NadarayaWatson("epanechnikov", bandwidth=0.3).fit(x, y)
    record = registry.register("ext", model, provenance={"source": "test"})
    assert record.bandwidth == 0.3
    assert registry.describe()[0]["provenance"]["source"] == "test"


def test_drop_and_introspection(sample):
    x, y = sample
    registry = ModelRegistry()
    registry.fit("m", x, y, n_bandwidths=8)
    assert registry.names() == ["m"]
    assert len(registry) == 1
    registry.drop("m")
    assert len(registry) == 0
    with pytest.raises(RegistryError):
        registry.drop("m")
