"""Serving deadlines and graceful shutdown (the robustness satellites).

Three layers:

* per-request deadline — a route that outlives ``request_deadline_s``
  answers a typed ``REPRO_SERVE_TIMEOUT`` 504 instead of holding the
  connection forever;
* connection read timeout — a client that connects and never finishes
  its request (slow loris) gets the same typed 504 and its socket back;
* graceful shutdown — ``repro serve`` under SIGTERM drains, flushes the
  cache disk tier, prints the drain banner, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np
import pytest

from repro.serving import ServingApp, ServingConfig, run_server
from repro.serving.cache import ArtifactCache

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_app(**overrides: Any) -> ServingApp:
    defaults: dict[str, Any] = {"port": 0}
    defaults.update(overrides)
    return ServingApp(ServingConfig(**defaults))


class TestRequestDeadline:
    def test_slow_route_becomes_typed_504(self):
        async def main():
            app = make_app(request_deadline_s=0.05)
            app.startup()

            async def slow_route(method, path, body):
                await asyncio.sleep(5.0)
                return 200, {}

            app._route = slow_route
            status, payload = await app.handle("GET", "/healthz", None)
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 504
        assert payload["code"] == "REPRO_SERVE_TIMEOUT"
        assert "deadline" in payload["error"]

    def test_deadline_none_means_no_limit(self):
        async def main():
            app = make_app(request_deadline_s=None)
            app.startup()
            status, payload = await app.handle("GET", "/healthz", None)
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["status"] == "ok"

    def test_serve_timeout_raised_by_a_route_is_504(self):
        from repro.exceptions import ServeTimeoutError

        async def main():
            app = make_app()
            app.startup()

            async def failing_route(method, path, body):
                raise ServeTimeoutError("downstream worker timed out")

            app._route = failing_route
            status, payload = await app.handle("GET", "/healthz", None)
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 504
        assert payload["code"] == "REPRO_SERVE_TIMEOUT"

    def test_fast_request_unaffected_by_deadline(self):
        async def main():
            app = make_app(request_deadline_s=5.0)
            app.startup()
            status, payload = await app.handle("GET", "/healthz", None)
            await app.shutdown()
            return status, payload

        status, _ = asyncio.run(main())
        assert status == 200


class TestConnectionReadTimeout:
    def test_slow_loris_gets_typed_504(self):
        async def main():
            app = make_app(read_timeout_s=0.2)
            loop = asyncio.get_running_loop()
            ready: asyncio.Future = loop.create_future()
            stop = asyncio.Event()
            server = loop.create_task(
                run_server(app, ready=ready, shutdown_trigger=stop)
            )
            host, port = await ready

            def loris() -> bytes:
                with socket.create_connection((host, port), timeout=5.0) as sock:
                    # Start a request but never finish the headers.
                    sock.sendall(b"POST /select HTTP/1.1\r\n")
                    sock.settimeout(5.0)
                    chunks = []
                    while True:
                        data = sock.recv(4096)
                        if not data:
                            return b"".join(chunks)
                        chunks.append(data)

            raw = await loop.run_in_executor(None, loris)
            stop.set()
            await server
            return raw

        raw = asyncio.run(main())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"504" in head.split(b"\r\n")[0]
        payload = json.loads(body)
        assert payload["code"] == "REPRO_SERVE_TIMEOUT"
        assert "read timeout" in payload["error"]


class TestCacheFlush:
    def _payload(self) -> dict[str, np.ndarray]:
        return {"scores": np.arange(6.0)}

    def test_flush_rewrites_evicted_disk_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_curve("f" * 64, np.arange(6.0), np.arange(6.0))
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        # Simulate a disk-tier eviction: memory still warm, disk empty.
        files[0].unlink()
        assert cache.flush() == 1
        assert len(list(tmp_path.glob("*.npz"))) == 1
        assert cache.flush() == 0  # idempotent: already on disk

    def test_memory_only_cache_flushes_nothing(self):
        cache = ArtifactCache(None)
        cache.put_curve("f" * 64, np.arange(6.0), np.arange(6.0))
        assert cache.flush() == 0


class TestGracefulShutdown:
    """A live ``repro serve`` process under SIGTERM."""

    def _spawn(self, tmp_path: Path) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--no-model",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )

    def _await_banner(self, proc: subprocess.Popen) -> str:
        deadline = time.monotonic() + 30.0
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if "repro serving on http://" in line:
                return line.strip()
            if proc.poll() is not None:
                pytest.fail(f"server died before listening: {line}")
        pytest.fail("server never printed its listening banner")

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc = self._spawn(tmp_path)
        try:
            banner = self._await_banner(proc)
            host_port = banner.rsplit("http://", 1)[1]
            host, port = host_port.split(":")

            # Prove it serves, then terminate.
            import urllib.request

            with urllib.request.urlopen(
                f"http://{host}:{int(port)}/healthz", timeout=10.0
            ) as resp:
                assert resp.status == 200
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10.0)
        assert proc.returncode == 0
        assert "repro serving drained; bye" in out
