"""Metrics primitives: counters, gauges, histograms, registry export."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ValidationError
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValidationError):
            Counter("requests").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc(1)
        assert g.value == 4.0


class TestHistogram:
    def test_summary_percentiles(self):
        h = Histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        stats = h.summary()
        assert stats["count"] == 100
        assert stats["sum"] == pytest.approx(5050.0)
        assert stats["p50"] == pytest.approx(51.0, abs=2)
        assert stats["p99"] == pytest.approx(100.0, abs=2)
        assert stats["max"] == 100.0

    def test_empty_summary_is_nan(self):
        stats = Histogram("latency").summary()
        assert math.isnan(stats["p50"])
        assert stats["count"] == 0

    def test_reservoir_is_bounded_but_count_exact(self):
        h = Histogram("latency", reservoir=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        # Percentiles reflect the most recent window only.
        assert h.quantile(0.0) >= 1000 - 16

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValidationError):
            Histogram("latency").quantile(1.5)


class TestRegistry:
    def test_lazy_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(ValidationError):
            reg.gauge("hits")

    def test_snapshot_mixes_types(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["hits"] == 3.0
        assert snap["depth"] == 2.0
        assert snap["lat"]["count"] == 1

    def test_render_text_exposition(self):
        reg = MetricsRegistry(prefix="repro")
        reg.counter("hits", "cache hits").inc(2)
        reg.histogram("lat", "latency").observe(0.25)
        text = reg.render_text()
        assert "# HELP repro_hits cache hits" in text
        assert "repro_hits 2" in text
        assert "repro_lat_count 1" in text
        assert "repro_lat_p99 0.25" in text
