"""ServingApp end to end: routes, cache warm path, coalescing, HTTP wire.

The acceptance path for the serving subsystem lives here:

* a warm ``/select`` with an identical fingerprint returns bit-for-bit
  the same bandwidth while skipping the sweep (verified via the
  cache-hit counter and the ``cache_hit`` response flag);
* concurrent ``/predict`` requests are observably coalesced (batch
  occupancy > 1).

Most tests drive :meth:`ServingApp.handle` directly (pure async, no
sockets); ``TestWireProtocol`` exercises the real TCP path on an
OS-assigned port.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np
import pytest

from repro.serving import SchedulerConfig, ServingApp, ServingConfig, run_server


def make_app(**overrides: Any) -> ServingApp:
    defaults: dict[str, Any] = {
        "port": 0,
        "predict": SchedulerConfig(max_batch_size=8, max_wait_ms=25.0),
        "select": SchedulerConfig(max_batch_size=4, max_wait_ms=5.0),
    }
    defaults.update(overrides)
    return ServingApp(ServingConfig(**defaults))


def sample(n: int = 60, seed: int = 3) -> tuple[list[float], list[float]]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = 0.5 * x + 10.0 * x**2 + rng.normal(0.0, 0.1, n)
    return x.tolist(), y.tolist()


async def started(app: ServingApp) -> ServingApp:
    app.startup()
    return app


class TestRoutes:
    def test_healthz(self):
        async def main():
            app = await started(make_app())
            status, payload = await app.handle("GET", "/healthz", None)
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == []

    def test_unknown_route_is_400_with_catalog(self):
        async def main():
            app = await started(make_app())
            status, payload = await app.handle("GET", "/nope", None)
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 400
        assert "/select" in payload["error"]

    def test_unknown_model_is_404(self):
        async def main():
            app = await started(make_app())
            status, payload = await app.handle(
                "POST", "/predict", {"model": "ghost", "at": [0.5]}
            )
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 404
        assert payload["code"] == "REPRO_REGISTRY"

    def test_invalid_body_is_400(self):
        async def main():
            app = await started(make_app())
            status, payload = await app.handle(
                "POST", "/select", {"x": [1.0], "y": []}
            )
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 400
        assert payload["code"] == "REPRO_VALIDATION"

    def test_5xx_counter_stays_zero_on_client_errors(self):
        async def main():
            app = await started(make_app())
            await app.handle("POST", "/predict", {"model": "ghost", "at": [1]})
            await app.handle("POST", "/select", {"x": [1.0], "y": []})
            snap = app.metrics.snapshot()
            await app.shutdown()
            return snap

        snap = asyncio.run(main())
        assert snap["http_errors_total"] == 0


class TestSelectCachePath:
    def test_warm_select_is_bitforbit_and_skips_the_sweep(self):
        """Acceptance: identical fingerprint -> same bits, no recompute."""
        x, y = sample()
        body = {"x": x, "y": y, "n_bandwidths": 10}

        async def main():
            app = await started(make_app())
            s1, cold = await app.handle("POST", "/select", dict(body))
            s2, warm = await app.handle("POST", "/select", dict(body))
            snap = app.metrics.snapshot()
            await app.shutdown()
            return (s1, cold), (s2, warm), snap

        (s1, cold), (s2, warm), snap = asyncio.run(main())
        assert s1 == s2 == 200
        assert cold["cache_hit"] is False
        assert warm["cache_hit"] is True
        # Bit-for-bit: the bandwidth and the whole CV curve are identical.
        assert warm["result"]["bandwidth"] == cold["result"]["bandwidth"]
        assert warm["result"]["score"] == cold["result"]["score"]
        assert warm["result"]["scores"] == cold["result"]["scores"]
        # The sweep was skipped: the counter saw one miss, one hit.
        assert snap["select_cache_misses_total"] == 1
        assert snap["select_cache_hits_total"] == 1

    def test_different_data_is_a_miss(self):
        x, y = sample(seed=3)
        x2, y2 = sample(seed=4)

        async def main():
            app = await started(make_app())
            await app.handle(
                "POST", "/select", {"x": x, "y": y, "n_bandwidths": 10}
            )
            _, second = await app.handle(
                "POST", "/select", {"x": x2, "y": y2, "n_bandwidths": 10}
            )
            await app.shutdown()
            return second

        second = asyncio.run(main())
        assert second["cache_hit"] is False

    def test_select_register_enables_predict(self):
        x, y = sample()

        async def main():
            app = await started(make_app())
            await app.handle(
                "POST",
                "/select",
                {"x": x, "y": y, "n_bandwidths": 10, "register": "m"},
            )
            status, payload = await app.handle(
                "POST", "/predict", {"model": "m", "at": [0.25, 0.75]}
            )
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 200
        assert len(payload["estimates"]) == 2
        assert all(isinstance(v, float) for v in payload["estimates"])


class TestPredictCoalescing:
    def test_concurrent_predicts_batch_together(self):
        """Acceptance: concurrent /predict coalesce (occupancy > 1)."""
        x, y = sample()

        async def main():
            app = await started(make_app())
            await app.handle(
                "POST",
                "/select",
                {"x": x, "y": y, "n_bandwidths": 10, "register": "m"},
            )
            results = await asyncio.gather(*[
                app.handle(
                    "POST",
                    "/predict",
                    {"model": "m", "at": [0.1 * (i + 1)]},
                )
                for i in range(6)
            ])
            snap = app.metrics.snapshot()
            await app.shutdown()
            return results, snap

        results, snap = asyncio.run(main())
        assert all(status == 200 for status, _ in results)
        occupancy = snap["predict_batch_occupancy"]
        assert occupancy["max"] > 1.0
        # Coalesced answers must equal what the model computes alone.
        estimates = [payload["estimates"][0] for _, payload in results]
        assert len(set(map(type, estimates))) == 1

    def test_fit_endpoint(self):
        x, y = sample()

        async def main():
            app = await started(make_app())
            status, payload = await app.handle(
                "POST", "/fit", {"name": "f", "x": x, "y": y, "n_bandwidths": 8}
            )
            await app.shutdown()
            return status, payload

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["model"]["name"] == "f"
        assert payload["model"]["bandwidth"] > 0


class TestWireProtocol:
    """Real sockets on an OS-assigned port."""

    def test_http_roundtrip(self):
        x, y = sample(40)
        clients = ThreadPoolExecutor(max_workers=2)

        def request(base: str, method: str, path: str, body=None):
            data = json.dumps(body).encode() if body is not None else None
            req = urllib.request.Request(base + path, data=data, method=method)
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    raw = resp.read()
                    if resp.headers.get_content_type() == "application/json":
                        return resp.status, json.loads(raw)
                    return resp.status, raw.decode()
            except urllib.error.HTTPError as err:
                return err.code, json.loads(err.read())

        async def main():
            app = make_app()
            loop = asyncio.get_running_loop()
            ready: asyncio.Future = loop.create_future()
            stop = asyncio.Event()
            server = loop.create_task(
                run_server(app, ready=ready, shutdown_trigger=stop)
            )
            host, port = await ready
            base = f"http://{host}:{port}"
            run = lambda *a: loop.run_in_executor(clients, request, base, *a)  # noqa: E731

            health = await run("GET", "/healthz")
            body = {"x": x, "y": y, "n_bandwidths": 8, "register": "m"}
            cold = await run("POST", "/select", body)
            warm = await run("POST", "/select", body)
            predict = await run("POST", "/predict", {"model": "m", "at": [0.5]})
            metrics = await run("GET", "/metrics")
            missing = await run("POST", "/predict", {"model": "no", "at": [1]})
            stop.set()
            await server
            return health, cold, warm, predict, metrics, missing

        health, cold, warm, predict, metrics, missing = asyncio.run(main())
        clients.shutdown()
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert cold[0] == warm[0] == 200
        assert cold[1]["cache_hit"] is False and warm[1]["cache_hit"] is True
        assert warm[1]["result"]["bandwidth"] == cold[1]["result"]["bandwidth"]
        assert predict[0] == 200
        assert missing[0] == 404
        assert "repro_cache_hit_rate" in metrics[1]
        assert "repro_select_cache_hits_total 1" in metrics[1]

    def test_malformed_json_is_400(self):
        async def main():
            app = make_app()
            loop = asyncio.get_running_loop()
            ready: asyncio.Future = loop.create_future()
            stop = asyncio.Event()
            server = loop.create_task(
                run_server(app, ready=ready, shutdown_trigger=stop)
            )
            host, port = await ready

            def bad_request():
                req = urllib.request.Request(
                    f"http://{host}:{port}/select",
                    data=b"not json",
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(req, timeout=30):
                        return 200
                except urllib.error.HTTPError as err:
                    return err.code

            with ThreadPoolExecutor(max_workers=1) as pool:
                status = await loop.run_in_executor(pool, bad_request)
            stop.set()
            await server
            return status

        assert asyncio.run(main()) == 400


class TestOverload:
    def test_queue_overflow_maps_to_429(self):
        x, y = sample()

        async def main():
            app = await started(
                make_app(
                    predict=SchedulerConfig(
                        max_batch_size=1, max_wait_ms=0.0, max_queue=1
                    )
                )
            )
            await app.handle(
                "POST",
                "/select",
                {"x": x, "y": y, "n_bandwidths": 8, "register": "m"},
            )
            # Flood faster than the single-slot queue can drain.
            results = await asyncio.gather(*[
                app.handle("POST", "/predict", {"model": "m", "at": [0.5]})
                for _ in range(30)
            ])
            await app.shutdown()
            return results

        results = asyncio.run(main())
        statuses = {status for status, _ in results}
        assert statuses <= {200, 429}
        rejected = [p for s, p in results if s == 429]
        if rejected:  # under load at least the code is right
            assert all(p["code"] == "REPRO_SERVE_OVERLOAD" for p in rejected)
