"""ArtifactCache: fingerprints, tiers, eviction, corruption handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import SelectionResult
from repro.exceptions import CacheError, ValidationError
from repro.serving.cache import (
    ArtifactCache,
    curve_fingerprint,
    selection_fingerprint,
)


@pytest.fixture()
def sample() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    x = rng.uniform(0.0, 1.0, 40)
    return x, 2.0 * x + rng.normal(0.0, 0.1, 40)


def _result(bandwidth: float = 0.25) -> SelectionResult:
    grid = np.linspace(0.1, 1.0, 8)
    return SelectionResult(
        bandwidth=bandwidth,
        score=1.5,
        method="grid-search",
        backend="numpy",
        kernel="epanechnikov",
        n_observations=40,
        bandwidths=grid,
        scores=np.linspace(2.0, 1.5, 8),
        n_evaluations=8,
        wall_seconds=0.01,
        diagnostics={"refinements": 0},
    )


class TestFingerprints:
    def test_curve_key_depends_on_data_grid_kernel_backend(self, sample):
        x, y = sample
        grid = np.linspace(0.1, 1.0, 5)
        base = curve_fingerprint(x, y, grid, "epanechnikov")
        assert base == curve_fingerprint(x, y, grid, "epanechnikov")
        assert base != curve_fingerprint(x, y + 1e-12, grid, "epanechnikov")
        assert base != curve_fingerprint(x, y, grid * 1.01, "epanechnikov")
        assert base != curve_fingerprint(x, y, grid, "gaussian")
        assert base != curve_fingerprint(x, y, grid, "epanechnikov", backend="gpusim")

    def test_selection_key_adds_method_and_options(self, sample):
        x, y = sample
        grid = np.linspace(0.1, 1.0, 5)
        base = selection_fingerprint(x, y, grid, "epanechnikov")
        assert base != selection_fingerprint(x, y, grid, "epanechnikov", method="numeric")
        assert base != selection_fingerprint(
            x, y, grid, "epanechnikov", options={"refine_rounds": 2}
        )
        assert base == selection_fingerprint(x, y, grid, "epanechnikov", options={})

    def test_option_order_is_irrelevant(self, sample):
        x, y = sample
        grid = np.linspace(0.1, 1.0, 5)
        a = selection_fingerprint(
            x, y, grid, "epanechnikov", options={"a": 1, "b": 2}
        )
        b = selection_fingerprint(
            x, y, grid, "epanechnikov", options={"b": 2, "a": 1}
        )
        assert a == b


class TestMemoryTier:
    def test_selection_roundtrip_is_bitforbit(self):
        cache = ArtifactCache(None)
        stored = _result()
        cache.put_selection("f" * 64, stored)
        loaded = cache.get_selection("f" * 64)
        assert loaded is not None
        assert loaded.bandwidth == stored.bandwidth
        assert loaded.score == stored.score
        np.testing.assert_array_equal(loaded.bandwidths, stored.bandwidths)
        np.testing.assert_array_equal(loaded.scores, stored.scores)
        assert loaded.diagnostics["cache"] == "hit"
        # The original's diagnostics are untouched.
        assert "cache" not in stored.diagnostics

    def test_miss_returns_none_and_counts(self):
        cache = ArtifactCache(None)
        assert cache.get_selection("0" * 64) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_curve_roundtrip(self):
        cache = ArtifactCache(None)
        grid = np.linspace(0.1, 1.0, 6)
        scores = np.linspace(3.0, 1.0, 6)
        cache.put_curve("a" * 64, grid, scores)
        np.testing.assert_array_equal(cache.get_curve("a" * 64), scores)

    def test_curve_shape_mismatch_raises(self):
        cache = ArtifactCache(None)
        with pytest.raises(CacheError):
            cache.put_curve("a" * 64, np.ones(3), np.ones(4))

    def test_blocks_roundtrip(self):
        cache = ArtifactCache(None)
        starts = np.array([0, 16, 32])
        sums = np.arange(9, dtype=np.float64).reshape(3, 3)
        cache.put_blocks("b" * 64, starts, sums)
        blocks = cache.get_blocks("b" * 64)
        assert set(blocks) == {0, 16, 32}
        np.testing.assert_array_equal(blocks[16], sums[1])

    def test_lru_eviction_under_byte_budget(self):
        one_entry = 8 * 6 * 2  # bandwidths + scores, 6 float64 each
        cache = ArtifactCache(None, max_memory_bytes=3 * one_entry)
        grid = np.linspace(0.1, 1.0, 6)
        for i in range(5):
            cache.put_curve(f"{i:064d}", grid, grid * i)
        assert len(cache) <= 3
        assert cache.stats.memory_evictions >= 2
        # The most recent entry survived.
        assert cache.get_curve(f"{4:064d}") is not None

    def test_max_entries_bound(self):
        cache = ArtifactCache(None, max_entries=2)
        grid = np.linspace(0.1, 1.0, 4)
        for i in range(4):
            cache.put_curve(f"{i:064d}", grid, grid)
        assert len(cache) == 2

    def test_bad_budget_rejected(self):
        with pytest.raises(ValidationError):
            ArtifactCache(None, max_memory_bytes=-1)
        with pytest.raises(ValidationError):
            ArtifactCache(None, max_entries=0)


class TestDiskTier:
    def test_survives_a_new_instance(self, tmp_path):
        first = ArtifactCache(tmp_path / "cache")
        first.put_selection("c" * 64, _result(0.31))
        second = ArtifactCache(tmp_path / "cache")
        loaded = second.get_selection("c" * 64)
        assert loaded is not None
        assert loaded.bandwidth == 0.31
        assert second.stats.hits == 1

    def test_corrupt_file_is_a_miss_and_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_curve("d" * 64, np.ones(3), np.ones(3))
        victim = next(tmp_path.glob("curve-*.npz"))
        victim.write_bytes(b"not an npz")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get_curve("d" * 64) is None
        assert fresh.stats.corrupt_entries == 1
        assert not victim.exists()

    def test_disk_budget_evicts_oldest(self, tmp_path):
        import os
        import time

        grid = np.linspace(0.1, 1.0, 4)
        seeder = ArtifactCache(tmp_path)
        seeder.put_curve("0" * 64, grid, grid)
        old = next(tmp_path.glob("*.npz"))
        stamp = time.time() - 1000
        os.utime(old, (stamp, stamp))
        # Budget holds one artifact but not two: the next put evicts the
        # stale file.
        cache = ArtifactCache(
            tmp_path, max_disk_bytes=int(old.stat().st_size * 1.5)
        )
        cache.put_curve("1" * 64, grid, grid)
        assert cache.stats.disk_evictions >= 1
        assert not old.exists()

    def test_clear_drops_both_tiers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_curve("e" * 64, np.ones(3), np.ones(3))
        cache.clear()
        assert len(cache) == 0
        assert list(tmp_path.glob("*.npz")) == []

    def test_describe_reports_occupancy(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_curve("f" * 64, np.ones(3), np.ones(3))
        desc = cache.describe()
        assert desc["directory"] == str(tmp_path)
        assert desc["memory_entries"] == 1
        assert desc["disk_entries"] == 1
        assert desc["stats"]["puts"] == 1
