"""Fixtures for the resilience layer and the chaos suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.resilience.engine import ResilienceConfig
from repro.resilience.policy import RetryPolicy


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Injection seed: CI sweeps a matrix via ``REPRO_CHAOS_SEED``."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(scope="session")
def chaos_sample() -> tuple[np.ndarray, np.ndarray]:
    """A fixed (x, y) sample big enough for several row blocks."""
    rng = np.random.default_rng(20170529)
    x = rng.uniform(0.0, 10.0, 200)
    y = np.sin(x) + rng.normal(0.0, 0.3, 200)
    return x, y


@pytest.fixture(scope="session")
def chaos_grid() -> np.ndarray:
    return np.linspace(0.2, 3.0, 25)


@pytest.fixture
def fast_config() -> ResilienceConfig:
    """Generous retries, zero real sleeping — chaos tests run in ms."""
    return ResilienceConfig(
        policy=RetryPolicy(max_retries=4, base_delay=0.0, max_delay=0.0),
        sleep=lambda _seconds: None,
    )
