"""Unit tests for the deterministic fault-injection registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    BlockTimeoutError,
    DeviceMemoryError,
    KernelExecutionError,
    ValidationError,
    WorkerCrashError,
)
from repro.resilience import faults
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    faulty_call,
    inject_faults,
)


class TestFaultSpec:
    def test_unknown_site_rejected(self) -> None:
        with pytest.raises(ValidationError, match="unknown fault site"):
            FaultSpec(site="disk.write", kind="crash")

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ValidationError, match="unknown fault kind"):
            FaultSpec(site="pool.worker", kind="meltdown")

    def test_rate_bounds(self) -> None:
        with pytest.raises(ValidationError, match="rate"):
            FaultSpec(site="pool.worker", kind="crash", rate=1.5)


class TestDeterminism:
    def test_same_seed_same_decisions(self) -> None:
        spec = FaultSpec(site="pool.worker", kind="crash", rate=0.5)
        runs = []
        for _ in range(2):
            inj = FaultInjector([spec], seed=42)
            runs.append([inj.draw("pool.worker") is not None for _ in range(50)])
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])

    def test_different_seeds_differ(self) -> None:
        spec = FaultSpec(site="pool.worker", kind="crash", rate=0.5)
        seqs = set()
        for seed in range(4):
            inj = FaultInjector([spec], seed=seed)
            seqs.add(
                tuple(inj.draw("pool.worker") is not None for _ in range(50))
            )
        assert len(seqs) > 1

    def test_sites_are_independent(self) -> None:
        """Adding a spec at one site must not shift another site's draws."""
        base = FaultSpec(site="pool.worker", kind="crash", rate=0.5)
        extra = FaultSpec(site="gpusim.malloc", kind="oom", rate=0.5)
        solo = FaultInjector([base], seed=9)
        both = FaultInjector([base, extra], seed=9)
        seq_solo = [solo.draw("pool.worker") is not None for _ in range(30)]
        seq_both = []
        for _ in range(30):
            both.draw("gpusim.malloc")
            seq_both.append(both.draw("pool.worker") is not None)
        assert seq_solo == seq_both

    def test_reset_replays(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="data.block", kind="nan", rate=0.3)], seed=5
        )
        first = [inj.draw("data.block") is not None for _ in range(20)]
        inj.reset()
        second = [inj.draw("data.block") is not None for _ in range(20)]
        assert first == second


class TestTriggering:
    def test_at_indices_fire_exactly(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="pool.worker", kind="crash", at=(1, 3))], seed=0
        )
        fired = [inj.draw("pool.worker") is not None for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_max_triggers_bounds_firing(self) -> None:
        inj = FaultInjector(
            [
                FaultSpec(
                    site="pool.worker", kind="crash", rate=1.0, max_triggers=2
                )
            ],
            seed=0,
        )
        fired = [inj.draw("pool.worker") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_log_records_events(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="gpusim.launch", kind="launch", at=(0,))], seed=0
        )
        with pytest.raises(KernelExecutionError):
            inj.fire("gpusim.launch", "main_kernel")
        assert len(inj.log) == 1
        assert inj.log[0].site == "gpusim.launch"
        assert inj.log[0].context == "main_kernel"


class TestFireAndCorrupt:
    @pytest.mark.parametrize(
        ("kind", "exc"),
        [
            ("oom", DeviceMemoryError),
            ("launch", KernelExecutionError),
        ],
    )
    def test_fire_raises_typed(self, kind: str, exc: type) -> None:
        site = "gpusim.malloc" if kind == "oom" else "gpusim.launch"
        inj = FaultInjector([FaultSpec(site=site, kind=kind, at=(0,))], seed=0)
        with pytest.raises(exc):
            inj.fire(site)

    def test_corrupt_injects_nan(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="data.block", kind="nan", at=(0,))], seed=0
        )
        values = np.ones(7)
        poisoned = inj.corrupt("data.block", values)
        assert np.isnan(poisoned).sum() == 1
        assert not np.isnan(values).any(), "input must not be mutated"

    def test_corrupt_injects_inf(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="data.block", kind="inf", at=(0,))], seed=0
        )
        poisoned = inj.corrupt("data.block", np.ones(7))
        assert np.isinf(poisoned).sum() == 1

    def test_corrupt_passthrough_without_trigger(self) -> None:
        inj = FaultInjector([], seed=0)
        values = np.ones(3)
        assert inj.corrupt("data.block", values) is values


class TestContextManager:
    def test_hooks_are_noops_outside_plan(self) -> None:
        faults.fire("gpusim.malloc")  # must not raise
        assert faults.draw("pool.worker") is None
        assert faults.draw_many("pool.worker", 3) == [None, None, None]

    def test_inject_installs_and_removes(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="gpusim.malloc", kind="oom", at=(0,))], seed=0
        )
        with inject_faults(inj):
            assert faults.active_injector() is inj
            with pytest.raises(DeviceMemoryError):
                faults.fire("gpusim.malloc")
        assert faults.active_injector() is None

    def test_nesting_rejected(self) -> None:
        with inject_faults(FaultInjector(seed=0)):
            with pytest.raises(ValidationError, match="nest"):
                with inject_faults(FaultInjector(seed=1)):
                    pass

    def test_reentry_replays(self) -> None:
        inj = FaultInjector(
            [FaultSpec(site="pool.worker", kind="crash", at=(0,))], seed=0
        )
        for _ in range(2):
            with inject_faults(inj):
                assert faults.draw("pool.worker") == "crash"
                assert faults.draw("pool.worker") is None


class TestFaultyCall:
    def test_crash_directive_raises(self) -> None:
        with pytest.raises(WorkerCrashError):
            faulty_call("crash", sum, [1, 2])

    def test_timeout_directive_raises(self) -> None:
        with pytest.raises(BlockTimeoutError):
            faulty_call("timeout", sum, [1, 2])

    def test_none_directive_calls_through(self) -> None:
        assert faulty_call(None, sum, [1, 2]) == 3

    def test_is_picklable(self) -> None:
        import pickle

        assert pickle.loads(pickle.dumps(faulty_call)) is faulty_call
