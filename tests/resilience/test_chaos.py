"""Chaos suite: inject every fault class into every backend and demand
bit-for-bit identical bandwidth selection.

The invariant under test is the paper's own decomposition: the CV curve
is a sum of per-row-block partial sums, so recomputing a block (retry),
replaying it from disk (resume), or absorbing a transient fault must not
change a single bit of the scores.  Degrading to a *different* backend
legitimately changes floating-point ordering, so those cases assert the
selected bandwidth (the argmin) instead of the raw scores.

Seeds sweep a CI matrix via ``REPRO_CHAOS_SEED`` (see conftest).
"""

from __future__ import annotations

import dataclasses
import glob
import os

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.resilience import FaultInjector, FaultSpec, inject_faults
from repro.resilience.engine import (
    ResilienceConfig,
    default_block_rows,
    resilient_cv_scores,
)
from repro.resilience.policy import RetryBudgetExceeded, RetryPolicy

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def no_shm_litter():
    """Every chaos run — worker crashes, segment unlinks, retry storms —
    must leave ``/dev/shm`` free of ``repro-shm-*`` segments."""
    yield
    if os.path.isdir("/dev/shm"):
        assert glob.glob("/dev/shm/repro-shm-*") == []

#: (backend, fault spec) cells where the fault is absorbed *in place*
#: (retry on the same backend) — scores must match bit for bit.
RETRY_CELLS = [
    pytest.param(
        "numpy",
        FaultSpec(site="data.block", kind="nan", at=(2,)),
        id="numpy-nan-block",
    ),
    pytest.param(
        "numpy",
        FaultSpec(site="data.block", kind="inf", at=(0, 5)),
        id="numpy-inf-blocks",
    ),
    pytest.param(
        "multicore",
        FaultSpec(site="pool.worker", kind="crash", at=(1,)),
        id="multicore-worker-crash",
    ),
    pytest.param(
        "multicore",
        FaultSpec(site="pool.worker", kind="timeout", at=(3,)),
        id="multicore-block-timeout",
    ),
    pytest.param(
        "multicore",
        FaultSpec(site="data.block", kind="nan", at=(1,)),
        id="multicore-nan-block",
    ),
    pytest.param(
        "gpusim",
        FaultSpec(site="gpusim.launch", kind="launch", at=(0,)),
        id="gpusim-launch-failure",
    ),
    pytest.param(
        "gpusim-tiled",
        FaultSpec(site="data.block", kind="nan", at=(2,)),
        id="gpusim-tiled-nan-block",
    ),
    pytest.param(
        "gpusim-tiled",
        FaultSpec(site="data.block", kind="inf", at=(0,)),
        id="gpusim-tiled-inf-block",
    ),
    pytest.param(
        "blocked",
        FaultSpec(site="data.block", kind="nan", at=(1,)),
        id="blocked-nan-block",
    ),
    pytest.param(
        "blocked-shm",
        FaultSpec(site="shm.worker", kind="crash", at=(1,)),
        id="blocked-shm-worker-crash",
    ),
    pytest.param(
        "blocked-shm",
        FaultSpec(site="shm.worker", kind="timeout", at=(2,)),
        id="blocked-shm-worker-timeout",
    ),
    pytest.param(
        "blocked-shm",
        FaultSpec(site="data.block", kind="nan", at=(0,)),
        id="blocked-shm-nan-block",
    ),
    pytest.param(
        "compiled",
        FaultSpec(site="data.block", kind="nan", at=(1,)),
        id="compiled-nan-block",
    ),
    pytest.param(
        "blocked-compiled",
        FaultSpec(site="data.block", kind="inf", at=(0,)),
        id="blocked-compiled-inf-block",
    ),
]

#: Cells where the fault is structural and the engine must *degrade* —
#: the selected bandwidth must survive, the raw bits legitimately change.
DEGRADE_CELLS = [
    pytest.param(
        "gpusim",
        FaultSpec(site="gpusim.malloc", kind="oom", at=(0,)),
        "gpusim-tiled",
        id="gpusim-oom-to-tiled",
    ),
    pytest.param(
        "gpusim-tiled",
        FaultSpec(site="gpusim.malloc", kind="oom", rate=1.0),
        "multicore",
        id="tiled-oom-to-multicore",
    ),
    pytest.param(
        "blocked-shm",
        FaultSpec(site="shm.segment", kind="unlink", at=(0,)),
        "blocked",
        id="shm-unlink-to-blocked",
    ),
]


def _clean_scores(sample, grid, backend, config):
    x, y = sample
    scores, report = resilient_cv_scores(
        x, y, grid, backend=backend, config=config
    )
    assert report.clean, f"fault-free {backend} run must be clean"
    return scores


class TestRetryBitForBit:
    @pytest.mark.parametrize(("backend", "spec"), RETRY_CELLS)
    def test_faulted_run_matches_clean_run(
        self, backend, spec, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(chaos_sample, chaos_grid, backend, fast_config)
        x, y = chaos_sample
        injector = FaultInjector([spec], seed=chaos_seed)
        with inject_faults(injector):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend=backend, config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.backend_used == backend
        assert not report.degraded
        assert report.retries >= 1
        assert report.faults, "the absorbed fault must be reported"

    @pytest.mark.parametrize("backend", ["numpy", "multicore", "gpusim-tiled"])
    def test_random_rate_faults_still_bit_for_bit(
        self, backend, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        """Seeded Bernoulli faults (the CI seed matrix) instead of fixed indices."""
        clean = _clean_scores(chaos_sample, chaos_grid, backend, fast_config)
        x, y = chaos_sample
        injector = FaultInjector(
            [
                FaultSpec(site="data.block", kind="nan", rate=0.3, max_triggers=4),
            ],
            seed=chaos_seed,
        )
        with inject_faults(injector):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend=backend, config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.retries == len(injector.log)


class TestDegradation:
    @pytest.mark.parametrize(("backend", "spec", "expected"), DEGRADE_CELLS)
    def test_structural_fault_degrades_and_preserves_bandwidth(
        self, backend, spec, expected, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(chaos_sample, chaos_grid, backend, fast_config)
        x, y = chaos_sample
        with inject_faults(FaultInjector([spec], seed=chaos_seed)):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend=backend, config=fast_config
            )
        assert report.degraded
        assert report.backend_used == expected
        assert chaos_grid[np.argmin(scores)] == chaos_grid[np.argmin(clean)]
        np.testing.assert_allclose(scores, clean, rtol=1e-4)
        codes = [a["outcome"] for a in report.backend_attempts]
        assert codes[-1] == "ok" and any(c != "ok" for c in codes[:-1])

    def test_fallback_disabled_propagates(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        x, y = chaos_sample
        config = dataclasses.replace(fast_config, fallback=False)
        spec = FaultSpec(site="gpusim.malloc", kind="oom", at=(0,))
        from repro.exceptions import DeviceMemoryError

        with inject_faults(FaultInjector([spec], seed=chaos_seed)):
            with pytest.raises(DeviceMemoryError):
                resilient_cv_scores(
                    x, y, chaos_grid, backend="gpusim", config=config
                )


class TestSharedMemoryChaos:
    """The shm spur is special: its fallback twin computes the *same*
    partition with the same arithmetic, so degradation is lossless —
    stronger than the allclose contract of the generic degrade cells."""

    def test_unlink_degradation_is_bit_identical(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(chaos_sample, chaos_grid, "blocked", fast_config)
        x, y = chaos_sample
        spec = FaultSpec(site="shm.segment", kind="unlink", at=(0,))
        with inject_faults(FaultInjector([spec], seed=chaos_seed)):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend="blocked-shm", config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.degraded
        assert report.backend_used == "blocked"

    def test_worker_death_storm_is_bit_for_bit_and_leak_free(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(
            chaos_sample, chaos_grid, "blocked-shm", fast_config
        )
        x, y = chaos_sample
        storm = FaultInjector(
            [
                FaultSpec(
                    site="shm.worker", kind="crash", rate=0.4, max_triggers=3
                ),
            ],
            seed=chaos_seed,
        )
        with inject_faults(storm):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend="blocked-shm", config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.backend_used == "blocked-shm"
        assert not report.degraded
        assert report.retries == len(storm.log)
        # The autouse fixture re-checks this, but the point of the test
        # deserves its own assertion: crashes must not leak segments.
        if os.path.isdir("/dev/shm"):
            assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_blocked_and_blocked_shm_agree_bit_for_bit_when_clean(
        self, chaos_sample, chaos_grid, fast_config
    ) -> None:
        a = _clean_scores(chaos_sample, chaos_grid, "blocked", fast_config)
        b = _clean_scores(
            chaos_sample, chaos_grid, "blocked-shm", fast_config
        )
        np.testing.assert_array_equal(a, b)


class TestCompiledChaos:
    """The compiled spur's degradation is lossless by construction: the
    jitted kernel (or its numpy twin on the fallback) produces float64
    block partials byte-identical to the reference, so even a *mid-run*
    JIT loss must reproduce the exact clean-run bits — stronger than the
    allclose contract of the generic degrade cells."""

    def test_jit_loss_degrades_to_numpy_bit_identical(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(chaos_sample, chaos_grid, "numpy", fast_config)
        x, y = chaos_sample
        spec = FaultSpec(site="compiled.jit", kind="nojit", at=(0,))
        with inject_faults(FaultInjector([spec], seed=chaos_seed)):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend="compiled", config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.degraded
        assert report.backend_used == "numpy"
        codes = {f["code"] for f in report.faults}
        assert "REPRO_COMPILED_UNAVAILABLE" in codes

    def test_jit_loss_storm_degrades_blocked_compiled_bit_identical(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config
    ) -> None:
        clean = _clean_scores(chaos_sample, chaos_grid, "blocked", fast_config)
        x, y = chaos_sample
        # Every compiled block dies: the engine must walk the spur to the
        # plain blocked sweep and still land on the reference bits.
        spec = FaultSpec(site="compiled.jit", kind="nojit", rate=1.0)
        with inject_faults(FaultInjector([spec], seed=chaos_seed)):
            scores, report = resilient_cv_scores(
                x, y, chaos_grid, backend="blocked-compiled", config=fast_config
            )
        np.testing.assert_array_equal(scores, clean)
        assert report.degraded
        assert report.backend_used == "blocked"

    def test_compiled_and_numpy_agree_bit_for_bit_when_clean(
        self, chaos_sample, chaos_grid, fast_config
    ) -> None:
        a = _clean_scores(chaos_sample, chaos_grid, "numpy", fast_config)
        b = _clean_scores(chaos_sample, chaos_grid, "compiled", fast_config)
        c = _clean_scores(
            chaos_sample, chaos_grid, "blocked-compiled", fast_config
        )
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)


class TestCheckpointResume:
    def _config(self, fast_config, path, *, max_retries, keep=True):
        return dataclasses.replace(
            fast_config,
            policy=RetryPolicy(max_retries=max_retries, base_delay=0.0),
            checkpoint=path,
            keep_checkpoint=keep,
        )

    def test_resume_after_crash_is_bit_for_bit(
        self, chaos_sample, chaos_grid, chaos_seed, fast_config, tmp_path
    ) -> None:
        x, y = chaos_sample
        clean = _clean_scores(chaos_sample, chaos_grid, "numpy", fast_config)
        ckpt = tmp_path / "sweep.ckpt.npz"

        # First run: block 2 keeps failing until its budget dies (draw 2 in
        # the first wave, draw 4 on its lone retry), the other blocks land.
        doomed = FaultSpec(site="data.block", kind="nan", at=(2, 4))
        config = self._config(fast_config, ckpt, max_retries=1)
        with inject_faults(FaultInjector([doomed], seed=chaos_seed)):
            with pytest.raises(RetryBudgetExceeded):
                resilient_cv_scores(
                    x, y, chaos_grid, backend="numpy", config=config
                )
        assert ckpt.exists(), "completed blocks must survive the crash"

        # Second run resumes the surviving blocks and finishes fault-free.
        config = self._config(fast_config, ckpt, max_retries=1, keep=False)
        scores, report = resilient_cv_scores(
            x, y, chaos_grid, backend="numpy", config=config
        )
        np.testing.assert_array_equal(scores, clean)
        assert report.blocks_resumed == report.blocks_total - 1
        assert not ckpt.exists(), "checkpoint is discarded after success"

    def test_resumed_blocks_are_not_recomputed(
        self, chaos_sample, chaos_grid, fast_config, tmp_path, monkeypatch
    ) -> None:
        x, y = chaos_sample
        ckpt = tmp_path / "sweep.ckpt.npz"
        config = self._config(fast_config, ckpt, max_retries=0)
        scores, report = resilient_cv_scores(
            x, y, chaos_grid, backend="numpy", config=config
        )
        assert report.blocks_total > 1

        # the engine imports the block kernel lazily from repro.core.fastgrid
        import repro.core.fastgrid as fastgrid_mod

        calls = {"n": 0}
        real = fastgrid_mod.fastgrid_block_sums

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(fastgrid_mod, "fastgrid_block_sums", counting)
        again, rep2 = resilient_cv_scores(
            x, y, chaos_grid, backend="numpy", config=config
        )
        assert calls["n"] == 0, "a full checkpoint must skip every block"
        assert rep2.blocks_resumed == rep2.blocks_total
        np.testing.assert_array_equal(again, scores)

    def test_resume_with_wrong_data_refuses(
        self, chaos_sample, chaos_grid, fast_config, tmp_path
    ) -> None:
        x, y = chaos_sample
        ckpt = tmp_path / "sweep.ckpt.npz"
        config = self._config(fast_config, ckpt, max_retries=0)
        resilient_cv_scores(x, y, chaos_grid, backend="numpy", config=config)
        with pytest.raises(CheckpointError, match="different sweep"):
            resilient_cv_scores(
                x, y + 1.0, chaos_grid, backend="numpy", config=config
            )


class TestSelectorEndToEnd:
    def test_grid_selector_bandwidth_survives_chaos(
        self, chaos_sample, chaos_seed, fast_config
    ) -> None:
        from repro import select_bandwidth

        x, y = chaos_sample
        baseline = select_bandwidth(
            x, y, method="grid", backend="multicore", resilience=fast_config
        )
        assert baseline.resilience is not None and baseline.resilience.clean

        storm = FaultInjector(
            [
                FaultSpec(site="pool.worker", kind="crash", at=(2,)),
                FaultSpec(site="data.block", kind="nan", at=(7,)),
            ],
            seed=chaos_seed,
        )
        with inject_faults(storm):
            chaotic = select_bandwidth(
                x, y, method="grid", backend="multicore", resilience=fast_config
            )
        assert chaotic.bandwidth == baseline.bandwidth
        np.testing.assert_array_equal(chaotic.scores, baseline.scores)
        assert chaotic.resilience.retries >= 1

    def test_numeric_selector_survives_worker_crashes(
        self, chaos_sample, chaos_seed, fast_config
    ) -> None:
        from repro import select_bandwidth

        x, y = chaos_sample
        baseline = select_bandwidth(
            x, y, method="numeric", workers=2, resilience=fast_config
        )
        storm = FaultInjector(
            [FaultSpec(site="pool.worker", kind="crash", at=(1, 4))],
            seed=chaos_seed,
        )
        with inject_faults(storm):
            chaotic = select_bandwidth(
                x, y, method="numeric", workers=2, resilience=fast_config
            )
        assert chaotic.bandwidth == baseline.bandwidth
        assert chaotic.resilience.retries >= 1


class TestPartition:
    def test_block_rows_is_a_pure_function_of_n(self) -> None:
        assert default_block_rows(200) == default_block_rows(200)
        assert default_block_rows(100) == 64
        n = 100_000
        rows = default_block_rows(n)
        assert -(-n // rows) <= 16
