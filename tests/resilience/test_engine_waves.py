"""Wave re-dispatch when one block fails *every* retry.

The degrade chain is disabled here on purpose: with ``fallback=False``
the engine must surface the typed ``REPRO_RETRY_EXHAUSTED`` error
naming the exact block, and the checkpoint must hold every *completed*
block while never committing a partial result for the failed one — the
same at-most-once discipline the distributed coordinator's lease
accounting enforces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import error_code
from repro.resilience import FaultInjector, FaultSpec, inject_faults
from repro.resilience.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.resilience.engine import ResilienceConfig, resilient_cv_scores
from repro.resilience.policy import RetryBudgetExceeded, RetryPolicy

N = 256
BLOCK_ROWS = 64  # 4 blocks: rows [0:64) [64:128) [128:192) [192:256)


@pytest.fixture()
def sample() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(41)
    x = np.sort(rng.uniform(0.0, 10.0, N))
    y = np.sin(x) + rng.normal(0.0, 0.2, N)
    grid = np.linspace(0.2, 3.0, 9)
    return x, y, grid


def _config(
    tmp_path, max_retries: int = 2, name: str = "sweep.ckpt.npz"
) -> ResilienceConfig:
    return ResilienceConfig(
        policy=RetryPolicy(max_retries=max_retries, base_delay=0.0, max_delay=0.0),
        fallback=False,
        block_rows=BLOCK_ROWS,
        checkpoint=tmp_path / name,
        keep_checkpoint=True,
        sleep=lambda _s: None,
    )


def _clean_scores(sample, tmp_path) -> np.ndarray:
    x, y, grid = sample
    scores, report = resilient_cv_scores(
        x, y, grid, "epanechnikov", config=_config(tmp_path, name="clean.npz")
    )
    assert report.clean
    return scores


#: Block [64:128) is site event 1 in wave 0 and the sole event of every
#: retry wave after it, so these indices fail it on every attempt.
PERSISTENT_BLOCK_1 = FaultSpec(
    site="data.block", kind="nan", at=(1, 4, 5, 6, 7, 8, 9, 10)
)


def test_exhausted_block_surfaces_typed_error_with_block_id(sample, tmp_path):
    x, y, grid = sample
    with inject_faults(FaultInjector([PERSISTENT_BLOCK_1], seed=0)):
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            resilient_cv_scores(
                x, y, grid, "epanechnikov", config=_config(tmp_path)
            )
    exc = excinfo.value
    assert error_code(exc) == "REPRO_RETRY_EXHAUSTED"
    assert "numpy:rows[64:128)" in str(exc)
    assert "3 time(s)" in str(exc)  # 1 initial + max_retries attempts


def test_no_partial_fold_committed_for_the_failed_block(sample, tmp_path):
    x, y, grid = sample
    config = _config(tmp_path)
    with inject_faults(FaultInjector([PERSISTENT_BLOCK_1], seed=0)):
        with pytest.raises(RetryBudgetExceeded):
            resilient_cv_scores(x, y, grid, "epanechnikov", config=config)
    ckpt = SweepCheckpoint.open(
        config.checkpoint,
        fingerprint=sweep_fingerprint(x, y, grid, "epanechnikov", "float64", BLOCK_ROWS),
        n=N,
        k=grid.shape[0],
        block_rows=BLOCK_ROWS,
    )
    assert ckpt.has_block(0)
    assert ckpt.has_block(128)
    assert ckpt.has_block(192)
    assert not ckpt.has_block(64), (
        "a block that failed every retry must never commit a partial sum"
    )


def test_resume_after_exhaustion_recomputes_only_the_failed_block(
    sample, tmp_path
):
    x, y, grid = sample
    config = _config(tmp_path)
    with inject_faults(FaultInjector([PERSISTENT_BLOCK_1], seed=0)):
        with pytest.raises(RetryBudgetExceeded):
            resilient_cv_scores(x, y, grid, "epanechnikov", config=config)
    # The fault cleared (a healthy re-run): resume from the checkpoint.
    scores, report = resilient_cv_scores(
        x, y, grid, "epanechnikov", config=config
    )
    assert report.blocks_resumed == 3
    assert np.array_equal(scores, _clean_scores(sample, tmp_path))


def test_one_more_retry_is_enough_when_the_fault_is_transient(sample, tmp_path):
    x, y, grid = sample
    transient = FaultSpec(site="data.block", kind="nan", at=(1,))
    config = _config(tmp_path, max_retries=2)
    with inject_faults(FaultInjector([transient], seed=0)):
        scores, report = resilient_cv_scores(
            x, y, grid, "epanechnikov", config=config
        )
    assert report.retries == 1
    assert np.array_equal(scores, _clean_scores(sample, tmp_path))
