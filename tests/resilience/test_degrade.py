"""Unit tests for fault classification, the fallback chain, and the report."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DataCorruptionError,
    DeviceMemoryError,
    KernelExecutionError,
    PoolStateError,
    SharedSegmentError,
    ValidationError,
    WorkerCrashError,
)
from repro.resilience.degrade import (
    DEFAULT_FALLBACK_CHAIN,
    ResilienceReport,
    fallback_chain,
    is_degradable,
    is_retryable,
)
from repro.resilience.policy import RetryBudgetExceeded


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            WorkerCrashError("worker 3 died"),
            KernelExecutionError("launch failed"),
            DataCorruptionError("nan in block"),
        ],
    )
    def test_transients_are_retryable_not_degradable(self, exc) -> None:
        assert is_retryable(exc)
        assert not is_degradable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            DeviceMemoryError("4 GB wall"),
            PoolStateError("pool retired"),
            SharedSegmentError("segment unlinked under the pool"),
            RetryBudgetExceeded("gave up"),
        ],
    )
    def test_structural_faults_degrade(self, exc) -> None:
        assert is_degradable(exc)
        assert not is_retryable(exc)

    def test_caller_bugs_do_neither(self) -> None:
        exc = ValidationError("x and y length mismatch")
        assert not is_retryable(exc)
        assert not is_degradable(exc)
        plain = RuntimeError("unclassified")
        assert not is_retryable(plain)
        assert not is_degradable(plain)


class TestFallbackChain:
    def test_full_chain_from_gpusim(self) -> None:
        assert fallback_chain("gpusim") == DEFAULT_FALLBACK_CHAIN

    def test_suffix_from_mid_chain(self) -> None:
        assert fallback_chain("multicore") == ("multicore", "blocked", "numpy")
        assert fallback_chain("blocked") == ("blocked", "numpy")

    def test_terminal_backend_has_no_fallback(self) -> None:
        assert fallback_chain("numpy") == ("numpy",)

    def test_blocked_shm_joins_at_blocked(self) -> None:
        # The shm spur degrades to its bit-identical process-local twin
        # first, never to multicore (which would refork a pool for no win).
        assert fallback_chain("blocked-shm") == (
            "blocked-shm",
            "blocked",
            "numpy",
        )

    def test_unknown_backend_falls_to_serial(self) -> None:
        assert fallback_chain("python") == ("python", "numpy")
        assert fallback_chain("my-custom") == ("my-custom", "numpy")


class TestReport:
    def test_clean_until_something_happens(self) -> None:
        rep = ResilienceReport(backend_requested="numpy", backend_used="numpy")
        assert rep.clean
        assert not rep.degraded
        rep.retries += 1
        assert not rep.clean

    def test_degraded_flag(self) -> None:
        rep = ResilienceReport(backend_requested="gpusim", backend_used="numpy")
        assert rep.degraded
        assert not rep.clean

    def test_record_fault_uses_stable_code(self) -> None:
        rep = ResilienceReport()
        rep.record_fault("block:0", DeviceMemoryError("oom"))
        rep.record_fault("scores", RuntimeError("untyped"))
        assert rep.faults[0]["code"] == "REPRO_DEVICE_OOM"
        assert rep.faults[1]["code"] == "RuntimeError"

    def test_to_dict_copies_mutable_fields(self) -> None:
        rep = ResilienceReport(backend_requested="gpusim")
        rep.record_attempt("gpusim", "REPRO_DEVICE_OOM")
        snap = rep.to_dict()
        snap["backend_attempts"].clear()
        assert rep.backend_attempts, "to_dict must return copies"

    def test_summary_mentions_degradation_and_attempts(self) -> None:
        rep = ResilienceReport(
            backend_requested="gpusim", backend_used="gpusim-tiled"
        )
        rep.record_attempt("gpusim", "REPRO_DEVICE_OOM")
        rep.record_attempt("gpusim-tiled", "ok")
        text = rep.summary()
        assert "degraded" in text
        assert "gpusim=REPRO_DEVICE_OOM" in text
        assert "gpusim-tiled=ok" in text
