"""Unit tests for the resumable sweep checkpoint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ValidationError
from repro.resilience.checkpoint import SweepCheckpoint, sweep_fingerprint


def _inputs() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    x = rng.uniform(0.0, 5.0, 40)
    y = np.cos(x)
    grid = np.linspace(0.3, 2.0, 5)
    return x, y, grid


class TestFingerprint:
    def test_stable_across_calls(self) -> None:
        x, y, grid = _inputs()
        fp_a = sweep_fingerprint(x, y, grid, "epanechnikov", "float64", 16)
        fp_b = sweep_fingerprint(x, y, grid, "epanechnikov", "float64", 16)
        assert fp_a == fp_b

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda x, y, g: (x + 1e-12, y, g, "epanechnikov", "float64", 16),
            lambda x, y, g: (x, y * 2, g, "epanechnikov", "float64", 16),
            lambda x, y, g: (x, y, g[:-1], "epanechnikov", "float64", 16),
            lambda x, y, g: (x, y, g, "gaussian", "float64", 16),
            lambda x, y, g: (x, y, g, "epanechnikov", "float32", 16),
            lambda x, y, g: (x, y, g, "epanechnikov", "float64", 8),
        ],
        ids=["x", "y", "grid", "kernel", "dtype", "block_rows"],
    )
    def test_sensitive_to_every_input(self, mutate) -> None:
        x, y, grid = _inputs()
        base = sweep_fingerprint(x, y, grid, "epanechnikov", "float64", 16)
        assert sweep_fingerprint(*mutate(x, y, grid)) != base


class TestRoundtrip:
    def test_record_flush_load_exact(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        sums = {0: np.array([1.5, 2.5, np.pi]), 16: np.array([0.1, -3.0, 1e-17])}
        ckpt = SweepCheckpoint.open(
            path, fingerprint="fp", n=40, k=3, block_rows=16
        )
        for start, vec in sums.items():
            ckpt.record_block(start, vec)

        again = SweepCheckpoint.open(
            path, fingerprint="fp", n=40, k=3, block_rows=16
        )
        assert again.completed_starts == [0, 16]
        assert again.resumed_starts == frozenset({0, 16})
        for start, vec in sums.items():
            np.testing.assert_array_equal(again.get_block(start), vec)

    def test_in_memory_checkpoint(self) -> None:
        ckpt = SweepCheckpoint.open(
            None, fingerprint="fp", n=10, k=2, block_rows=5
        )
        ckpt.record_block(0, np.array([1.0, 2.0]))
        ckpt.flush()  # no-op, must not fail
        assert ckpt.has_block(0)
        assert ckpt.path is None

    def test_flush_every_batches_writes(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        ckpt = SweepCheckpoint.open(
            path, fingerprint="fp", n=40, k=1, block_rows=16, flush_every=3
        )
        ckpt.record_block(0, np.array([1.0]))
        ckpt.record_block(16, np.array([2.0]))
        assert not path.exists(), "should not flush before the batch fills"
        ckpt.record_block(32, np.array([3.0]))
        assert path.exists()

    def test_bad_shape_rejected(self) -> None:
        ckpt = SweepCheckpoint.open(
            None, fingerprint="fp", n=10, k=3, block_rows=5
        )
        with pytest.raises(ValidationError, match="shape"):
            ckpt.record_block(0, np.zeros(4))

    def test_missing_block_raises(self) -> None:
        ckpt = SweepCheckpoint.open(
            None, fingerprint="fp", n=10, k=3, block_rows=5
        )
        with pytest.raises(CheckpointError, match="not checkpointed"):
            ckpt.get_block(5)


class TestMismatch:
    def _seeded(self, path) -> None:
        ckpt = SweepCheckpoint.open(
            path, fingerprint="old-sweep", n=40, k=2, block_rows=16
        )
        ckpt.record_block(0, np.array([1.0, 2.0]))

    def test_mismatch_raises_by_default(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        self._seeded(path)
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint.open(
                path, fingerprint="new-sweep", n=40, k=2, block_rows=16
            )

    def test_restart_resets_instead(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        self._seeded(path)
        ckpt = SweepCheckpoint.open(
            path,
            fingerprint="new-sweep",
            n=40,
            k=2,
            block_rows=16,
            on_mismatch="restart",
        )
        assert ckpt.completed_starts == []
        assert ckpt.resumed_starts == frozenset()
        # the stale file is replaced on the next flush
        ckpt.record_block(16, np.array([9.0, 9.0]))
        reread = SweepCheckpoint.open(
            path, fingerprint="new-sweep", n=40, k=2, block_rows=16
        )
        assert reread.completed_starts == [16]

    def test_corrupt_file_is_a_checkpoint_error(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        path.write_bytes(b"not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            SweepCheckpoint.open(
                path, fingerprint="fp", n=40, k=2, block_rows=16
            )

    def test_invalid_on_mismatch_value(self, tmp_path) -> None:
        with pytest.raises(ValidationError, match="on_mismatch"):
            SweepCheckpoint.open(
                tmp_path / "c.npz",
                fingerprint="fp",
                n=4,
                k=1,
                block_rows=2,
                on_mismatch="ignore",
            )


class TestDiscard:
    def test_discard_removes_file_and_state(self, tmp_path) -> None:
        path = tmp_path / "sweep.ckpt.npz"
        ckpt = SweepCheckpoint.open(
            path, fingerprint="fp", n=40, k=1, block_rows=16
        )
        ckpt.record_block(0, np.array([4.0]))
        assert path.exists()
        ckpt.discard()
        assert not path.exists()
        assert ckpt.completed_starts == []

    def test_discard_without_file_is_safe(self) -> None:
        ckpt = SweepCheckpoint.open(
            None, fingerprint="fp", n=4, k=1, block_rows=2
        )
        ckpt.discard()  # must not raise
