"""Unit tests for the retry policy and the retry loop."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ValidationError,
    WorkerCrashError,
    error_code,
)
from repro.resilience.degrade import is_retryable
from repro.resilience.policy import (
    RetryBudgetExceeded,
    RetryPolicy,
    describe_policy,
    run_with_retry,
)


class TestPolicy:
    def test_defaults_valid(self) -> None:
        policy = RetryPolicy()
        assert policy.max_retries == 2

    def test_validation(self) -> None:
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(block_timeout=0.0)

    def test_delays_exponential_and_capped(self) -> None:
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, multiplier=2.0, max_delay=0.35, jitter=0.0
        )
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.35, 0.35, 0.35])

    def test_jitter_is_deterministic(self) -> None:
        policy = RetryPolicy(max_retries=4, jitter=0.5, seed=3)
        assert policy.delays() == policy.delays()

    def test_jitter_seed_changes_schedule(self) -> None:
        a = RetryPolicy(max_retries=4, jitter=0.5, seed=3).delays()
        b = RetryPolicy(max_retries=4, jitter=0.5, seed=4).delays()
        assert a != b

    def test_describe_roundtrip(self) -> None:
        policy = RetryPolicy(max_retries=7, block_timeout=1.5)
        snap = describe_policy(policy)
        assert snap["max_retries"] == 7
        assert snap["block_timeout"] == 1.5


class TestRunWithRetry:
    def _flaky(self, failures: int):
        calls = {"n": 0}

        def work() -> str:
            calls["n"] += 1
            if calls["n"] <= failures:
                raise WorkerCrashError(f"boom {calls['n']}")
            return "ok"

        return work, calls

    def test_succeeds_after_transients(self) -> None:
        work, calls = self._flaky(failures=2)
        slept: list[float] = []
        result = run_with_retry(
            work,
            policy=RetryPolicy(max_retries=3, base_delay=0.01, jitter=0.0),
            retryable=is_retryable,
            sleep=slept.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_budget_exhaustion_wraps_last_error(self) -> None:
        work, _ = self._flaky(failures=10)
        with pytest.raises(RetryBudgetExceeded) as info:
            run_with_retry(
                work,
                policy=RetryPolicy(max_retries=2, base_delay=0.0),
                retryable=is_retryable,
                sleep=lambda _s: None,
            )
        assert error_code(info.value) == "REPRO_RETRY_EXHAUSTED"
        assert isinstance(info.value.__cause__, WorkerCrashError)

    def test_non_retryable_propagates_immediately(self) -> None:
        calls = {"n": 0}

        def work() -> None:
            calls["n"] += 1
            raise ValidationError("bad input")

        with pytest.raises(ValidationError):
            run_with_retry(
                work,
                policy=RetryPolicy(max_retries=5, base_delay=0.0),
                retryable=is_retryable,
                sleep=lambda _s: None,
            )
        assert calls["n"] == 1

    def test_on_retry_sees_each_failure(self) -> None:
        work, _ = self._flaky(failures=2)
        seen: list[int] = []
        run_with_retry(
            work,
            policy=RetryPolicy(max_retries=3, base_delay=0.0),
            retryable=is_retryable,
            on_retry=lambda exc, attempt: seen.append(attempt),
            sleep=lambda _s: None,
        )
        assert seen == [1, 2]

    def test_zero_retries_fails_fast(self) -> None:
        work, calls = self._flaky(failures=1)
        with pytest.raises(RetryBudgetExceeded):
            run_with_retry(
                work,
                policy=RetryPolicy(max_retries=0),
                retryable=is_retryable,
                sleep=lambda _s: None,
            )
        assert calls["n"] == 1
