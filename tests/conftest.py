"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide seeded generator for ad-hoc draws."""
    return np.random.default_rng(20170529)


@pytest.fixture(scope="session")
def paper_sample_small():
    """A small paper-DGP sample (n=60) for exact/slow reference paths."""
    return paper_dgp(60, seed=101)


@pytest.fixture(scope="session")
def paper_sample_medium():
    """A medium paper-DGP sample (n=400) for vectorised paths."""
    return paper_dgp(400, seed=202)


@pytest.fixture(scope="session")
def small_grid(paper_sample_small) -> BandwidthGrid:
    """Paper-default grid (k=8) over the small sample."""
    return BandwidthGrid.for_sample(paper_sample_small.x, 8)


@pytest.fixture(scope="session")
def medium_grid(paper_sample_medium) -> BandwidthGrid:
    """Paper-default grid (k=25) over the medium sample."""
    return BandwidthGrid.for_sample(paper_sample_medium.x, 25)
