"""Compiled-engine unit wall: kernel source, warm-up, capability probe.

The kernels in :mod:`repro.compiled.kernels` are *dual-use*: plain-Python
executable (so this file can prove the algorithm byte-identical to the
vectorised numpy reference on an interpreter without numba) and
numba-jittable unchanged (the CI compiled leg proves the jitted bits).
Everything here runs on whatever implementation the process probed — the
assertions are implementation-independent by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiled import api, kernels
from repro.compiled.capability import Capability, probe
from repro.core.fastgrid import _window_sums_for_block
from repro.exceptions import CompiledUnavailableError, ValidationError
from repro.kernels import fast_grid_kernels, get_kernel
from repro.obs import Tracer, span_tree, use_tracer


def _case(n: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(0.0, 1.0, n))
    y = np.sin(5.0 * x) + rng.normal(0.0, 0.2, n)
    spread = float(x[-1] - x[0])
    grid = np.linspace(0.03 * spread, 0.8 * spread, k)
    return x, y, grid


class TestKernelSourceByteIdentity:
    """The scalar-loop source vs the vectorised reference, direct call."""

    @pytest.mark.parametrize("kernel", sorted(fast_grid_kernels()))
    @pytest.mark.parametrize("seed", (0, 3, 11))
    def test_plain_python_f64_matches_numpy_reference(self, kernel, seed):
        x, y, grid = _case(40, 7, seed)
        kern = get_kernel(kernel)
        ref_num, ref_den = _window_sums_for_block(
            x[10:25], x, y, grid, kern, np.dtype(np.float64)
        )
        num = np.zeros_like(ref_num)
        den = np.zeros_like(ref_den)
        terms = kern.poly_terms or ()
        kernels.window_sums_f64(
            x[10:25], x, y, grid * kern.support_radius, grid,
            np.array([t.power for t in terms], dtype=np.int64),
            np.array([t.coefficient for t in terms], dtype=np.float64),
            num, den,
        )
        assert num.tobytes() == ref_num.tobytes()
        assert den.tobytes() == ref_den.tobytes()

    @pytest.mark.parametrize("kernel", sorted(fast_grid_kernels()))
    def test_plain_python_f32_matches_numpy_reference(self, kernel):
        x, y, grid = _case(36, 6, seed=7)
        kern = get_kernel(kernel)
        ref_num, ref_den = _window_sums_for_block(
            x[:18], x, y, grid, kern, np.dtype(np.float32)
        )
        num = np.zeros_like(ref_num)
        den = np.zeros_like(ref_den)
        terms = kern.poly_terms or ()
        kernels.window_sums_f32(
            x[:18], x, y, grid * kern.support_radius, grid,
            np.array([t.power for t in terms], dtype=np.int64),
            np.array([t.coefficient for t in terms], dtype=np.float64),
            num, den,
        )
        # The *documented* float32 contract is rtol=1e-5 (headroom for a
        # future JIT with fused multiplies); the shared square-and-multiply
        # chain makes the match exact in practice, so pin the bits here.
        assert num.tobytes() == ref_num.tobytes()
        assert den.tobytes() == ref_den.tobytes()

    def test_window_sums_dispatch_matches_reference(self):
        x, y, grid = _case(30, 5, seed=1)
        kern = get_kernel("epanechnikov")
        ref = _window_sums_for_block(
            x[5:20], x, y, grid, kern, np.dtype(np.float64)
        )
        got = api.window_sums(x[5:20], x, y, grid, kern, np.dtype(np.float64))
        assert got[0].tobytes() == ref[0].tobytes()
        assert got[1].tobytes() == ref[1].tobytes()


class TestWarmup:
    @pytest.fixture(autouse=True)
    def fresh_state(self):
        api.refresh()
        yield
        api.refresh()

    def test_warmup_emits_one_span_per_dtype_and_is_idempotent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            impl = api.warmup("float64")
            api.warmup("float64")  # second call must be a no-op
            api.warmup("float32")
        names = [rec.name for rec, _depth in span_tree(tracer)]
        assert names.count("compiled.jit_warmup") == 2
        assert impl in ("numba", "numpy")

    def test_warmup_span_appears_even_on_fallback(self):
        api.refresh(importer=_raise_import_error)
        tracer = Tracer()
        with use_tracer(tracer):
            impl = api.warmup("float64")
        assert impl == "numpy"
        spans = [rec for rec, _d in span_tree(tracer)]
        warm = [s for s in spans if s.name == "compiled.jit_warmup"]
        assert len(warm) == 1
        assert warm[0].attributes["implementation"] == "numpy"

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValidationError, match="float32/float64"):
            api.warmup("int64")
        with pytest.raises(ValidationError):
            api.warmup("float16")

    @pytest.mark.perf
    def test_warmup_never_nested_under_a_block_span(self):
        """JIT latency must land in its own span, not a per-block one.

        The overhead guard: ``cv_scores_compiled`` warms before the sweep
        opens, so no ``compiled.jit_warmup`` record may have a ``block``
        or ``compiled.block`` ancestor — otherwise the first block's
        timing (and its retry deadline under resilience) would silently
        absorb compilation time.
        """
        x, y, grid = _case(40, 6, seed=2)
        tracer = Tracer()
        with use_tracer(tracer):
            api.cv_scores_compiled(x, y, grid, "epanechnikov")
        stack: list[tuple[int, str]] = []
        for rec, depth in span_tree(tracer):
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if rec.name == "compiled.jit_warmup":
                ancestors = {name for _d, name in stack}
                assert "block" not in ancestors
                assert "compiled.block" not in ancestors
            stack.append((depth, rec.name))
        names = [rec.name for rec, _d in span_tree(tracer)]
        assert "compiled.jit_warmup" in names


def _raise_import_error(name: str):
    raise ImportError(f"simulated absence of {name!r}")


class TestCapabilityProbe:
    def test_probe_with_working_importer(self):
        fake_numba = type("FakeNumba", (), {"__version__": "9.9.9"})()
        cap = probe(importer=lambda _name: fake_numba, env={})
        assert cap == Capability(
            available=True,
            implementation="numba",
            reason="numba 9.9.9",
            numba_version="9.9.9",
        )

    def test_probe_with_failing_importer_preserves_reason(self):
        cap = probe(importer=_raise_import_error, env={})
        assert not cap.available
        assert cap.implementation == "numpy"
        assert "simulated absence" in cap.reason

    @pytest.mark.parametrize("value", ("0", "false", "OFF", " no "))
    def test_env_gate_disables_without_importing(self, value):
        def explode(name: str):  # the gate must short-circuit the import
            raise AssertionError("importer must not be called")

        cap = probe(importer=explode, env={"REPRO_COMPILED": value})
        assert not cap.available
        assert "REPRO_COMPILED" in cap.reason

    @pytest.mark.parametrize("value", ("", "1", "yes", "anything"))
    def test_other_env_values_probe_normally(self, value):
        cap = probe(
            importer=lambda _name: type("N", (), {"__version__": "1"})(),
            env={"REPRO_COMPILED": value},
        )
        assert cap.available

    def test_require_available_raises_typed_error_on_fallback(self):
        api.refresh(importer=_raise_import_error)
        try:
            with pytest.raises(CompiledUnavailableError) as excinfo:
                api.require_available()
            assert excinfo.value.code == "REPRO_COMPILED_UNAVAILABLE"
        finally:
            api.refresh()
