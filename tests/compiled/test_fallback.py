"""Fallback-leg proof: the compiled engine without numba is still exact.

This file is the half of the two-leg CI matrix that runs *without* numba
installed (and, via ``api.refresh(importer=...)``, simulates that state
even when numba is present): the ``compiled``/``blocked-compiled``
backends must keep resolving, produce byte-identical float64 curves, and
share warm serving-cache entries with the numpy family — so a replica
that loses its JIT never recomputes, and never serves different bits.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.compiled  # noqa: F401  (registers the compiled backends)
from repro.compiled import api
from repro.core.api import select_bandwidth
from repro.core.backends import get_backend
from repro.exceptions import CompiledUnavailableError
from repro.serving.cache import ArtifactCache, canonical_backend


def _raise_import_error(name: str):
    raise ImportError(f"simulated absence of {name!r}")


@pytest.fixture
def sample():
    rng = np.random.default_rng(11)
    x = np.sort(rng.uniform(0.0, 1.0, 120))
    y = np.sin(4.0 * x) + rng.normal(0.0, 0.25, 120)
    return x, y


@pytest.fixture(autouse=True)
def restore_capability():
    """Every test leaves the process on its genuinely probed capability."""
    yield
    api.refresh()


class TestSimulatedNumbaAbsence:
    def test_refresh_with_failing_importer_selects_numpy(self):
        cap = api.refresh(importer=_raise_import_error)
        assert not cap.available
        assert api.implementation() == "numpy"
        assert not api.jit_available()

    def test_backends_resolve_and_match_numpy_bitwise(self, sample):
        api.refresh(importer=_raise_import_error)
        x, y = sample
        grid = np.linspace(0.05, 0.6, 24)
        ref = get_backend("numpy")(x, y, grid, "epanechnikov")
        comp = get_backend("compiled")(x, y, grid, "epanechnikov")
        blk = get_backend("blocked-compiled")(
            x, y, grid, "epanechnikov", block_rows=17
        )
        assert comp.tobytes() == ref.tobytes()
        assert blk.tobytes() == ref.tobytes()

    def test_cv_scores_compiled_matches_reference_on_fallback(self, sample):
        from repro.core.fastgrid import cv_scores_fastgrid

        api.refresh(importer=_raise_import_error)
        x, y = sample
        grid = np.linspace(0.05, 0.6, 16)
        got = api.cv_scores_compiled(x, y, grid, "triweight")
        ref = cv_scores_fastgrid(x, y, grid, "triweight")
        assert got.tobytes() == ref.tobytes()

    def test_require_available_raises_typed_error(self):
        api.refresh(importer=_raise_import_error)
        with pytest.raises(CompiledUnavailableError) as excinfo:
            api.require_available()
        assert excinfo.value.code == "REPRO_COMPILED_UNAVAILABLE"


class TestEnvGate:
    def test_repro_compiled_zero_forces_numpy(self):
        cap = api.refresh(env={"REPRO_COMPILED": "0"})
        assert not cap.available
        assert "REPRO_COMPILED" in cap.reason
        assert api.implementation() == "numpy"

    def test_gated_selection_still_works(self, sample):
        api.refresh(env={"REPRO_COMPILED": "0"})
        x, y = sample
        result = select_bandwidth(
            x, y, backend="compiled", n_bandwidths=12
        )
        ref = select_bandwidth(x, y, backend="numpy", n_bandwidths=12)
        assert result.scores.tobytes() == ref.scores.tobytes()
        assert result.bandwidth == pytest.approx(ref.bandwidth, abs=0.0)


class TestServingCacheFamily:
    """compiled and numpy share one fingerprint family — warm entries
    written by either implementation serve the other, byte for byte."""

    def test_canonical_backend_mapping(self):
        assert canonical_backend("compiled") == "numpy"
        assert canonical_backend("blocked-compiled") == "blocked"
        # Existing names must keep their own keys (on-disk caches!).
        for name in ("numpy", "blocked", "gpusim", "multicore"):
            assert canonical_backend(name) == name

    def test_warm_compiled_entry_hits_under_numpy(self, sample):
        x, y = sample
        cache = ArtifactCache(None)
        cold = select_bandwidth(
            x, y, backend="compiled", n_bandwidths=10, cache=cache
        )
        assert cold.diagnostics.get("cache") != "hit"
        warm = select_bandwidth(
            x, y, backend="numpy", n_bandwidths=10, cache=cache
        )
        assert warm.diagnostics["cache"] == "hit"
        assert warm.scores.tobytes() == cold.scores.tobytes()
        assert warm.bandwidth == pytest.approx(cold.bandwidth, abs=0.0)

    def test_warm_numpy_entry_hits_under_fallback_compiled(self, sample):
        """The real deployment story: a numba-less replica inherits the
        warm cache of a jitted one and must hit, not recompute."""
        x, y = sample
        cache = ArtifactCache(None)
        cold = select_bandwidth(
            x, y, backend="numpy", n_bandwidths=10, cache=cache
        )
        api.refresh(importer=_raise_import_error)
        warm = select_bandwidth(
            x, y, backend="compiled", n_bandwidths=10, cache=cache
        )
        assert warm.diagnostics["cache"] == "hit"
        assert warm.scores.tobytes() == cold.scores.tobytes()

    def test_blocked_family_shares_entries_too(self, sample):
        x, y = sample
        cache = ArtifactCache(None)
        cold = select_bandwidth(
            x, y, backend="blocked-compiled", n_bandwidths=10, cache=cache
        )
        warm = select_bandwidth(
            x, y, backend="blocked", n_bandwidths=10, cache=cache
        )
        assert warm.diagnostics["cache"] == "hit"
        assert warm.scores.tobytes() == cold.scores.tobytes()

    def test_distinct_backends_do_not_cross_hit(self, sample):
        """gpusim accumulates in float32 — it must never share a key."""
        x, y = sample
        cache = ArtifactCache(None)
        select_bandwidth(
            x, y, backend="compiled", n_bandwidths=10, cache=cache
        )
        other = select_bandwidth(
            x, y, backend="gpusim", n_bandwidths=10, cache=cache
        )
        assert other.diagnostics.get("cache") != "hit"
