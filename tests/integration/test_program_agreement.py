"""Integration: the paper's §IV-C cross-checks, end to end.

"The sequential C code and the CUDA code were checked against each other
to ensure that they produced identical results under many different sets
of inputs" — here across every backend, several DGPs, kernels, and seeds;
plus the R-program analogue landing in the same bandwidth range.
"""

import numpy as np
import pytest

from repro.core import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    select_bandwidth,
)
from repro.core.grid import BandwidthGrid
from repro.data import generate

BACKENDS = ("numpy", "python", "multicore", "gpusim")


class TestBackendAgreement:
    @pytest.mark.parametrize("dgp", ["paper", "sine", "heteroskedastic"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_backends_same_scores(self, dgp, seed):
        sample = generate(dgp, 150, seed=seed)
        grid = BandwidthGrid.for_sample(sample.x, 12)
        scores = {}
        for backend in BACKENDS:
            res = GridSearchSelector(grid=grid, backend=backend).select(
                sample.x, sample.y
            )
            scores[backend] = res.scores
            assert res.bandwidth in grid.values
        for backend in BACKENDS[1:]:
            np.testing.assert_allclose(
                scores[backend], scores["numpy"], rtol=5e-4,
                err_msg=f"{backend} disagrees on {dgp}/{seed}",
            )

    @pytest.mark.parametrize("kernel", ["epanechnikov", "uniform", "biweight"])
    def test_gpusim_matches_numpy_across_kernels(self, kernel):
        sample = generate("paper", 120, seed=3)
        grid = BandwidthGrid.for_sample(sample.x, 10)
        a = GridSearchSelector(grid=grid, backend="numpy", kernel=kernel).select(
            sample.x, sample.y
        )
        b = GridSearchSelector(grid=grid, backend="gpusim", kernel=kernel).select(
            sample.x, sample.y
        )
        assert a.bandwidth == pytest.approx(b.bandwidth)
        np.testing.assert_allclose(a.scores, b.scores, rtol=5e-4)


class TestOptimiserConsistency:
    """§IV-C: 'verify that both R programs produced optimal bandwidths in
    similar ranges to what was obtained from the C and CUDA code'."""

    def test_numeric_optimum_in_grid_optimum_range(self):
        sample = generate("paper", 600, seed=10)
        grid_res = GridSearchSelector(n_bandwidths=100).select(sample.x, sample.y)
        num_res = NumericalOptimizationSelector(
            n_restarts=3, seed=0, maxiter=120
        ).select(sample.x, sample.y)
        # Same order of magnitude and CV values within a few percent.
        ratio = num_res.bandwidth / grid_res.bandwidth
        assert 0.2 < ratio < 5.0
        assert num_res.score <= grid_res.score * 1.05

    def test_grid_scores_are_global_on_grid(self):
        # The grid search must return the global grid minimum, which the
        # optimiser cannot beat when constrained to the same grid points.
        sample = generate("sine", 400, seed=4)
        res = GridSearchSelector(n_bandwidths=60).select(sample.x, sample.y)
        assert res.score == pytest.approx(res.scores.min())


class TestEndToEndWorkflow:
    def test_select_fit_predict_roundtrip(self):
        from repro.regression import NadarayaWatson

        sample = generate("paper", 800, seed=12)
        result = select_bandwidth(sample.x, sample.y, n_bandwidths=50)
        model = NadarayaWatson(bandwidth=result.bandwidth).fit(sample.x, sample.y)
        at = np.linspace(0.1, 0.9, 9)
        rmse = np.sqrt(np.mean((model.predict(at) - sample.true_mean(at)) ** 2))
        assert rmse < 0.2

    def test_float32_gpu_choice_close_to_float64_choice(self):
        sample = generate("paper", 500, seed=13)
        grid = BandwidthGrid.for_sample(sample.x, 50)
        a = select_bandwidth(sample.x, sample.y, grid=grid, backend="numpy")
        b = select_bandwidth(sample.x, sample.y, grid=grid, backend="gpusim")
        # float32 rounding may shift the argmin by at most one grid step.
        assert abs(a.bandwidth - b.bandwidth) <= grid.spacing + 1e-12
