"""Integration: every example script must run cleanly end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_mentions_bandwidth():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "h*" in proc.stdout
    assert "RMSE" in proc.stdout
