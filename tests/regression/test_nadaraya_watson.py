"""Tests for the Nadaraya–Watson estimator."""

import numpy as np
import pytest

from repro.core.selectors import RuleOfThumbSelector
from repro.data import linear_dgp, paper_dgp
from repro.exceptions import SelectionError, ValidationError
from repro.regression import NadarayaWatson, nw_estimate


class TestNwEstimate:
    def test_weighted_average_by_hand(self):
        # Uniform kernel, h=1: estimate at 0.5 averages all y with |dx|<=1.
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([3.0, 6.0, 9.0])
        est, valid = nw_estimate(x, y, np.array([0.5]), 1.0, "uniform")
        assert est[0] == pytest.approx(6.0)
        assert valid[0]

    def test_empty_window_is_nan_invalid(self):
        x = np.array([0.0, 0.1, 0.2])
        y = np.array([1.0, 2.0, 3.0])
        est, valid = nw_estimate(x, y, np.array([5.0]), 0.5)
        assert np.isnan(est[0])
        assert not valid[0]

    def test_interpolates_constant_function(self):
        x = np.linspace(0, 1, 50)
        y = np.full(50, 7.0)
        est, _ = nw_estimate(x, y, np.linspace(0.1, 0.9, 9), 0.3)
        np.testing.assert_allclose(est, 7.0)

    def test_estimate_is_convex_combination(self, rng):
        x = rng.uniform(0, 1, 100)
        y = rng.normal(0, 1, 100)
        est, valid = nw_estimate(x, y, np.linspace(0, 1, 11), 0.2)
        assert (est[valid] >= y.min() - 1e-12).all()
        assert (est[valid] <= y.max() + 1e-12).all()

    def test_bandwidth_must_be_positive(self):
        x = np.array([0.0, 0.5, 1.0])
        with pytest.raises(ValidationError):
            nw_estimate(x, x, x, -0.1)

    def test_chunking_invariance(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0, 1, 200)
        a, _ = nw_estimate(s.x, s.y, at, 0.1)
        b, _ = nw_estimate(s.x, s.y, at, 0.1, chunk_rows=13)
        np.testing.assert_allclose(a, b)


class TestNadarayaWatsonModel:
    def test_fit_selects_bandwidth(self, paper_sample_medium):
        s = paper_sample_medium
        model = NadarayaWatson(n_bandwidths=20).fit(s.x, s.y)
        assert model.bandwidth is not None
        assert model.selection_ is not None
        assert model.selection_.method == "grid-search"

    def test_fixed_bandwidth_skips_selection(self, paper_sample_medium):
        s = paper_sample_medium
        model = NadarayaWatson(bandwidth=0.15).fit(s.x, s.y)
        assert model.bandwidth == 0.15
        assert model.selection_ is None

    def test_custom_selector_used(self, paper_sample_medium):
        s = paper_sample_medium
        model = NadarayaWatson(selector=RuleOfThumbSelector()).fit(s.x, s.y)
        assert model.selection_.method == "rule-of-thumb"

    def test_predict_before_fit_raises(self):
        with pytest.raises(SelectionError, match="not fitted"):
            NadarayaWatson(bandwidth=0.1).predict(np.array([0.5]))

    def test_predict_tracks_truth(self):
        s = paper_dgp(3000, seed=8)
        model = NadarayaWatson(n_bandwidths=50).fit(s.x, s.y)
        at = np.linspace(0.1, 0.9, 17)
        rmse = np.sqrt(np.mean((model.predict(at) - s.true_mean(at)) ** 2))
        assert rmse < 0.1

    def test_loo_fitted_values_match_loocv_module(self, paper_sample_small):
        from repro.core.loocv import loo_estimates

        s = paper_sample_small
        model = NadarayaWatson(bandwidth=0.2).fit(s.x, s.y)
        got, mask = model.loo_fitted_values()
        expected, expected_mask = loo_estimates(s.x, s.y, 0.2)
        np.testing.assert_allclose(got[mask], expected[expected_mask])

    def test_cv_score_consistency(self, paper_sample_small):
        from repro.core.loocv import cv_score

        s = paper_sample_small
        model = NadarayaWatson(bandwidth=0.2).fit(s.x, s.y)
        assert model.cv_score() == pytest.approx(cv_score(s.x, s.y, 0.2))

    def test_r_squared_high_on_strong_signal(self):
        s = linear_dgp(1000, noise=0.05, seed=2)
        model = NadarayaWatson(n_bandwidths=30).fit(s.x, s.y)
        assert model.r_squared() > 0.95

    def test_residuals_shape(self, paper_sample_medium):
        s = paper_sample_medium
        model = NadarayaWatson(bandwidth=0.1).fit(s.x, s.y)
        assert model.residuals().shape == (s.n,)

    def test_nonpositive_fixed_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            NadarayaWatson(bandwidth=0.0)

    def test_predict_with_validity(self, paper_sample_medium):
        s = paper_sample_medium
        model = NadarayaWatson(bandwidth=0.05).fit(s.x, s.y)
        est, valid = model.predict_with_validity(np.array([0.5, 40.0]))
        assert valid[0] and not valid[1]
        assert np.isnan(est[1])
