"""Tests for the local linear estimator."""

import numpy as np
import pytest

from repro.data import heteroskedastic_dgp, linear_dgp
from repro.exceptions import SelectionError, ValidationError
from repro.regression import LocalLinear, local_linear_estimate, nw_estimate


class TestLocalLinearEstimate:
    def test_reproduces_exact_line(self):
        # A local linear fit of noiseless linear data is exact at every
        # point and every bandwidth — the defining property.
        x = np.linspace(0, 1, 60)
        y = 2.0 + 3.0 * x
        at = np.linspace(0.05, 0.95, 7)
        est, valid = local_linear_estimate(x, y, at, 0.3)
        assert valid.all()
        np.testing.assert_allclose(est, 2.0 + 3.0 * at, rtol=1e-10)

    def test_boundary_bias_smaller_than_nw(self):
        # Noiseless steep line: NW flattens at the boundary, LL does not.
        x = np.linspace(0, 1, 200)
        y = 5.0 * x
        at = np.array([0.0])
        ll, _ = local_linear_estimate(x, y, at, 0.2)
        nw, _ = nw_estimate(x, y, at, 0.2)
        assert abs(ll[0] - 0.0) < 1e-9
        assert abs(nw[0] - 0.0) > 0.1

    def test_empty_window_invalid(self):
        x = np.array([0.0, 0.1, 0.2])
        y = np.array([1.0, 2.0, 3.0])
        est, valid = local_linear_estimate(x, y, np.array([9.0]), 0.5)
        assert not valid[0] and np.isnan(est[0])

    def test_singular_window_detected(self):
        # All in-window x identical: slope unidentified.
        x = np.array([0.5, 0.5, 0.5, 2.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        est, valid = local_linear_estimate(x, y, np.array([0.5]), 0.3)
        assert not valid[0]

    def test_bandwidth_validation(self):
        x = np.linspace(0, 1, 10)
        with pytest.raises(ValidationError):
            local_linear_estimate(x, x, x, 0.0)

    def test_chunking_invariance(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0, 1, 101)
        a, _ = local_linear_estimate(s.x, s.y, at, 0.15)
        b, _ = local_linear_estimate(s.x, s.y, at, 0.15, chunk_rows=9)
        np.testing.assert_allclose(a, b)


class TestLocalLinearModel:
    def test_fit_predict_workflow(self):
        s = heteroskedastic_dgp(600, seed=4)
        model = LocalLinear(n_bandwidths=25).fit(s.x, s.y)
        at = np.linspace(0.1, 0.9, 9)
        rmse = np.sqrt(np.nanmean((model.predict(at) - s.true_mean(at)) ** 2))
        assert rmse < 0.15

    def test_fixed_bandwidth(self):
        s = linear_dgp(100, seed=0)
        model = LocalLinear(bandwidth=0.4).fit(s.x, s.y)
        assert model.bandwidth == 0.4

    def test_unfitted_raises(self):
        with pytest.raises(SelectionError):
            LocalLinear(bandwidth=0.2).predict(np.array([0.1]))

    def test_residuals_near_zero_for_noiseless_line(self):
        x = np.linspace(0, 1, 80)
        y = 1.0 - 2.0 * x
        model = LocalLinear(bandwidth=0.3).fit(x, y)
        assert np.abs(model.residuals()).max() < 1e-9

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            LocalLinear(bandwidth=-1.0)
