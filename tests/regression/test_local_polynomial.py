"""Tests for general-degree local polynomial regression."""

import numpy as np
import pytest

from repro.data import sine_dgp
from repro.exceptions import SelectionError, ValidationError
from repro.regression import (
    LocalPolynomial,
    local_linear_estimate,
    local_polynomial_estimate,
    nw_estimate,
)


class TestDegreeConsistency:
    def test_degree0_equals_nadaraya_watson(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0.1, 0.9, 9)
        lp, lp_ok = local_polynomial_estimate(s.x, s.y, at, 0.2, degree=0)
        nw, nw_ok = nw_estimate(s.x, s.y, at, 0.2)
        np.testing.assert_allclose(lp[lp_ok], nw[nw_ok], rtol=1e-9)

    def test_degree1_equals_local_linear(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0.1, 0.9, 9)
        lp, _ = local_polynomial_estimate(s.x, s.y, at, 0.2, degree=1)
        ll, _ = local_linear_estimate(s.x, s.y, at, 0.2)
        np.testing.assert_allclose(lp, ll, rtol=1e-6)

    def test_degree2_exact_on_quadratic(self):
        x = np.linspace(0, 1, 80)
        y = 1.0 + 2.0 * x - 5.0 * x**2
        at = np.linspace(0.05, 0.95, 7)
        est, valid = local_polynomial_estimate(x, y, at, 0.3, degree=2)
        assert valid.all()
        np.testing.assert_allclose(est, 1.0 + 2.0 * at - 5.0 * at**2, atol=1e-8)

    def test_degree2_less_peak_bias_than_linear(self):
        # At the peak of a sine, local linear attenuates; quadratic does not.
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 4000)
        y = np.sin(np.pi * x) + rng.normal(0, 0.1, 4000)
        at = np.array([0.5])  # the peak
        h = 0.25
        ll, _ = local_polynomial_estimate(x, y, at, h, degree=1)
        lq, _ = local_polynomial_estimate(x, y, at, h, degree=2)
        assert abs(lq[0] - 1.0) < abs(ll[0] - 1.0)


class TestDerivatives:
    def test_derivatives_of_known_quadratic(self):
        x = np.linspace(0, 1, 100)
        y = 3.0 * x**2
        at = np.array([0.5])
        der, valid = local_polynomial_estimate(
            x, y, at, 0.3, degree=2, return_derivatives=True
        )
        assert valid[0]
        np.testing.assert_allclose(der[0], [0.75, 3.0, 6.0], atol=1e-4)


class TestRobustness:
    def test_empty_window_invalid(self):
        x = np.array([0.0, 0.1, 0.2])
        y = np.array([1.0, 2.0, 3.0])
        est, valid = local_polynomial_estimate(x, y, np.array([9.0]), 0.3, degree=2)
        assert not valid[0]
        assert np.isnan(est[0])

    def test_underdetermined_window_flagged(self):
        # Two distinct in-window X values cannot identify a quadratic.
        x = np.array([0.5, 0.5, 0.6, 5.0])
        y = np.array([1.0, 1.1, 2.0, 0.0])
        est, valid = local_polynomial_estimate(
            x, y, np.array([0.55]), 0.2, degree=3
        )
        # Either flagged invalid or solved by the ridge to something sane.
        if valid[0]:
            assert abs(est[0]) < 100.0

    def test_bandwidth_validated(self):
        x = np.linspace(0, 1, 10)
        with pytest.raises(ValidationError):
            local_polynomial_estimate(x, x, x, -0.1)

    def test_chunking_invariance(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0, 1, 50)
        a, _ = local_polynomial_estimate(s.x, s.y, at, 0.2, degree=2)
        b, _ = local_polynomial_estimate(
            s.x, s.y, at, 0.2, degree=2, chunk_rows=7
        )
        np.testing.assert_allclose(a, b, rtol=1e-10)


class TestModelInterface:
    def test_fit_predict(self):
        s = sine_dgp(500, seed=1)
        model = LocalPolynomial(degree=2, n_bandwidths=25).fit(s.x, s.y)
        at = np.linspace(0.2, 0.8, 7)
        rmse = np.sqrt(np.nanmean((model.predict(at) - s.true_mean(at)) ** 2))
        assert rmse < 0.25

    def test_fixed_bandwidth(self, paper_sample_small):
        s = paper_sample_small
        model = LocalPolynomial(degree=2, bandwidth=0.3).fit(s.x, s.y)
        assert model.bandwidth == 0.3

    def test_derivatives_method(self):
        x = np.linspace(0, 1, 200)
        y = x**2
        model = LocalPolynomial(degree=2, bandwidth=0.3).fit(x, y)
        der = model.derivatives(np.array([0.5]))
        np.testing.assert_allclose(der[0, 1], 1.0, atol=1e-6)  # g' = 2x

    def test_unfitted_raises(self):
        with pytest.raises(SelectionError):
            LocalPolynomial(bandwidth=0.2).predict(np.array([0.5]))

    def test_negative_degree_rejected(self):
        with pytest.raises(ValidationError):
            LocalPolynomial(degree=-1)
