"""Tests for the LOO-CV confidence bands."""

import numpy as np
import pytest

from repro.data import linear_dgp, paper_dgp
from repro.exceptions import ValidationError
from repro.regression import loo_confidence_band


class TestBandGeometry:
    def test_band_brackets_estimate(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0.1, 0.9, 9)
        band = loo_confidence_band(s.x, s.y, at, 0.15)
        ok = band.valid
        assert (band.lower[ok] <= band.estimate[ok]).all()
        assert (band.estimate[ok] <= band.upper[ok]).all()

    def test_higher_level_widens_band(self, paper_sample_medium):
        s = paper_sample_medium
        at = np.linspace(0.2, 0.8, 7)
        b90 = loo_confidence_band(s.x, s.y, at, 0.15, level=0.90)
        b99 = loo_confidence_band(s.x, s.y, at, 0.15, level=0.99)
        assert (b99.width >= b90.width).all()

    def test_more_data_narrows_band(self):
        at = np.array([0.5])
        widths = []
        for n in (200, 2000):
            s = paper_dgp(n, seed=1)
            band = loo_confidence_band(s.x, s.y, at, 0.1)
            widths.append(band.width[0])
        assert widths[1] < widths[0]

    def test_empty_window_invalid(self):
        x = np.array([0.0, 0.1, 0.2])
        y = np.array([1.0, 2.0, 3.0])
        band = loo_confidence_band(x, y, np.array([7.0]), 0.3)
        assert not band.valid[0]
        assert np.isnan(band.lower[0])

    def test_level_validated(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError):
            loo_confidence_band(s.x, s.y, np.array([0.5]), 0.2, level=1.5)

    def test_bandwidth_validated(self, paper_sample_small):
        s = paper_sample_small
        with pytest.raises(ValidationError):
            loo_confidence_band(s.x, s.y, np.array([0.5]), -0.2)


class TestCoverage:
    def test_coverage_near_nominal_on_linear_data(self):
        # Monte Carlo: 95% pointwise bands on easy data should cover the
        # truth in the large majority of draws.
        at = np.linspace(0.2, 0.8, 13)
        hits = []
        for seed in range(30):
            s = linear_dgp(400, noise=0.3, seed=seed)
            band = loo_confidence_band(s.x, s.y, at, 0.25)
            hits.append(band.coverage_of(s.true_mean(at)))
        mean_coverage = float(np.mean(hits))
        assert mean_coverage > 0.80

    def test_coverage_shape_mismatch_rejected(self, paper_sample_small):
        s = paper_sample_small
        band = loo_confidence_band(s.x, s.y, np.array([0.4, 0.6]), 0.2)
        with pytest.raises(ValidationError):
            band.coverage_of(np.array([1.0]))

    def test_coverage_nan_when_nothing_valid(self):
        x = np.array([0.0, 0.05, 0.1])
        y = np.array([1.0, 2.0, 3.0])
        band = loo_confidence_band(x, y, np.array([9.0]), 0.2)
        assert np.isnan(band.coverage_of(np.array([0.0])))
