"""Package-level contracts: exports, versioning, documentation coverage.

Deliverable hygiene: every public item (everything reachable through a
package's ``__all__``) must carry a docstring, and every ``__all__``
entry must actually exist.
"""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.bench",
    "repro.core",
    "repro.cuda_port",
    "repro.data",
    "repro.gpusim",
    "repro.kde",
    "repro.kernels",
    "repro.multivariate",
    "repro.obs",
    "repro.parallel",
    "repro.regression",
    "repro.theory",
    "repro.utils",
]


class TestVersioning:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_module_docstring(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and mod.__doc__.strip()

    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        missing = [name for name in mod.__all__ if not hasattr(mod, name)]
        assert not missing, f"{package}.__all__ lists missing names: {missing}"

    def test_all_is_sorted_unique(self, package):
        mod = importlib.import_module(package)
        assert len(mod.__all__) == len(set(mod.__all__))

    def test_every_public_item_documented(self, package):
        mod = importlib.import_module(package)
        undocumented = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(name)
        assert not undocumented, (
            f"{package} exports undocumented items: {undocumented}"
        )

    def test_public_classes_have_documented_public_methods(self, package):
        mod = importlib.import_module(package)
        undocumented = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited (documented at the base)
                if not (inspect.getdoc(meth) or "").strip():
                    undocumented.append(f"{name}.{meth_name}")
        assert not undocumented, (
            f"{package} has undocumented public methods: {undocumented}"
        )


class TestTopLevelSurface:
    def test_headline_exports_present(self):
        for name in (
            "select_bandwidth",
            "NadarayaWatson",
            "KernelDensity",
            "GridSearchSelector",
            "BandwidthGrid",
        ):
            assert hasattr(repro, name)

    def test_quickstart_snippet_from_readme(self):
        import numpy as np

        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 300)
        y = 0.5 * x + 10 * x**2 + rng.uniform(0, 0.5, 300)
        result = repro.select_bandwidth(x, y, n_bandwidths=20)
        model = repro.NadarayaWatson(bandwidth=result.bandwidth).fit(x, y)
        curve = model.predict(np.linspace(0.1, 0.9, 11))
        assert np.isfinite(curve).all()
