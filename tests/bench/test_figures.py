"""Tests for the Figure 1 regeneration and ASCII chart."""

import pytest

from repro.bench.figures import ascii_chart, run_figure1


@pytest.fixture(scope="module")
def tiny_figure():
    return run_figure1(sizes=(50, 150), programs=("sequential-c", "cuda-gpu"), k=6)


class TestFigure1:
    def test_series_cover_all_programs_and_sizes(self, tiny_figure):
        series = tiny_figure.series
        assert set(series) == {"sequential-c", "cuda-gpu"}
        for pts in series.values():
            assert [n for n, _ in pts] == [50, 150]

    def test_measured_and_modeled_series_distinct(self, tiny_figure):
        modeled = tiny_figure.series["cuda-gpu"]
        measured = tiny_figure.measured_series["cuda-gpu"]
        assert modeled != measured

    def test_to_text_contains_chart_and_series(self, tiny_figure):
        text = tiny_figure.to_text()
        assert "FIG. 1" in text
        assert "log-log" in text
        assert "[C] sequential-c" in text
        assert "[G] cuda-gpu" in text


class TestAsciiChart:
    def test_empty_series_handled(self):
        assert "no positive data" in ascii_chart({})

    def test_markers_present(self):
        chart = ascii_chart(
            {"sequential-c": [(100, 0.1), (1000, 1.0)],
             "cuda-gpu": [(100, 0.2), (1000, 0.5)]}
        )
        assert "C" in chart and "G" in chart

    def test_single_point_no_crash(self):
        chart = ascii_chart({"cuda-gpu": [(100, 0.5)]})
        assert "G" in chart

    def test_nonpositive_values_skipped(self):
        chart = ascii_chart({"sequential-c": [(100, 0.0)], "cuda-gpu": [(10, 1.0)]})
        assert "G" in chart and "C" not in chart.splitlines()[0]
