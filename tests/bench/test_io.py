"""Tests for the bench result writers."""

import csv
import json

import pytest

from repro.bench import run_table1, run_table2
from repro.bench.io import (
    table1_rows,
    table2_rows,
    write_results_json,
    write_table1_csv,
    write_table2_csv,
)


@pytest.fixture(scope="module")
def tiny_table1():
    return run_table1(sizes=(60,), programs=("sequential-c",), k=5, seed=0)


@pytest.fixture(scope="module")
def tiny_table2():
    return run_table2(bandwidth_counts=(5, 100), sizes=(60,), seed=0)


class TestRowFlattening:
    def test_table1_row_fields(self, tiny_table1):
        rows = table1_rows(tiny_table1)
        assert len(rows) == 1
        row = rows[0]
        assert row["n"] == 60
        assert row["program"] == "sequential-c"
        assert row["measured_seconds"] > 0
        assert row["modeled_paper_machine_seconds"] > 0
        assert row["selected_bandwidth"] > 0

    def test_table2_rows_include_blanks(self, tiny_table2):
        rows = table2_rows(tiny_table2)
        by_k = {r["bandwidths"]: r for r in rows}
        assert by_k[5]["sequential_seconds"] > 0
        assert by_k[100]["sequential_seconds"] is None  # k > n


class TestCsvWriters:
    def test_table1_csv_roundtrip(self, tiny_table1, tmp_path):
        path = write_table1_csv(tiny_table1, tmp_path / "t1.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["program"] == "sequential-c"
        assert float(rows[0]["measured_seconds"]) > 0

    def test_table2_csv_roundtrip(self, tiny_table2, tmp_path):
        path = write_table2_csv(tiny_table2, tmp_path / "t2.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2

    def test_nested_directory_created(self, tiny_table1, tmp_path):
        path = write_table1_csv(tiny_table1, tmp_path / "a" / "b" / "t.csv")
        assert path.exists()


class TestJsonWriter:
    def test_bundle(self, tiny_table1, tiny_table2, tmp_path):
        path = write_results_json(
            tmp_path / "out.json",
            table1=tiny_table1,
            table2=tiny_table2,
            shape_report="SHAPE REPORT (stub)",
            metadata={"machine": "test"},
        )
        payload = json.loads(path.read_text())
        assert payload["metadata"]["machine"] == "test"
        assert payload["table1"][0]["program"] == "sequential-c"
        assert len(payload["table2"]) == 2
        assert "SHAPE" in payload["shape_report"]

    def test_partial_bundle(self, tmp_path):
        path = write_results_json(tmp_path / "partial.json", metadata={"k": 1})
        payload = json.loads(path.read_text())
        assert "table1" not in payload


class TestCliOutput:
    def test_table1_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "table1", "--sizes", "60", "--k", "5",
            "--programs", "sequential-c",
            "--output", str(tmp_path / "artifacts"),
        ])
        assert code == 0
        assert (tmp_path / "artifacts" / "table1.csv").exists()
        assert (tmp_path / "artifacts" / "table1.json").exists()

    def test_table2_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "table2", "--sizes", "60", "--bandwidths", "5",
            "--output", str(tmp_path / "artifacts"),
        ])
        assert code == 0
        assert (tmp_path / "artifacts" / "table2.csv").exists()
