"""Tests for the shape-claim checks."""

import numpy as np
import pytest

from repro.bench.report import (
    ShapeCheck,
    check_large_n_ordering,
    find_crossover,
    headline_speedup,
    k_growth_ratio,
    shape_report,
)
from repro.bench.tables import Table1Result, Table2Result


def _table1(measured=None, modeled=None):
    sizes = (100, 1000)
    programs = ("racine-hayfield", "multicore-r", "sequential-c", "cuda-gpu")
    t = Table1Result(sizes=sizes, programs=programs)
    t.measured = measured or {
        100: {"racine-hayfield": 0.05, "multicore-r": 0.5,
              "sequential-c": 0.01, "cuda-gpu": 0.02},
        1000: {"racine-hayfield": 3.0, "multicore-r": 1.2,
               "sequential-c": 0.1, "cuda-gpu": 0.08},
    }
    t.modeled = modeled or {
        100: {"racine-hayfield": 0.41, "multicore-r": 1.40,
              "sequential-c": 0.05, "cuda-gpu": 0.09},
        1000: {"racine-hayfield": 0.98, "multicore-r": 1.71,
               "sequential-c": 0.20, "cuda-gpu": 0.15},
    }
    return t


def _table2():
    t = Table2Result(bandwidth_counts=(5, 100), sizes=(100, 1000))
    t.sequential = {5: {100: 0.01, 1000: 0.20}, 100: {100: 0.011, 1000: 0.21}}
    t.cuda = {5: {100: 0.09, 1000: 0.15}, 100: {100: 0.09, 1000: 0.152}}
    return t


class TestOrdering:
    def test_pass_when_ordered(self):
        check = check_large_n_ordering(_table1(), which="measured")
        assert check.passed

    def test_fail_when_misordered(self):
        t = _table1()
        t.measured[1000]["cuda-gpu"] = 99.0
        check = check_large_n_ordering(t, which="measured")
        assert not check.passed

    def test_missing_programs_skipped(self):
        t = _table1()
        check = check_large_n_ordering(
            t, order=("racine-hayfield", "sequential-c"), which="modeled"
        )
        assert check.passed


class TestCrossover:
    def test_found_crossover(self):
        n, check = find_crossover(_table1(), "sequential-c", "cuda-gpu",
                                  which="modeled")
        assert n == 1000
        assert check.passed

    def test_no_crossover_fails(self):
        t = _table1()
        t.modeled[100]["cuda-gpu"] = 10.0
        t.modeled[1000]["cuda-gpu"] = 10.0
        n, check = find_crossover(t, "sequential-c", "cuda-gpu", which="modeled")
        assert n is None
        assert not check.passed


class TestHeadline:
    def test_speedup_computed_at_largest_n(self):
        factor, check = headline_speedup(_table1(), which="modeled")
        assert factor == pytest.approx(0.98 / 0.15, rel=1e-6)
        assert check.passed

    def test_below_2x_fails(self):
        t = _table1()
        t.modeled[1000]["cuda-gpu"] = 0.90
        _, check = headline_speedup(t, which="modeled")
        assert not check.passed


class TestKGrowth:
    def test_flat_growth_passes(self):
        for panel in ("sequential", "cuda"):
            ratio, check = k_growth_ratio(_table2(), panel=panel)
            assert ratio < 1.1
            assert check.passed

    def test_steep_growth_fails(self):
        t = _table2()
        t.sequential[100][1000] = 5.0
        _, check = k_growth_ratio(t, panel="sequential")
        assert not check.passed

    def test_insufficient_cells(self):
        t = Table2Result(bandwidth_counts=(5,), sizes=(100,))
        t.sequential = {5: {100: 0.01}}
        _, check = k_growth_ratio(t)
        assert not check.passed


class TestReport:
    def test_full_report_text(self):
        report = shape_report(_table1(), _table2())
        assert "SHAPE REPORT" in report
        assert report.count("PASS") >= 5

    def test_report_without_table2(self):
        report = shape_report(_table1())
        assert "near-flat" not in report

    def test_shapecheck_str(self):
        c = ShapeCheck(claim="x", passed=False, detail="d")
        assert str(c) == "[FAIL] x: d"
