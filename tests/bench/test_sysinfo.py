"""Tests for machine metadata capture."""

from repro.bench import machine_info


class TestMachineInfo:
    def test_required_fields_present(self):
        info = machine_info()
        for key in ("platform", "cpu_count", "python", "numpy", "scipy"):
            assert key in info, key

    def test_cpu_count_positive(self):
        assert machine_info()["cpu_count"] >= 1

    def test_json_serialisable(self):
        import json

        assert json.loads(json.dumps(machine_info()))

    def test_linux_extras_when_available(self):
        import os

        info = machine_info()
        if os.path.exists("/proc/meminfo"):
            assert info.get("mem_total_kb", 0) > 0
