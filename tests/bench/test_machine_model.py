"""Tests for the paper-machine run-time models and their calibration."""

import pytest

from repro.bench.machine_model import (
    MODELED_PROGRAMS,
    model_cuda_gpu,
    model_multicore_r,
    model_program,
    model_racine_hayfield,
    model_sequential_c,
)
from repro.bench.paper_data import PAPER_TABLE1, PAPER_TABLE2_SEQUENTIAL
from repro.exceptions import ValidationError


class TestCalibrationAgainstPaper:
    @pytest.mark.parametrize("n", [5000, 10000, 20000])
    def test_sequential_c_within_15_percent(self, n):
        assert model_sequential_c(n, 50) == pytest.approx(
            PAPER_TABLE1[n]["sequential-c"], rel=0.15
        )

    @pytest.mark.parametrize("n", [5000, 10000, 20000])
    def test_racine_hayfield_within_20_percent(self, n):
        assert model_racine_hayfield(n, 50) == pytest.approx(
            PAPER_TABLE1[n]["racine-hayfield"], rel=0.20
        )

    @pytest.mark.parametrize("n", [5000, 10000, 20000])
    def test_multicore_r_within_35_percent(self, n):
        assert model_multicore_r(n, 50) == pytest.approx(
            PAPER_TABLE1[n]["multicore-r"], rel=0.35
        )

    def test_multicore_floor_at_small_n(self):
        # Table I: ~1.4 s at n <= 1,000 regardless of n.
        assert model_multicore_r(100, 50) == pytest.approx(1.43, abs=0.15)

    def test_sequential_k_growth_mirrors_table2(self):
        # Paper: 80.24 (k=5) -> 84.11 (k=2000) at n=20,000 — under 5%.
        lo = model_sequential_c(20_000, 5)
        hi = model_sequential_c(20_000, 2000)
        assert hi > lo
        assert hi / lo < 1.06
        paper_ratio = (
            PAPER_TABLE2_SEQUENTIAL[2000][20000]
            / PAPER_TABLE2_SEQUENTIAL[5][20000]
        )
        assert hi / lo == pytest.approx(paper_ratio, abs=0.05)


class TestOrderingAndCrossovers:
    def test_full_table1_ordering_at_20000(self):
        times = [model_program(p, 20_000, 50) for p in (
            "racine-hayfield", "multicore-r", "sequential-c", "cuda-gpu")]
        assert times == sorted(times, reverse=True)

    def test_cuda_beats_sequential_only_at_scale(self):
        # Paper: crossover near n = 1,000.
        assert model_cuda_gpu(500, 50) > model_sequential_c(500, 50)
        assert model_cuda_gpu(5000, 50) < model_sequential_c(5000, 50)

    def test_multicore_beats_serial_r_only_at_scale(self):
        assert model_multicore_r(100, 50) > model_racine_hayfield(100, 50)
        assert model_multicore_r(5000, 50) < model_racine_hayfield(5000, 50)

    def test_headline_speedup_near_7x(self):
        speedup = model_racine_hayfield(20_000) / model_cuda_gpu(20_000)
        assert speedup == pytest.approx(7.2, rel=0.15)


class TestInterface:
    def test_model_program_dispatch(self):
        for name in MODELED_PROGRAMS:
            assert model_program(name, 1000, 50) > 0.0

    def test_unknown_program_rejected(self):
        with pytest.raises(ValidationError):
            model_program("rule-of-thumb", 100)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValidationError):
            model_sequential_c(1, 50)
        with pytest.raises(ValidationError):
            model_racine_hayfield(100, 0)
