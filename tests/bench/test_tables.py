"""Tests for the Table I / Table II regeneration harness (tiny sweeps)."""

import numpy as np
import pytest

from repro.bench.tables import (
    PAPER_BANDWIDTH_COUNTS,
    PAPER_SIZES,
    default_sizes,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def tiny_table1():
    return run_table1(
        sizes=(50, 150),
        programs=("sequential-c", "cuda-gpu"),
        k=8,
        seed=0,
    )


@pytest.fixture(scope="module")
def tiny_table2():
    return run_table2(bandwidth_counts=(5, 20, 100), sizes=(60, 150), seed=0)


class TestDefaults:
    def test_paper_sizes_match_corrected_table(self):
        assert PAPER_SIZES == (50, 100, 500, 1000, 5000, 10000, 20000)
        assert PAPER_BANDWIDTH_COUNTS == (5, 10, 50, 100, 500, 1000, 2000)

    def test_quick_sizes_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert max(default_sizes()) <= 2000

    def test_full_sizes_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert default_sizes() == PAPER_SIZES

    def test_explicit_full_argument(self):
        assert default_sizes(full=True) == PAPER_SIZES


class TestTable1Harness:
    def test_measured_and_modeled_rows_populated(self, tiny_table1):
        for n in (50, 150):
            assert set(tiny_table1.measured[n]) == {"sequential-c", "cuda-gpu"}
            assert set(tiny_table1.modeled[n]) == {"sequential-c", "cuda-gpu"}
            for v in tiny_table1.measured[n].values():
                assert v > 0

    def test_grid_capped_at_n(self):
        table = run_table1(sizes=(5,), programs=("sequential-c",), k=50, seed=0)
        run = table.runs[(5, "sequential-c")]
        assert run.k == 5  # "never exceeding the number of observations"

    def test_speedup_accessor(self, tiny_table1):
        s = tiny_table1.speedup(150, "sequential-c", "cuda-gpu", which="modeled")
        assert s > 0

    def test_to_text_contains_both_blocks(self, tiny_table1):
        text = tiny_table1.to_text()
        assert "MEASURED" in text
        assert "MODELED" in text
        assert "sequential-c" in text

    def test_runs_store_selection_results(self, tiny_table1):
        run = tiny_table1.runs[(150, "sequential-c")]
        assert run.result.bandwidth > 0


class TestTable2Harness:
    def test_k_exceeding_n_left_blank(self, tiny_table2):
        assert tiny_table2.sequential[100][60] is None
        assert tiny_table2.cuda[100][60] is None

    def test_valid_cells_positive(self, tiny_table2):
        assert tiny_table2.sequential[5][150] > 0
        assert tiny_table2.cuda[5][150] > 0

    def test_panel_b_uses_simulated_time(self, tiny_table2):
        # The modelled Tesla floor is ~0.09 s, far above any measured
        # wall time at n=150 — a cheap fingerprint of the right column.
        assert tiny_table2.cuda[5][150] >= 0.09

    def test_to_text_renders_both_panels(self, tiny_table2):
        text = tiny_table2.to_text()
        assert "PANEL A" in text and "PANEL B" in text
        assert "(paper)" in text
