"""Sanity tests over the transcribed paper tables."""

import pytest

from repro.bench.paper_data import (
    PAPER_HEADLINE_SPEEDUP,
    PAPER_PROGRAMS,
    PAPER_TABLE1,
    PAPER_TABLE2_CUDA,
    PAPER_TABLE2_SEQUENTIAL,
    paper_speedup,
)


class TestTable1:
    def test_all_rows_have_all_programs(self):
        for n, row in PAPER_TABLE1.items():
            assert set(row) == set(PAPER_PROGRAMS), n

    def test_headline_speedup_value(self):
        assert PAPER_HEADLINE_SPEEDUP == pytest.approx(232.51 / 32.49)
        assert paper_speedup(20000) == pytest.approx(7.156, abs=0.01)

    def test_each_program_monotone_in_n_at_scale(self):
        sizes = [1000, 5000, 10000, 20000]
        for prog in PAPER_PROGRAMS:
            times = [PAPER_TABLE1[n][prog] for n in sizes]
            assert times == sorted(times), prog

    def test_gpu_wins_at_largest_n(self):
        row = PAPER_TABLE1[20000]
        assert row["cuda-gpu"] == min(row.values())

    def test_crossovers_around_1000(self):
        # Below 1,000 the sequential C beats the GPU; above, it loses.
        assert PAPER_TABLE1[500]["sequential-c"] < PAPER_TABLE1[500]["cuda-gpu"]
        assert PAPER_TABLE1[5000]["sequential-c"] > PAPER_TABLE1[5000]["cuda-gpu"]


class TestTable2:
    def test_blank_cells_exactly_where_k_exceeds_n(self):
        for table in (PAPER_TABLE2_SEQUENTIAL, PAPER_TABLE2_CUDA):
            for k, row in table.items():
                for n, v in row.items():
                    if k > n:
                        assert v is None, (k, n)
                    else:
                        assert v is not None, (k, n)

    def test_k50_column_consistent_with_table1(self):
        # Table II at k=50 must agree with Table I (the correction that
        # pins Table I's "2,000" row to n=5,000 rests on this).
        for n in (1000, 5000, 10000, 20000):
            assert PAPER_TABLE2_SEQUENTIAL[50][n] == pytest.approx(
                PAPER_TABLE1[n]["sequential-c"], abs=0.05
            )
            assert PAPER_TABLE2_CUDA[50][n] == pytest.approx(
                PAPER_TABLE1[n]["cuda-gpu"], abs=0.05
            )

    def test_sequential_k_growth_under_5_percent_at_20000(self):
        # §V: "the run time increases by less than 5%" (k=5 -> 2,000).
        ratio = PAPER_TABLE2_SEQUENTIAL[2000][20000] / PAPER_TABLE2_SEQUENTIAL[5][20000]
        assert ratio < 1.05

    def test_cuda_k_growth_small_at_20000(self):
        ratio = PAPER_TABLE2_CUDA[2000][20000] / PAPER_TABLE2_CUDA[5][20000]
        assert ratio < 1.08
