"""Tests for the uniform program runner."""

import numpy as np
import pytest

from repro.bench.programs import PROGRAMS, run_program
from repro.data import paper_dgp
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def sample():
    return paper_dgp(120, seed=6)


class TestProgramRegistry:
    def test_all_paper_programs_present(self):
        assert {"racine-hayfield", "multicore-r", "sequential-c",
                "cuda-gpu", "rule-of-thumb"} <= set(PROGRAMS)

    def test_descriptions_reference_paper_roles(self):
        assert "program 1" in PROGRAMS["racine-hayfield"].description
        assert "program 4" in PROGRAMS["cuda-gpu"].description


class TestRunProgram:
    def test_unknown_program_rejected(self, sample):
        with pytest.raises(ValidationError, match="unknown program"):
            run_program("fortran-77", sample.x, sample.y)

    def test_sequential_c_run(self, sample):
        run = run_program("sequential-c", sample.x, sample.y, k=10)
        assert run.program == "sequential-c"
        assert run.n == sample.n and run.k == 10
        assert run.seconds > 0
        assert run.simulated_seconds is None
        assert run.reported_seconds == run.seconds

    def test_cuda_gpu_reports_simulated_time(self, sample):
        run = run_program("cuda-gpu", sample.x, sample.y, k=10)
        assert run.simulated_seconds is not None
        assert run.reported_seconds == run.simulated_seconds

    def test_rule_of_thumb_run(self, sample):
        run = run_program("rule-of-thumb", sample.x, sample.y)
        assert run.result.method == "rule-of-thumb"

    def test_numeric_programs_share_objective(self, sample):
        serial = run_program(
            "racine-hayfield", sample.x, sample.y, n_restarts=1, seed=4, maxiter=40
        )
        parallel = run_program(
            "multicore-r", sample.x, sample.y, n_restarts=1, seed=4,
            maxiter=40, workers=2,
        )
        assert serial.result.bandwidth == pytest.approx(
            parallel.result.bandwidth, rel=1e-6
        )

    def test_grid_programs_agree_on_optimum(self, sample):
        seq = run_program("sequential-c", sample.x, sample.y, k=12)
        gpu = run_program("cuda-gpu", sample.x, sample.y, k=12)
        assert seq.result.bandwidth == pytest.approx(
            gpu.result.bandwidth, rel=1e-5
        )
