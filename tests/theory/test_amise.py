"""Tests for the AMISE bandwidth theory."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.theory import (
    gaussian_reference_kde_bandwidth,
    kde_amise_bandwidth,
    regression_amise_bandwidth,
    roughness_of,
)

_SQRT_2PI = np.sqrt(2 * np.pi)


def _normal_pdf(t):
    t = np.asarray(t, dtype=float)
    return np.exp(-0.5 * t * t) / _SQRT_2PI


class TestRoughness:
    def test_constant_function(self):
        assert roughness_of(lambda t: np.full_like(t, 2.0), 0, 1) == pytest.approx(4.0)

    def test_normal_density_roughness(self):
        # R(phi) = 1/(2 sqrt(pi)).
        assert roughness_of(_normal_pdf, -8, 8) == pytest.approx(
            1 / (2 * np.sqrt(np.pi)), rel=1e-4
        )

    def test_second_derivative_roughness_of_normal(self):
        # R(phi'') = 3/(8 sqrt(pi)).
        got = roughness_of(_normal_pdf, -8, 8, derivative=2, grid_points=16385)
        assert got == pytest.approx(3 / (8 * np.sqrt(np.pi)), rel=1e-2)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValidationError):
            roughness_of(_normal_pdf, 1.0, 0.0)


class TestKdeAmise:
    def test_gaussian_reference_textbook_constant(self):
        # h* = (4/3)^{1/5} sigma n^{-1/5} ~ 1.0592 sigma n^{-1/5}.
        h = gaussian_reference_kde_bandwidth(1.0, 100_000)
        assert h == pytest.approx((4.0 / 3.0) ** 0.2 * 100_000 ** (-0.2), rel=1e-6)

    def test_scales_with_sigma(self):
        assert gaussian_reference_kde_bandwidth(
            2.0, 1000
        ) == pytest.approx(2.0 * gaussian_reference_kde_bandwidth(1.0, 1000))

    def test_numeric_matches_reference_for_normal(self):
        numeric = kde_amise_bandwidth(_normal_pdf, 5000, kernel="gaussian")
        closed = gaussian_reference_kde_bandwidth(1.0, 5000)
        assert numeric == pytest.approx(closed, rel=0.02)

    def test_epanechnikov_needs_larger_h(self):
        # Canonical-bandwidth ordering: compact kernels need bigger h.
        gauss = kde_amise_bandwidth(_normal_pdf, 1000, kernel="gaussian")
        epan = kde_amise_bandwidth(_normal_pdf, 1000, kernel="epanechnikov")
        assert epan > 2.0 * gauss

    def test_n_rate(self):
        h1 = gaussian_reference_kde_bandwidth(1.0, 1000)
        h2 = gaussian_reference_kde_bandwidth(1.0, 32 * 1000)
        assert h2 == pytest.approx(h1 / 2.0)  # 32^{-1/5} = 1/2

    def test_flat_density_rejected(self):
        with pytest.raises(ValidationError):
            kde_amise_bandwidth(
                lambda t: np.full_like(np.asarray(t, dtype=float), 0.5),
                100,
                support=(-1, 1),
            )

    def test_sigma_validated(self):
        with pytest.raises(ValidationError):
            gaussian_reference_kde_bandwidth(0.0, 100)


class TestRegressionAmise:
    def _paper_mean(self, t):
        t = np.asarray(t, dtype=float)
        return 0.5 * t + 10.0 * t * t + 0.25

    def test_paper_dgp_bandwidth_scale(self):
        # g'' = 20, uniform design, sigma^2 = 0.5^2/12: the closed form is
        # h* = [0.6 * sigma^2 / (4 * (1/25) * 400)]^{1/5} n^{-1/5}.
        sigma2 = 0.25 / 12.0
        n = 2000
        expected = (0.6 * sigma2 / (4.0 * (1.0 / 25.0) * 400.0)) ** 0.2 * n ** (-0.2)
        got = regression_amise_bandwidth(
            self._paper_mean, n, noise_variance=sigma2
        )
        assert got == pytest.approx(expected, rel=0.02)

    def test_cv_selection_lands_near_amise(self):
        # Finite-sample CV optimum within a factor ~2.5 of the asymptotic
        # target on the paper's DGP.
        from repro.core import GridSearchSelector
        from repro.data import paper_dgp

        n = 2000
        h_star = regression_amise_bandwidth(
            self._paper_mean, n, noise_variance=0.25 / 12.0
        )
        s = paper_dgp(n, seed=0)
        res = GridSearchSelector(n_bandwidths=200).select(s.x, s.y)
        assert h_star / 2.5 < res.bandwidth < h_star * 2.5

    def test_wigglier_mean_needs_smaller_h(self):
        smooth = regression_amise_bandwidth(
            lambda t: np.sin(2 * np.asarray(t)), 1000, noise_variance=0.1
        )
        wiggly = regression_amise_bandwidth(
            lambda t: np.sin(10 * np.asarray(t)), 1000, noise_variance=0.1
        )
        assert wiggly < smooth

    def test_linear_mean_rejected(self):
        with pytest.raises(ValidationError, match="unbounded"):
            regression_amise_bandwidth(
                lambda t: 2.0 * np.asarray(t, dtype=float),
                1000,
                noise_variance=0.1,
            )

    def test_validation(self):
        with pytest.raises(ValidationError):
            regression_amise_bandwidth(self._paper_mean, 1, noise_variance=0.1)
        with pytest.raises(ValidationError):
            regression_amise_bandwidth(self._paper_mean, 100, noise_variance=0.0)
