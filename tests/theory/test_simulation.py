"""Tests for the Monte Carlo selector-study harness."""

import numpy as np
import pytest

from repro.core import GridSearchSelector, RuleOfThumbSelector
from repro.data import paper_dgp
from repro.exceptions import ValidationError
from repro.theory import SelectorStudy, fit_mise


class TestFitMise:
    def test_better_bandwidth_lower_mise(self):
        s = paper_dgp(800, seed=0)
        good = fit_mise(s, 0.05)
        oversmoothed = fit_mise(s, 1.0)
        assert good < oversmoothed

    def test_nonnegative(self):
        s = paper_dgp(200, seed=1)
        assert fit_mise(s, 0.2) >= 0.0

    def test_trim_bounds_checked(self):
        s = paper_dgp(50, seed=2)
        with pytest.raises(ValidationError):
            fit_mise(s, 0.2, trim=0.5)


class TestSelectorStudy:
    @pytest.fixture(scope="class")
    def study(self):
        study = SelectorStudy(paper_dgp, n=200, replications=6, base_seed=42)
        study.run(
            {
                "grid": GridSearchSelector(n_bandwidths=25),
                "rot": RuleOfThumbSelector(),
            }
        )
        return study

    def test_results_per_selector(self, study):
        assert set(study.results) == {"grid", "rot"}
        for result in study.results.values():
            assert result.replications == 6
            assert (result.bandwidths > 0).all()

    def test_cv_selection_beats_rot_mise(self, study):
        assert (
            study.results["grid"].mises.mean()
            < study.results["rot"].mises.mean()
        )

    def test_summary_fields(self, study):
        s = study.results["grid"].summary()
        assert {"h_mean", "h_sd", "mise_mean", "cv_mean"} <= set(s)
        assert s["h_min"] <= s["h_mean"] <= s["h_max"]

    def test_report_renders(self, study):
        text = study.report()
        assert "grid" in text and "rot" in text

    def test_unrun_study_report(self):
        assert "not been run" in SelectorStudy(paper_dgp).report()

    def test_selected_bandwidths_concentrate(self, study):
        # Paired draws + deterministic selector: modest dispersion.
        result = study.results["grid"]
        assert result.bandwidths.std() < result.bandwidths.mean()
