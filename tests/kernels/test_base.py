"""Unit tests for the Kernel base class and PolyTerm."""

import math

import numpy as np
import pytest

from repro.kernels import (
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    PolyTerm,
    UniformKernel,
)


class TestPolyTerm:
    def test_fields(self):
        t = PolyTerm(0.75, 2)
        assert t.coefficient == 0.75
        assert t.power == 2

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PolyTerm(1.0, -1)

    def test_frozen(self):
        t = PolyTerm(1.0, 0)
        with pytest.raises(AttributeError):
            t.power = 3


class TestKernelMetadata:
    def test_compact_support_flag(self):
        assert EpanechnikovKernel().has_compact_support
        assert not GaussianKernel().has_compact_support

    def test_fast_grid_support_flag(self):
        assert EpanechnikovKernel().supports_fast_grid
        assert not GaussianKernel().supports_fast_grid

    def test_epanechnikov_is_efficiency_reference(self):
        assert EpanechnikovKernel().efficiency() == pytest.approx(1.0)

    def test_other_kernels_less_efficient(self):
        for kern in (UniformKernel(), GaussianKernel()):
            assert kern.efficiency() >= 1.0

    def test_gaussian_efficiency_textbook_value(self):
        # C(K)-ratio form; the textbook 1.051 sample-size ratio is its
        # 5/4 power: 1.0408**1.25 ~= 1.051.
        eff = GaussianKernel().efficiency()
        assert eff == pytest.approx(1.0408, abs=2e-3)
        assert eff**1.25 == pytest.approx(1.0513, abs=2e-3)

    def test_canonical_bandwidth_epanechnikov(self):
        # delta_0 = (R/kappa2^2)^(1/5) = (0.6/0.04)^(1/5) = 15^(1/5).
        assert EpanechnikovKernel().canonical_bandwidth == pytest.approx(
            15.0 ** 0.2
        )

    def test_equality_by_name(self):
        assert EpanechnikovKernel() == EpanechnikovKernel()
        assert EpanechnikovKernel() != UniformKernel()

    def test_hashable(self):
        assert len({EpanechnikovKernel(), EpanechnikovKernel()}) == 1


class TestKernelEvaluation:
    def test_zero_outside_support(self):
        k = EpanechnikovKernel()
        np.testing.assert_array_equal(k(np.array([1.5, -2.0, 100.0])), 0.0)

    def test_boundary_value(self):
        k = EpanechnikovKernel()
        assert k(np.array([1.0]))[0] == pytest.approx(0.0)
        assert k(np.array([-1.0]))[0] == pytest.approx(0.0)

    def test_peak_at_zero(self):
        assert EpanechnikovKernel()(np.array([0.0]))[0] == pytest.approx(0.75)

    def test_scalar_input_supported(self):
        assert float(EpanechnikovKernel()(0.5)) == pytest.approx(0.75 * 0.75)

    def test_gaussian_never_zero(self):
        assert (GaussianKernel()(np.array([-5.0, 0.0, 5.0])) > 0.0).all()

    def test_poly_weight_requires_poly_terms(self):
        with pytest.raises(NotImplementedError):
            GaussianKernel().poly_weight(np.array([0.0]))

    def test_abstract_weight_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Kernel()(np.array([0.0]))
