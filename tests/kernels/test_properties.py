"""Property tests for every registered kernel.

These pin down the mathematical contract the selectors rely on:
normalisation, symmetry, non-negativity, the declared roughness/second
moment, and — for fast-grid kernels — exact agreement between the
polynomial expansion and the direct weight.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import KERNEL_REGISTRY, get_kernel

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz

ALL_KERNELS = sorted(KERNEL_REGISTRY)
POLY_KERNELS = sorted(
    name for name, k in KERNEL_REGISTRY.items() if k.supports_fast_grid
)


def _integration_grid(kern):
    radius = kern.support_radius if kern.has_compact_support else 10.0
    return np.linspace(-radius, radius, 200001)


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestKernelAxioms:
    def test_integrates_to_one(self, name):
        kern = get_kernel(name)
        u = _integration_grid(kern)
        assert float(_TRAPEZOID(kern(u), u)) == pytest.approx(1.0, abs=1e-4)

    def test_symmetric(self, name):
        kern = get_kernel(name)
        u = np.linspace(0.0, 3.0, 301)
        np.testing.assert_allclose(kern(u), kern(-u), atol=1e-15)

    def test_nonnegative(self, name):
        kern = get_kernel(name)
        u = np.linspace(-3.0, 3.0, 601)
        assert (kern(u) >= 0.0).all()

    def test_declared_roughness_matches_integral(self, name):
        kern = get_kernel(name)
        u = _integration_grid(kern)
        w = kern(u)
        assert float(_TRAPEZOID(w * w, u)) == pytest.approx(
            kern.roughness, rel=1e-3
        )

    def test_declared_second_moment_matches_integral(self, name):
        kern = get_kernel(name)
        u = _integration_grid(kern)
        assert float(_TRAPEZOID(u * u * kern(u), u)) == pytest.approx(
            kern.second_moment, rel=1e-3
        )

    def test_maximum_at_zero(self, name):
        kern = get_kernel(name)
        u = np.linspace(-1.5, 1.5, 301)
        assert kern(np.array([0.0]))[0] == pytest.approx(float(kern(u).max()))

    def test_monotone_decreasing_in_abs_u(self, name):
        kern = get_kernel(name)
        u = np.linspace(0.0, 2.0, 101)
        w = kern(u)
        assert (np.diff(w) <= 1e-12).all()


@pytest.mark.parametrize("name", POLY_KERNELS)
class TestPolynomialExpansion:
    def test_poly_weight_equals_direct_weight_on_grid(self, name):
        kern = get_kernel(name)
        u = np.linspace(-1.2, 1.2, 2401)
        np.testing.assert_allclose(kern.poly_weight(u), kern(u), atol=1e-12)

    @given(u=st.floats(-2.0, 2.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_poly_weight_equals_direct_weight_pointwise(self, name, u):
        kern = get_kernel(name)
        arr = np.array([u])
        np.testing.assert_allclose(
            kern.poly_weight(arr), kern(arr), atol=1e-12
        )

    def test_support_radius_is_one(self, name):
        assert get_kernel(name).support_radius == 1.0
