"""Unit tests for the kernel registry."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import (
    EpanechnikovKernel,
    Kernel,
    fast_grid_kernels,
    get_kernel,
    list_kernels,
    register_kernel,
)
from repro.kernels.registry import KERNEL_REGISTRY


class TestGetKernel:
    def test_lookup_by_name(self):
        assert get_kernel("epanechnikov").name == "epanechnikov"

    def test_lookup_is_case_insensitive(self):
        assert get_kernel("Epanechnikov").name == "epanechnikov"

    def test_instance_passes_through(self):
        kern = EpanechnikovKernel()
        assert get_kernel(kern) is kern

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValidationError, match="gaussian"):
            get_kernel("not-a-kernel")

    def test_non_string_non_kernel_rejected(self):
        with pytest.raises(ValidationError):
            get_kernel(42)

    def test_singletons_shared(self):
        assert get_kernel("uniform") is get_kernel("uniform")


class TestRegistryContents:
    def test_eight_standard_kernels_present(self):
        expected = {
            "epanechnikov", "uniform", "triangular", "biweight",
            "triweight", "tricube", "cosine", "gaussian",
        }
        assert expected <= set(list_kernels())

    def test_fast_grid_kernels_are_polynomial_compact(self):
        fast = set(fast_grid_kernels())
        assert "epanechnikov" in fast
        assert "gaussian" not in fast
        assert "cosine" not in fast
        for name in fast:
            kern = get_kernel(name)
            assert kern.supports_fast_grid


class TestRegisterKernel:
    def test_register_and_cleanup(self):
        class Custom(EpanechnikovKernel):
            name = "custom-test-kernel"

        try:
            register_kernel(Custom())
            assert get_kernel("custom-test-kernel").name == "custom-test-kernel"
        finally:
            KERNEL_REGISTRY.pop("custom-test-kernel", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_kernel(EpanechnikovKernel())

    def test_overwrite_allowed_when_requested(self):
        register_kernel(EpanechnikovKernel(), overwrite=True)
        assert get_kernel("epanechnikov").name == "epanechnikov"

    def test_non_kernel_rejected(self):
        with pytest.raises(ValidationError):
            register_kernel("epanechnikov")
