"""Contract tests for the exception hierarchy and its stable codes.

The resilience layer routes retry/degrade decisions through ``REPRO_*``
codes, so the hierarchy's shape is an API: every class must carry a code,
codes must be unique per concrete class, and ``str(exc)`` must surface
the code for greppable logs.
"""

from __future__ import annotations

import inspect

import pytest

import repro.exceptions as exc_mod
from repro.exceptions import (
    DeviceMemoryError,
    GpuSimError,
    PoolStateError,
    ReproError,
    ValidationError,
    error_code,
)


def _all_error_classes() -> list[type[ReproError]]:
    return [
        obj
        for _, obj in inspect.getmembers(exc_mod, inspect.isclass)
        if issubclass(obj, ReproError)
    ]


class TestCodes:
    def test_every_class_exported(self) -> None:
        for cls in _all_error_classes():
            assert cls.__name__ in exc_mod.__all__

    def test_every_class_has_a_repro_code(self) -> None:
        for cls in _all_error_classes():
            assert isinstance(cls.code, str)
            assert cls.code.startswith("REPRO_"), cls

    def test_codes_are_unique_per_class(self) -> None:
        codes: dict[str, str] = {}
        for cls in _all_error_classes():
            # a subclass that inherits its parent's code would make
            # retry/degrade classification ambiguous
            assert "code" in cls.__dict__, f"{cls.__name__} must own its code"
            assert cls.code not in codes, (
                f"{cls.__name__} reuses {cls.code} from {codes[cls.code]}"
            )
            codes[cls.code] = cls.__name__

    def test_str_is_prefixed_with_code(self) -> None:
        assert str(DeviceMemoryError("4 GB wall")) == "[REPRO_DEVICE_OOM] 4 GB wall"
        assert str(PoolStateError()) == "[REPRO_POOL_STATE]"


class TestErrorCode:
    def test_reads_repro_errors(self) -> None:
        assert error_code(DeviceMemoryError("x")) == "REPRO_DEVICE_OOM"
        assert error_code(ValidationError("x")) == "REPRO_VALIDATION"

    def test_foreign_errors_are_none(self) -> None:
        assert error_code(RuntimeError("plain")) is None
        assert error_code(MemoryError()) is None

    def test_spoofed_code_attribute_rejected(self) -> None:
        class Impostor(Exception):
            code = 404  # not a string, not a REPRO_ code

        assert error_code(Impostor()) is None


class TestHierarchy:
    def test_single_base_class(self) -> None:
        for cls in _all_error_classes():
            assert issubclass(cls, ReproError)

    @pytest.mark.parametrize(
        ("cls", "stdlib_base"),
        [(ValidationError, ValueError), (DeviceMemoryError, MemoryError)],
    )
    def test_stdlib_compatibility(self, cls: type, stdlib_base: type) -> None:
        """Callers using stdlib except-clauses keep working."""
        assert issubclass(cls, stdlib_base)

    def test_gpusim_errors_share_a_base(self) -> None:
        from repro.exceptions import (
            ConstantMemoryError,
            KernelExecutionError,
            LaunchConfigurationError,
        )

        for cls in (ConstantMemoryError, KernelExecutionError, LaunchConfigurationError):
            assert issubclass(cls, GpuSimError)
