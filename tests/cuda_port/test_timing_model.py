"""Tests for the CUDA-program timing model and its calibration."""

import pytest

from repro.bench.paper_data import PAPER_TABLE1, PAPER_TABLE2_CUDA
from repro.cuda_port import estimate_program_runtime
from repro.exceptions import ValidationError


class TestShape:
    def test_monotone_in_n(self):
        times = [
            estimate_program_runtime(n, 50).total_seconds
            for n in (100, 1000, 5000, 20000)
        ]
        assert times == sorted(times)

    def test_superlinear_growth_at_scale(self):
        t10 = estimate_program_runtime(10_000, 50).total_seconds
        t20 = estimate_program_runtime(20_000, 50).total_seconds
        assert t20 > 3.5 * t10  # ~n² log n

    def test_near_flat_in_k(self):
        # Table II panel B: "no appreciable slowdowns" in k.
        t5 = estimate_program_runtime(20_000, 5).total_seconds
        t2000 = estimate_program_runtime(20_000, 2000).total_seconds
        assert t2000 < 1.10 * t5

    def test_sort_phase_dominates_at_scale(self):
        rt = estimate_program_runtime(20_000, 50)
        sort = rt.phase("sort").seconds
        others = rt.total_seconds - sort
        assert sort > others

    def test_fixed_overhead_floor_at_tiny_n(self):
        rt = estimate_program_runtime(50, 5)
        assert rt.total_seconds == pytest.approx(0.09, abs=0.02)

    def test_modern_gpu_much_faster(self):
        # The model still charges full uncoalesced transactions on the
        # modern profile (conservative: no cache model), so the gain is
        # bandwidth-bound — ~7x, not the raw-FLOPs ratio.
        paper = estimate_program_runtime(20_000, 50).total_seconds
        modern = estimate_program_runtime(
            20_000, 50, device="modern-gpu"
        ).total_seconds
        assert modern < paper / 4.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            estimate_program_runtime(0, 50)
        with pytest.raises(ValidationError):
            estimate_program_runtime(100, 0)


class TestCalibration:
    """The model must land near the paper's CUDA measurements."""

    @pytest.mark.parametrize("n", [5000, 10000, 20000])
    def test_within_25_percent_of_table1_at_scale(self, n):
        paper = PAPER_TABLE1[n]["cuda-gpu"]
        model = estimate_program_runtime(n, 50).total_seconds
        assert model == pytest.approx(paper, rel=0.25)

    @pytest.mark.parametrize("n", [50, 100, 500, 1000])
    def test_within_factor_two_at_small_n(self, n):
        paper = PAPER_TABLE1[n]["cuda-gpu"]
        model = estimate_program_runtime(n, 50).total_seconds
        assert paper / 2.0 <= model <= paper * 2.0

    def test_k_growth_direction_matches_table2(self):
        # Paper: 31.83 (k=5) -> 34.21 (k=2000) at n=20,000.
        t5 = estimate_program_runtime(20_000, 5).total_seconds
        t2000 = estimate_program_runtime(20_000, 2000).total_seconds
        assert t2000 > t5
        paper_ratio = PAPER_TABLE2_CUDA[2000][20000] / PAPER_TABLE2_CUDA[5][20000]
        model_ratio = t2000 / t5
        assert model_ratio == pytest.approx(paper_ratio, abs=0.08)

    def test_headline_speedup_reproduced(self):
        # 232.51 / modelled CUDA time ~ paper's 7.2x.
        model = estimate_program_runtime(20_000, 50).total_seconds
        speedup = PAPER_TABLE1[20_000]["racine-hayfield"] / model
        assert speedup == pytest.approx(7.2, rel=0.2)
