"""Tests for the tiled (out-of-core) program — the paper's future work."""

import numpy as np
import pytest

from repro.core.grid import BandwidthGrid
from repro.cuda_port import (
    CudaBandwidthProgram,
    TiledCudaBandwidthProgram,
    default_tile_rows,
    estimate_program_runtime,
    estimate_tiled_runtime,
)
from repro.data import paper_dgp
from repro.exceptions import DeviceMemoryError, ValidationError


@pytest.fixture(scope="module")
def sample():
    return paper_dgp(250, seed=4)


@pytest.fixture(scope="module")
def grid(sample):
    return BandwidthGrid.for_sample(sample.x, 12)


class TestCorrectness:
    def test_matches_monolithic_program(self, sample, grid):
        mono = CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)
        tiled = TiledCudaBandwidthProgram(tile_rows=64).run(
            sample.x, sample.y, grid.values
        )
        np.testing.assert_allclose(tiled.scores, mono.scores, rtol=1e-6)
        assert tiled.bandwidth == pytest.approx(mono.bandwidth)

    def test_tile_size_does_not_change_result(self, sample, grid):
        a = TiledCudaBandwidthProgram(tile_rows=32).run(
            sample.x, sample.y, grid.values
        )
        b = TiledCudaBandwidthProgram(tile_rows=250).run(
            sample.x, sample.y, grid.values
        )
        np.testing.assert_allclose(a.scores, b.scores, rtol=1e-10)

    def test_tile_count_reported(self, sample, grid):
        res = TiledCudaBandwidthProgram(tile_rows=100).run(
            sample.x, sample.y, grid.values
        )
        assert res.memory_report["tiles"] == 3  # ceil(250/100)
        assert res.mode == "fast-tiled"

    def test_invalid_tile_rows_rejected(self):
        with pytest.raises(ValidationError):
            TiledCudaBandwidthProgram(tile_rows=0)


class TestMemoryCeilingLifted:
    """The headline of the future-work fix: no more n = 20,000 wall."""

    def test_monolithic_ooms_but_tiled_runs_at_25000(self):
        rng = np.random.default_rng(2)
        n = 25_000
        x = rng.uniform(size=n)
        y = x + rng.normal(size=n) * 0.1
        grid = BandwidthGrid.for_sample(x, 10)
        with pytest.raises(DeviceMemoryError):
            CudaBandwidthProgram(mode="fast").run(x, y, grid.values)
        res = TiledCudaBandwidthProgram().run(x, y, grid.values)
        assert res.scores.shape == (10,)
        assert res.memory_report["peak_gb"] < 4.0

    def test_default_tile_rows_fit_half_device(self):
        n = 100_000
        t = default_tile_rows(n)
        # Two t x n float32 buffers within half of 4 GB.
        assert 2 * t * n * 4 <= 2 * 1024**3
        assert t >= 1

    def test_tile_rows_capped_at_n(self):
        assert default_tile_rows(100) == 100


class TestTiledTimingModel:
    def test_nearly_matches_monolithic_at_equal_n(self):
        mono = estimate_program_runtime(20_000, 50).total_seconds
        tiled = estimate_tiled_runtime(20_000, 50).total_seconds
        # Tiling adds launch + restream overhead only: within 5%.
        assert mono <= tiled <= mono * 1.05

    def test_scales_beyond_the_wall(self):
        t20 = estimate_tiled_runtime(20_000, 50).total_seconds
        t40 = estimate_tiled_runtime(40_000, 50).total_seconds
        # ~n^2 log n growth: a bit over 4x.
        assert 3.5 * t20 < t40 < 6.0 * t20

    def test_smaller_tiles_cost_more_overhead(self):
        coarse = estimate_tiled_runtime(20_000, 50, tile_rows=10_000)
        fine = estimate_tiled_runtime(20_000, 50, tile_rows=100)
        assert fine.total_seconds > coarse.total_seconds
