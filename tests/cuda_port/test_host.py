"""Tests for the CUDA program host driver (the paper's program 4)."""

import numpy as np
import pytest

from repro.core.fastgrid import cv_scores_fastgrid_python
from repro.core.grid import BandwidthGrid
from repro.cuda_port import CudaBandwidthProgram
from repro.data import paper_dgp
from repro.exceptions import (
    ConstantMemoryError,
    DeviceMemoryError,
    ValidationError,
)


@pytest.fixture(scope="module")
def sample():
    return paper_dgp(100, seed=77)


@pytest.fixture(scope="module")
def grid(sample):
    return BandwidthGrid.for_sample(sample.x, 10)


class TestCorrectness:
    """§IV-C testing design: CUDA vs sequential equality."""

    def test_functional_matches_sequential_reference(self, sample, grid):
        result = CudaBandwidthProgram(mode="functional").run(
            sample.x, sample.y, grid.values
        )
        reference = cv_scores_fastgrid_python(sample.x, sample.y, grid.values)
        np.testing.assert_allclose(result.scores, reference, rtol=5e-4)

    def test_fast_matches_functional(self, sample, grid):
        fast = CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)
        func = CudaBandwidthProgram(mode="functional").run(
            sample.x, sample.y, grid.values
        )
        np.testing.assert_allclose(fast.scores, func.scores, rtol=5e-4)
        assert fast.bandwidth == pytest.approx(func.bandwidth)

    def test_selected_bandwidth_is_score_argmin(self, sample, grid):
        result = CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)
        assert result.bandwidth == pytest.approx(
            float(grid.values[int(np.argmin(result.scores))])
        )

    def test_auto_mode_switches_on_size(self, sample, grid):
        prog = CudaBandwidthProgram(mode="auto", functional_limit=150)
        small = prog.run(sample.x, sample.y, grid.values)
        assert small.mode == "functional"
        big_sample = paper_dgp(300, seed=1)
        big_grid = BandwidthGrid.for_sample(big_sample.x, 10)
        big = prog.run(big_sample.x, big_sample.y, big_grid.values)
        assert big.mode == "fast"

    @pytest.mark.parametrize("kernel", ["uniform", "triangular", "biweight"])
    def test_other_polynomial_kernels(self, sample, grid, kernel):
        result = CudaBandwidthProgram(mode="functional", kernel=kernel).run(
            sample.x, sample.y, grid.values
        )
        reference = cv_scores_fastgrid_python(
            sample.x, sample.y, grid.values, kernel
        )
        np.testing.assert_allclose(result.scores, reference, rtol=1e-3)

    def test_gaussian_kernel_rejected(self):
        with pytest.raises(ValidationError):
            CudaBandwidthProgram(kernel="gaussian")

    def test_multi_block_launch(self):
        # n > threads_per_block forces several blocks with an idle tail.
        s = paper_dgp(70, seed=3)
        g = BandwidthGrid.for_sample(s.x, 5)
        result = CudaBandwidthProgram(mode="functional", threads_per_block=32).run(
            s.x, s.y, g.values
        )
        reference = cv_scores_fastgrid_python(s.x, s.y, g.values)
        np.testing.assert_allclose(result.scores, reference, rtol=5e-4)
        assert result.launch_stats[0].grid_dim == 3  # ceil(70/32)


class TestResourceLimits:
    def test_constant_memory_cap(self, sample):
        grid = BandwidthGrid.evenly_spaced(1e-4, 1.0, 2049)
        with pytest.raises(ConstantMemoryError):
            CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)

    def test_2048_bandwidths_allowed(self):
        s = paper_dgp(2100, seed=2)
        grid = BandwidthGrid.for_sample(s.x, 2048)
        result = CudaBandwidthProgram(mode="fast").run(s.x, s.y, grid.values)
        assert result.scores.shape == (2048,)

    def test_oom_above_paper_ceiling(self):
        rng = np.random.default_rng(0)
        n = 25_000
        x = rng.uniform(size=n)
        y = x + rng.normal(size=n) * 0.1
        grid = BandwidthGrid.for_sample(x, 50)
        with pytest.raises(DeviceMemoryError):
            CudaBandwidthProgram(mode="fast").run(x, y, grid.values)

    def test_modern_device_lifts_ceiling(self):
        rng = np.random.default_rng(1)
        n = 25_000
        x = rng.uniform(size=n)
        y = x + rng.normal(size=n) * 0.1
        grid = BandwidthGrid.for_sample(x, 10)
        result = CudaBandwidthProgram(mode="fast", device="modern-gpu").run(
            x, y, grid.values
        )
        assert result.device == "modern-gpu"

    def test_memory_freed_after_run(self, sample, grid):
        prog = CudaBandwidthProgram(mode="fast")
        result = prog.run(sample.x, sample.y, grid.values)
        assert result.memory_report["live_buffers"] > 0  # snapshot pre-free
        # A second run must succeed (nothing leaked across runs).
        prog.run(sample.x, sample.y, grid.values)


class TestConfiguration:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            CudaBandwidthProgram(mode="warp")

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValidationError):
            CudaBandwidthProgram(threads_per_block=100)

    def test_result_carries_simulated_breakdown(self, sample, grid):
        result = CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)
        assert result.simulated_seconds > 0
        assert result.simulated.phase("sort").seconds >= 0
        assert result.wall_seconds > 0

    def test_launch_stats_sequence(self, sample, grid):
        result = CudaBandwidthProgram(mode="functional").run(
            sample.x, sample.y, grid.values
        )
        # 1 main kernel + k sum reductions + 1 argmin.
        assert len(result.launch_stats) == 1 + len(grid) + 1
        assert result.launch_stats[0].kernel_name == "bandwidth_main_kernel"
        assert result.launch_stats[-1].kernel_name == "argmin_reduction_kernel"
