"""Tests for the dual-GPU split (the machine's two Tesla S10 modules)."""

import numpy as np
import pytest

from repro.core.grid import BandwidthGrid
from repro.cuda_port import (
    CudaBandwidthProgram,
    MultiGpuBandwidthProgram,
    estimate_multi_gpu_runtime,
    estimate_program_runtime,
)
from repro.data import paper_dgp
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def sample():
    return paper_dgp(220, seed=9)


@pytest.fixture(scope="module")
def grid(sample):
    return BandwidthGrid.for_sample(sample.x, 10)


class TestCorrectness:
    def test_matches_single_gpu_program(self, sample, grid):
        single = CudaBandwidthProgram(mode="fast").run(
            sample.x, sample.y, grid.values
        )
        dual = MultiGpuBandwidthProgram().run(sample.x, sample.y, grid.values)
        np.testing.assert_allclose(dual.scores, single.scores, rtol=1e-6)
        assert dual.bandwidth == pytest.approx(single.bandwidth)

    def test_row_split_recorded(self, sample, grid):
        res = MultiGpuBandwidthProgram().run(sample.x, sample.y, grid.values)
        blocks = res.memory_report["row_split"]
        assert blocks == [(0, 110), (110, 220)]
        assert res.mode == "fast-multi-gpu-2"
        assert res.device == "tesla-s1070+tesla-s1070"

    def test_three_devices(self, sample, grid):
        res = MultiGpuBandwidthProgram(
            devices=["tesla-s1070"] * 3
        ).run(sample.x, sample.y, grid.values)
        assert len(res.memory_report["row_split"]) == 3

    def test_heterogeneous_devices(self, sample, grid):
        res = MultiGpuBandwidthProgram(
            devices=["tesla-s1070", "modern-gpu"]
        ).run(sample.x, sample.y, grid.values)
        assert res.memory_report["devices"] == ["tesla-s1070", "modern-gpu"]

    def test_empty_device_list_rejected(self):
        with pytest.raises(ValidationError):
            MultiGpuBandwidthProgram(devices=[])


class TestScaling:
    def test_speedup_just_under_device_count(self):
        t1 = estimate_program_runtime(20_000, 50).total_seconds
        t2 = estimate_multi_gpu_runtime(20_000, 50, n_devices=2).total_seconds
        speedup = t1 / t2
        assert 1.8 < speedup < 2.0  # Amdahl: reductions/overheads don't split

    def test_per_device_memory_halves(self):
        # n = 28,000 rows split over two devices: each holds an
        # (n/2) x n share — under 4 GB each, though one device OOMs.
        n = 28_000
        per_device_bytes = 2 * (n // 2) * n * 4
        assert per_device_bytes < 4 * 1024**3
        single_bytes = 2 * n * n * 4
        assert single_bytes > 4 * 1024**3

    def test_single_device_degenerates_to_base(self):
        t1 = estimate_multi_gpu_runtime(10_000, 50, n_devices=1).total_seconds
        base = estimate_program_runtime(10_000, 50).total_seconds
        assert t1 == pytest.approx(base)

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ValidationError):
            estimate_multi_gpu_runtime(1000, 50, n_devices=0)
