"""Direct tests of the main device kernel (§IV-B) outside the driver."""

import numpy as np
import pytest

from repro.core.loocv import cv_score_reference
from repro.cuda_port.main_kernel import bandwidth_main_kernel
from repro.gpusim import launch_kernel
from repro.kernels import get_kernel


def _run_main_kernel(x, y, bandwidths, kernel_name="epanechnikov", block_dim=32):
    kern = get_kernel(kernel_name)
    n = x.shape[0]
    k = bandwidths.shape[0]
    P = len(kern.poly_terms)
    x32 = x.astype(np.float32)
    y32 = y.astype(np.float32)
    bw32 = bandwidths.astype(np.float32)
    absdiff = np.zeros((n, n), dtype=np.float32)
    ymat = np.zeros((n, n), dtype=np.float32)
    sums_d = tuple(np.zeros((n, k), dtype=np.float32) for _ in range(P))
    sums_yd = tuple(np.zeros((n, k), dtype=np.float32) for _ in range(P))
    sqresid = np.zeros((k, n), dtype=np.float32)
    grid_dim = -(-n // block_dim)
    stats = launch_kernel(
        bandwidth_main_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(
            x32, y32, absdiff, ymat, sums_d, sums_yd, sqresid, bw32,
            tuple(t.power for t in kern.poly_terms),
            tuple(t.coefficient for t in kern.poly_terms),
            kern.support_radius,
        ),
    )
    return absdiff, ymat, sums_d, sums_yd, sqresid, stats


@pytest.fixture(scope="module")
def tiny():
    rng = np.random.default_rng(5)
    x = rng.uniform(0, 1, 24)
    y = rng.normal(0, 1, 24)
    bw = np.array([0.1, 0.3, 0.6, 1.0])
    return x, y, bw


class TestMatrixFill:
    def test_rows_sorted_after_kernel(self, tiny):
        x, y, bw = tiny
        absdiff, _, _, _, _, _ = _run_main_kernel(x, y, bw)
        for row in absdiff:
            assert (np.diff(row) >= 0).all()

    def test_row_multiset_is_distances(self, tiny):
        x, y, bw = tiny
        absdiff, _, _, _, _, _ = _run_main_kernel(x, y, bw)
        j = 7
        expected = np.sort(np.abs(x - x[j]).astype(np.float32))
        np.testing.assert_allclose(absdiff[j], expected, rtol=1e-6)

    def test_payload_carries_matching_y(self, tiny):
        x, y, bw = tiny
        absdiff, ymat, _, _, _, _ = _run_main_kernel(x, y, bw)
        j = 3
        # Distances must be formed in float32, as the device does.
        x32 = x.astype(np.float32)
        d32 = np.abs(x32 - x32[j])
        # Ties (incl. self at distance 0) can permute equal keys; compare
        # as multisets of (distance, y) pairs.
        got = sorted(zip(absdiff[j].tolist(), ymat[j].tolist()))
        exp = sorted(zip(d32.tolist(), y.astype(np.float32).tolist()))
        assert got == exp


class TestWindowSums:
    def test_sums_monotone_in_bandwidth(self, tiny):
        x, y, bw = tiny
        _, _, sums_d, _, _, _ = _run_main_kernel(x, y, bw)
        # Power-0 sums (window counts) grow with the bandwidth.
        counts = sums_d[0]
        assert (np.diff(counts, axis=1) >= 0).all()

    def test_power0_count_matches_window_size(self, tiny):
        x, y, bw = tiny
        _, _, sums_d, _, _, _ = _run_main_kernel(x, y, bw)
        j, jb = 5, 2
        expected = float((np.abs(x - x[j]) <= bw[jb]).sum())  # includes self
        assert sums_d[0][j, jb] == pytest.approx(expected)

    def test_power2_sum_matches_direct(self, tiny):
        x, y, bw = tiny
        _, _, sums_d, _, _, _ = _run_main_kernel(x, y, bw)
        j, jb = 11, 3
        d = np.abs(x - x[j])
        expected = float((d[d <= bw[jb]] ** 2).sum())
        assert sums_d[1][j, jb] == pytest.approx(expected, rel=1e-4)


class TestSquaredResiduals:
    def test_index_switch_layout(self, tiny):
        # sqresid is (k, n): bandwidth-major, so each reduction reads a
        # contiguous row (the §IV-B index switch).
        x, y, bw = tiny
        _, _, _, _, sqresid, _ = _run_main_kernel(x, y, bw)
        assert sqresid.shape == (bw.shape[0], x.shape[0])

    def test_cv_scores_match_reference(self, tiny):
        x, y, bw = tiny
        _, _, _, _, sqresid, _ = _run_main_kernel(x, y, bw)
        for jb, h in enumerate(bw):
            expected = cv_score_reference(x, y, float(h))
            got = float(sqresid[jb].sum()) / x.shape[0]
            assert got == pytest.approx(expected, rel=5e-4)

    def test_idle_tail_threads_write_nothing(self):
        rng = np.random.default_rng(9)
        x = rng.uniform(0, 1, 10)
        y = rng.normal(0, 1, 10)
        bw = np.array([0.5])
        # block of 32 threads: 22 idle tail threads must not touch memory.
        _, _, _, _, sqresid, stats = _run_main_kernel(x, y, bw, block_dim=32)
        assert stats.threads == 32
        assert np.isfinite(sqresid).all()

    def test_ops_tally_scales_with_n(self):
        rng = np.random.default_rng(10)
        small_ops = None
        for n in (16, 64):
            x = rng.uniform(0, 1, n)
            y = rng.normal(0, 1, n)
            *_, stats = _run_main_kernel(x, y, np.array([0.5]), block_dim=32)
            if small_ops is None:
                small_ops = stats.ops
            else:
                assert stats.ops > 4 * small_ops
