"""Baseline ratchet: multiset matching, persistence, CLI integration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineError, partition
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import Finding


def finding(
    path: str = "pkg/mod.py",
    line: int = 10,
    rule: str = "NUM004",
    message: str = "allocation without dtype",
) -> Finding:
    return Finding(path=path, line=line, col=0, rule_id=rule, message=message)


class TestPartition:
    def test_baselined_finding_is_accepted(self) -> None:
        f = finding()
        new, accepted = partition([f], Baseline.from_findings([f]))
        assert new == [] and accepted == [f]

    def test_unknown_finding_is_new(self) -> None:
        new, accepted = partition([finding()], Baseline())
        assert len(new) == 1 and accepted == []

    def test_line_shift_does_not_resurface(self) -> None:
        """Keys are (path, rule, message) — an edit that moves the finding
        up or down the file must not break the ratchet."""
        base = Baseline.from_findings([finding(line=10)])
        new, accepted = partition([finding(line=99)], base)
        assert new == [] and len(accepted) == 1

    def test_growth_within_a_bucket_is_new(self) -> None:
        """Two identical findings against one baselined entry: multiset
        matching consumes the entry once and reports one new."""
        base = Baseline.from_findings([finding()])
        new, accepted = partition([finding(line=10), finding(line=20)], base)
        assert len(new) == 1 and len(accepted) == 1

    def test_different_rule_same_line_is_new(self) -> None:
        base = Baseline.from_findings([finding(rule="NUM004")])
        new, _ = partition([finding(rule="DTY003", message="cast")], base)
        assert len(new) == 1

    def test_shrinking_debt_is_fine(self) -> None:
        base = Baseline.from_findings([finding(), finding(line=20)])
        new, accepted = partition([finding()], base)
        assert new == [] and len(accepted) == 1


class TestPersistence:
    def test_round_trip(self, tmp_path: Path) -> None:
        base = Baseline.from_findings(
            [finding(), finding(line=20), finding(rule="DTY001", message="m")]
        )
        target = tmp_path / "baseline.json"
        base.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == base.entries
        assert loaded.total == 3

    def test_file_is_sorted_versioned_newline_terminated(
        self, tmp_path: Path
    ) -> None:
        target = tmp_path / "baseline.json"
        Baseline.from_findings([finding(path="b.py"), finding(path="a.py")]).save(
            target
        )
        text = target.read_text()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload["version"] == 1
        paths = [entry["path"] for entry in payload["findings"]]
        assert paths == sorted(paths)

    def test_missing_file_raises(self, tmp_path: Path) -> None:
        with pytest.raises(BaselineError, match="cannot read"):
            Baseline.load(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path: Path) -> None:
        target = tmp_path / "bad.json"
        target.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(target)

    def test_wrong_shape_raises(self, tmp_path: Path) -> None:
        target = tmp_path / "shape.json"
        target.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError, match="unrecognised shape"):
            Baseline.load(target)

    def test_malformed_entry_raises(self, tmp_path: Path) -> None:
        target = tmp_path / "entry.json"
        target.write_text('{"version": 1, "findings": [{"path": "x"}]}')
        with pytest.raises(BaselineError, match="malformed entry"):
            Baseline.load(target)


BAD = "import numpy as np\na = np.empty(3)\n"


class TestCli:
    @pytest.fixture()
    def bad_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "bad.py"
        target.write_text(BAD)
        return target

    def test_update_baseline_writes_and_exits_zero(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        ratchet = tmp_path / "lint-baseline.json"
        assert lint_main(
            ["--update-baseline", str(ratchet), str(bad_file)]
        ) == 0
        assert "1 finding(s) recorded" in capsys.readouterr().out
        assert Baseline.load(ratchet).total == 1

    def test_baselined_run_exits_zero(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        ratchet = tmp_path / "lint-baseline.json"
        lint_main(["--update-baseline", str(ratchet), str(bad_file)])
        capsys.readouterr()
        assert lint_main(["--baseline", str(ratchet), str(bad_file)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "1 baselined finding(s) suppressed" in out

    def test_new_finding_still_fails(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        ratchet = tmp_path / "lint-baseline.json"
        lint_main(["--update-baseline", str(ratchet), str(bad_file)])
        bad_file.write_text(BAD + "b = np.zeros(4)\n")
        assert lint_main(["--baseline", str(ratchet), str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "b = " not in out  # reports the finding, not the source
        assert "NUM004" in out

    def test_sarif_carries_baseline_states(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        ratchet = tmp_path / "lint-baseline.json"
        lint_main(["--update-baseline", str(ratchet), str(bad_file)])
        bad_file.write_text(BAD + "b = np.zeros(4)\n")
        capsys.readouterr()
        assert (
            lint_main(
                [
                    "--baseline",
                    str(ratchet),
                    "--format",
                    "sarif",
                    str(bad_file),
                ]
            )
            == 1
        )
        doc = json.loads(capsys.readouterr().out)
        states = sorted(
            res["baselineState"] for res in doc["runs"][0]["results"]
        )
        assert states == ["new", "unchanged"]

    def test_mutually_exclusive_flags_error(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        with pytest.raises(SystemExit):
            lint_main(
                [
                    "--baseline",
                    str(tmp_path / "a.json"),
                    "--update-baseline",
                    str(tmp_path / "b.json"),
                    str(bad_file),
                ]
            )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unreadable_baseline_errors(
        self, bad_file: Path, tmp_path: Path, capsys
    ) -> None:
        with pytest.raises(SystemExit):
            lint_main(
                ["--baseline", str(tmp_path / "absent.json"), str(bad_file)]
            )
        assert "cannot read baseline" in capsys.readouterr().err

    def test_output_file(self, bad_file: Path, tmp_path: Path) -> None:
        report = tmp_path / "lint.sarif"
        assert (
            lint_main(
                ["--format", "sarif", "-o", str(report), str(bad_file)]
            )
            == 1
        )
        assert json.loads(report.read_text())["version"] == "2.1.0"
