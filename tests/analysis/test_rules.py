"""Data-driven rule tests over the fixture snippets.

Each fixture declares its contract on the first line::

    # lint-fixture: rel=<package-relative-path> expect=<RULE|none>

The test lints the fixture under the declared ``rel`` (so module-scoped
rules see the path they key on) and asserts that the set of triggered
rule ids is *exactly* the expected one — a ``_bad`` fixture must fire
its intended rule and nothing else; a ``_good`` fixture must be clean.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import LintEngine

FIXTURE_DIR = Path(__file__).parent / "fixtures"

_HEADER = re.compile(
    r"#\s*lint-fixture:\s*rel=(?P<rel>\S+)\s+expect=(?P<expect>\S+)"
)


def _load_fixture(path: Path) -> tuple[str, str, set[str]]:
    source = path.read_text(encoding="utf-8")
    match = _HEADER.match(source)
    assert match, f"{path.name}: missing '# lint-fixture:' header"
    expect = match.group("expect")
    expected = set() if expect == "none" else {expect}
    return source, match.group("rel"), expected


def _fixture_paths() -> list[Path]:
    paths = sorted(FIXTURE_DIR.glob("*.py"))
    assert paths, "no fixtures found"
    return paths


@pytest.mark.parametrize(
    "fixture", _fixture_paths(), ids=lambda p: p.stem
)
def test_fixture_triggers_exactly_its_rule(fixture: Path) -> None:
    source, rel, expected = _load_fixture(fixture)
    engine = LintEngine()
    findings = engine.lint_source(source, path=str(fixture), rel=rel)
    triggered = {f.rule_id for f in findings}
    assert triggered == expected, (
        f"{fixture.name}: expected {expected or '{}'}, got "
        f"{triggered or '{}'}:\n"
        + "\n".join(f.format() for f in findings)
    )


def test_every_rule_has_a_bad_and_good_fixture() -> None:
    """The fixture set covers each registered rule both ways."""
    from repro.analysis import RULE_REGISTRY

    stems = {p.stem for p in _fixture_paths()}
    for rule_id in RULE_REGISTRY:
        slug = rule_id.lower()
        assert f"{slug}_bad" in stems, f"missing {slug}_bad fixture"
        assert f"{slug}_good" in stems, f"missing {slug}_good fixture"


def test_bad_fixtures_report_real_positions() -> None:
    """Findings point at real line/col positions inside the fixture."""
    engine = LintEngine()
    for fixture in _fixture_paths():
        source, rel, expected = _load_fixture(fixture)
        if not expected:
            continue
        n_lines = len(source.splitlines())
        for finding in engine.lint_source(source, path=str(fixture), rel=rel):
            assert 1 <= finding.line <= n_lines
            assert finding.col >= 0
            assert finding.message


class TestNum001:
    def test_int_equality_is_fine(self) -> None:
        findings = LintEngine(select=["NUM001"]).lint_source("x = n == 3\n")
        assert findings == []

    def test_negative_float_literal(self) -> None:
        findings = LintEngine(select=["NUM001"]).lint_source(
            "bad = h == -1.5\n"
        )
        assert [f.rule_id for f in findings] == ["NUM001"]

    def test_numpy_nan_constant(self) -> None:
        src = "import numpy as np\nbad = v == np.nan\n"
        findings = LintEngine(select=["NUM001"]).lint_source(src)
        assert [f.rule_id for f in findings] == ["NUM001"]

    def test_one_finding_per_comparison_chain(self) -> None:
        findings = LintEngine(select=["NUM001"]).lint_source(
            "bad = a == 0.0 == b\n"
        )
        assert len(findings) == 1


class TestNum003:
    def test_only_fires_in_hot_path_modules(self) -> None:
        src = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    for x in xs:\n"
            "        buf = np.zeros(3, dtype=np.float64)\n"
        )
        engine = LintEngine(select=["NUM003"])
        hot = engine.lint_source(src, rel="core/fastgrid.py")
        cold = engine.lint_source(src, rel="bench/tables.py")
        assert [f.rule_id for f in hot] == ["NUM003"]
        assert cold == []

    def test_helper_defined_in_function_is_not_in_loop(self) -> None:
        src = (
            "import numpy as np\n"
            "def outer(n):\n"
            "    def helper():\n"
            "        return np.zeros(n, dtype=np.float64)\n"
            "    return helper()\n"
        )
        engine = LintEngine(select=["NUM003"])
        assert engine.lint_source(src, rel="core/fastgrid.py") == []

    def test_loop_inside_nested_helper_is_caught(self) -> None:
        src = (
            "import numpy as np\n"
            "def outer(chunks):\n"
            "    def helper():\n"
            "        for c in chunks:\n"
            "            tmp = np.empty(4, dtype=np.float64)\n"
            "    return helper()\n"
        )
        engine = LintEngine(select=["NUM003"])
        findings = engine.lint_source(src, rel="core/fastgrid.py")
        assert [f.rule_id for f in findings] == ["NUM003"]


class TestNum004:
    def test_positional_dtype_accepted(self) -> None:
        src = "import numpy as np\na = np.zeros(4, np.float64)\n"
        assert LintEngine(select=["NUM004"]).lint_source(src) == []

    def test_aliased_import_resolved(self) -> None:
        src = "from numpy import empty as alloc\na = alloc(4)\n"
        findings = LintEngine(select=["NUM004"]).lint_source(src)
        assert [f.rule_id for f in findings] == ["NUM004"]

    def test_unrelated_empty_not_flagged(self) -> None:
        src = "a = empty(4)\n"
        assert LintEngine(select=["NUM004"]).lint_source(src) == []


class TestGpu001:
    def test_seeded_rng_allowed(self) -> None:
        src = (
            "import numpy as np\n"
            "def k(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        engine = LintEngine(select=["GPU001"])
        assert engine.lint_source(src, rel="gpusim/kernel.py") == []

    def test_only_fires_in_device_modules(self) -> None:
        src = "import time\nt = time.perf_counter()\n"
        engine = LintEngine(select=["GPU001"])
        device = engine.lint_source(src, rel="cuda_port/host.py")
        host = engine.lint_source(src, rel="bench/runner.py")
        assert [f.rule_id for f in device] == ["GPU001"]
        assert host == []


class TestRob001:
    def test_bare_except_flagged(self) -> None:
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        return None\n"
        )
        findings = LintEngine(select=["ROB001"]).lint_source(
            src, rel="bench/tables.py"
        )
        assert [f.rule_id for f in findings] == ["ROB001"]

    def test_broad_tuple_flagged(self) -> None:
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, Exception):\n"
            "        return None\n"
        )
        findings = LintEngine(select=["ROB001"]).lint_source(
            src, rel="bench/tables.py"
        )
        assert [f.rule_id for f in findings] == ["ROB001"]

    def test_reraise_is_allowed(self) -> None:
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise RuntimeError('wrapped') from exc\n"
        )
        engine = LintEngine(select=["ROB001"])
        assert engine.lint_source(src, rel="bench/tables.py") == []

    def test_raise_inside_nested_def_does_not_count(self) -> None:
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        def fail():\n"
            "            raise RuntimeError('never called')\n"
            "        return fail\n"
        )
        findings = LintEngine(select=["ROB001"]).lint_source(
            src, rel="bench/tables.py"
        )
        assert [f.rule_id for f in findings] == ["ROB001"]

    def test_resilience_layer_is_exempt(self) -> None:
        src = (
            "def absorb():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        engine = LintEngine(select=["ROB001"])
        assert engine.lint_source(src, rel="resilience/engine.py") == []

    def test_narrow_handler_is_fine(self) -> None:
        src = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        engine = LintEngine(select=["ROB001"])
        assert engine.lint_source(src, rel="bench/tables.py") == []
