"""CLI behaviour: exit codes, formats, rule listing, repro integration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

BAD = "import numpy as np\na = np.empty(3)\n"
GOOD = "import numpy as np\na = np.empty(3, dtype=np.float64)\n"


@pytest.fixture()
def bad_file(tmp_path: Path) -> Path:
    target = tmp_path / "bad.py"
    target.write_text(BAD)
    return target


@pytest.fixture()
def good_file(tmp_path: Path) -> Path:
    target = tmp_path / "good.py"
    target.write_text(GOOD)
    return target


def test_exit_zero_when_clean(good_file: Path, capsys) -> None:
    assert lint_main([str(good_file)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_exit_one_on_findings(bad_file: Path, capsys) -> None:
    assert lint_main([str(bad_file)]) == 1
    out = capsys.readouterr().out
    assert "NUM004" in out
    assert f"{bad_file}:2:" in out


def test_json_format(bad_file: Path, capsys) -> None:
    assert lint_main(["--format", "json", str(bad_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["total"] == 1
    assert doc["findings"][0]["rule"] == "NUM004"


def test_select_excludes_other_rules(bad_file: Path, capsys) -> None:
    assert lint_main(["--select", "NUM001", str(bad_file)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_ignore_silences_rule(bad_file: Path, capsys) -> None:
    assert lint_main(["--ignore", "NUM004", str(bad_file)]) == 0


def test_list_rules(capsys) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("NUM001", "NUM002", "NUM003", "NUM004", "PAR001", "GPU001"):
        assert rule_id in out


def test_no_paths_errors(capsys) -> None:
    with pytest.raises(SystemExit) as exc:
        lint_main([])
    assert exc.value.code == 2


def test_unknown_rule_id_errors(bad_file: Path, capsys) -> None:
    """A typo'd --select must not silently lint with zero rules."""
    with pytest.raises(SystemExit) as exc:
        lint_main(["--select", "NUM999", str(bad_file)])
    assert exc.value.code == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_unknown_ignore_rule_errors(bad_file: Path, capsys) -> None:
    with pytest.raises(SystemExit) as exc:
        lint_main(["--ignore", "NOPE01", str(bad_file)])
    assert exc.value.code == 2


def test_nonexistent_path_errors(tmp_path: Path, capsys) -> None:
    """A wrong path must not report a clean pass."""
    with pytest.raises(SystemExit) as exc:
        lint_main([str(tmp_path / "no_such_dir")])
    assert exc.value.code == 2
    assert "does not exist" in capsys.readouterr().err


def test_directory_walk(tmp_path: Path, capsys) -> None:
    (tmp_path / "x.py").write_text(BAD)
    (tmp_path / "y.py").write_text(GOOD)
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 finding(s)" in out


def test_repro_cli_lint_subcommand(bad_file: Path, capsys) -> None:
    assert repro_main(["lint", str(bad_file)]) == 1
    assert "NUM004" in capsys.readouterr().out


def test_repro_cli_lint_list_rules(capsys) -> None:
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "GPU001" in capsys.readouterr().out
