"""``--changed``: git-dirty filtering for the pre-commit surface."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis.changed import GitError, changed_files
from repro.analysis.cli import main as lint_main

BAD = "import numpy as np\na = np.empty(3)\n"
GOOD = "import numpy as np\na = np.empty(3, dtype=np.float64)\n"


def git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture()
def repo(tmp_path: Path, monkeypatch) -> Path:
    git(tmp_path, "init", "-q")
    (tmp_path / "committed_bad.py").write_text(BAD)
    (tmp_path / "committed_good.py").write_text(GOOD)
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChangedFiles:
    def test_clean_tree_is_empty(self, repo: Path) -> None:
        assert changed_files() == set()

    def test_untracked_and_modified_are_reported(self, repo: Path) -> None:
        (repo / "fresh.py").write_text(GOOD)
        (repo / "committed_good.py").write_text(GOOD + "\n# touched\n")
        paths = {p.name for p in changed_files()}
        assert paths == {"fresh.py", "committed_good.py"}

    def test_staged_edit_is_reported(self, repo: Path) -> None:
        (repo / "committed_bad.py").write_text(BAD + "\n")
        git(repo, "add", "committed_bad.py")
        assert {p.name for p in changed_files()} == {"committed_bad.py"}

    def test_outside_a_repo_raises(self, tmp_path: Path, monkeypatch) -> None:
        outside = tmp_path / "not-a-repo"
        outside.mkdir()
        monkeypatch.chdir(outside)
        with pytest.raises(GitError):
            changed_files()


class TestCliChanged:
    def test_committed_findings_are_filtered_out(self, repo: Path, capsys) -> None:
        """committed_bad.py has a real NUM004, but it isn't dirty — a
        pre-commit run must pass: the gate blocks only *your* diff."""
        assert lint_main(["--changed", str(repo)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_dirty_bad_file_fails(self, repo: Path, capsys) -> None:
        (repo / "new_bad.py").write_text(BAD)
        assert lint_main(["--changed", str(repo)]) == 1
        out = capsys.readouterr().out
        assert "new_bad.py" in out
        assert "committed_bad.py" not in out

    def test_dirty_good_file_passes(self, repo: Path, capsys) -> None:
        (repo / "new_good.py").write_text(GOOD)
        assert lint_main(["--changed", str(repo)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_without_changed_everything_reports(self, repo: Path, capsys) -> None:
        assert lint_main([str(repo)]) == 1
        assert "committed_bad.py" in capsys.readouterr().out

    def test_changed_outside_repo_errors(
        self, tmp_path: Path, monkeypatch, capsys
    ) -> None:
        outside = tmp_path / "elsewhere"
        outside.mkdir()
        (outside / "f.py").write_text(GOOD)
        monkeypatch.chdir(outside)
        with pytest.raises(SystemExit):
            lint_main(["--changed", str(outside)])
        assert "git" in capsys.readouterr().err

    def test_changed_composes_with_baseline(self, repo: Path, capsys) -> None:
        """--changed narrows first, then the ratchet applies to what's left."""
        (repo / "new_bad.py").write_text(BAD)
        ratchet = repo / "baseline.json"
        assert (
            lint_main(
                ["--changed", "--update-baseline", str(ratchet), str(repo)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            lint_main(["--changed", "--baseline", str(ratchet), str(repo)]) == 0
        )
        assert "baselined finding(s) suppressed" in capsys.readouterr().out
