"""SARIF export: schema validity, golden snapshot, baselineState logic.

The schema check runs against a vendored, trimmed copy of the official
SARIF 2.1.0 schema (``data/sarif-schema-2.1.0-trimmed.json``) — a
faithful subset covering exactly the properties we emit, made *stricter*
(``additionalProperties: false``) so misspelled keys fail instead of
validating vacuously.  No network access is needed.
"""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.analysis.findings import SYNTAX_RULE_ID, Finding
from repro.analysis.rules import RULE_REGISTRY
from repro.analysis.sarif import render_sarif, sarif_document

DATA = Path(__file__).parent / "data"
SCHEMA = json.loads((DATA / "sarif-schema-2.1.0-trimmed.json").read_text())
GOLDEN = DATA / "golden.sarif"

#: Fixed findings (relative paths → cwd-independent normalisation).
FINDINGS = [
    Finding(
        path="src/repro/core/example.py",
        line=12,
        col=4,
        rule_id="NUM004",
        message="allocation without an explicit dtype",
    ),
    Finding(
        path="src/repro/core/example.py",
        line=30,
        col=8,
        rule_id="DTY003",
        message="redundant astype: value is already float64",
    ),
]
BASELINED = [
    Finding(
        path="src/repro/parallel/old.py",
        line=7,
        col=0,
        rule_id="CON002",
        message="WorkerPool without a with/try-finally lifecycle",
    ),
]


def validate(doc: dict) -> None:
    jsonschema.validate(doc, SCHEMA)


def test_empty_report_is_schema_valid() -> None:
    validate(sarif_document([]))


def test_findings_report_is_schema_valid() -> None:
    validate(sarif_document(FINDINGS, baselined=BASELINED))


def test_golden_snapshot() -> None:
    rendered = render_sarif(FINDINGS, baselined=BASELINED)
    assert rendered == GOLDEN.read_text(encoding="utf-8"), (
        "SARIF output drifted from the golden file; if the change is "
        "intentional, regenerate tests/analysis/data/golden.sarif"
    )


def test_golden_file_itself_is_schema_valid() -> None:
    validate(json.loads(GOLDEN.read_text(encoding="utf-8")))


def test_rule_catalogue_covers_registry() -> None:
    doc = sarif_document(FINDINGS)
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = [rule["id"] for rule in rules]
    assert ids == sorted(RULE_REGISTRY)
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]


def test_rule_index_points_at_the_right_rule() -> None:
    doc = sarif_document(FINDINGS)
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    for result in doc["runs"][0]["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_columns_are_one_based() -> None:
    doc = sarif_document(FINDINGS)
    regions = [
        res["locations"][0]["physicalLocation"]["region"]
        for res in doc["runs"][0]["results"]
    ]
    assert [r["startColumn"] for r in regions] == [5, 9]  # cols 4, 8
    assert [r["startLine"] for r in regions] == [12, 30]


def test_baseline_state_only_when_baseline_in_play() -> None:
    without = sarif_document(FINDINGS)
    assert all(
        "baselineState" not in res for res in without["runs"][0]["results"]
    )
    with_baseline = sarif_document(FINDINGS, baselined=BASELINED)
    states = [
        res.get("baselineState") for res in with_baseline["runs"][0]["results"]
    ]
    assert states == ["new", "new", "unchanged"]


def test_syntax_pseudo_rule_declared_when_present() -> None:
    e901 = Finding(
        path="src/repro/bad.py",
        line=1,
        col=0,
        rule_id=SYNTAX_RULE_ID,
        message="syntax error",
    )
    doc = sarif_document([e901])
    validate(doc)
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert rules[-1]["id"] == SYNTAX_RULE_ID
    result = doc["runs"][0]["results"][0]
    assert rules[result["ruleIndex"]]["id"] == SYNTAX_RULE_ID


def test_uris_are_posix_relative_with_base_id() -> None:
    doc = sarif_document(FINDINGS)
    loc = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/core/example.py"
    assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"


def test_render_is_newline_terminated_json() -> None:
    rendered = render_sarif(FINDINGS)
    assert rendered.endswith("\n")
    assert json.loads(rendered)["version"] == "2.1.0"


@pytest.mark.parametrize(
    "mutation",
    [
        {"version": "3.0.0"},
        {"runs": []},
        {"extra": True},
    ],
)
def test_trimmed_schema_actually_rejects(mutation: dict) -> None:
    """Guard the guard: the vendored schema must not validate everything."""
    doc = sarif_document(FINDINGS)
    doc.update(mutation)
    with pytest.raises(jsonschema.ValidationError):
        validate(doc)
