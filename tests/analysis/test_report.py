"""Text and JSON reporter output."""

from __future__ import annotations

import json

from repro.analysis import Finding, render_json, render_text

FINDINGS = [
    Finding(path="a.py", line=3, col=4, rule_id="NUM004", message="no dtype"),
    Finding(path="a.py", line=7, col=0, rule_id="NUM004", message="no dtype"),
    Finding(path="b.py", line=1, col=2, rule_id="NUM001", message="== float"),
]


def test_text_lines_and_tally() -> None:
    text = render_text(FINDINGS)
    lines = text.splitlines()
    assert lines[0] == "a.py:3:4: NUM004 no dtype"
    assert lines[-1] == "3 finding(s) (NUM001: 1, NUM004: 2)"


def test_text_clean() -> None:
    assert render_text([]) == "0 findings"


def test_text_without_summary() -> None:
    text = render_text(FINDINGS, summary=False)
    assert len(text.splitlines()) == len(FINDINGS)


def test_json_document_shape() -> None:
    doc = json.loads(render_json(FINDINGS))
    assert doc["total"] == 3
    assert doc["counts"] == {"NUM001": 1, "NUM004": 2}
    assert doc["findings"][0] == {
        "path": "a.py",
        "line": 3,
        "col": 4,
        "rule": "NUM004",
        "message": "no dtype",
    }
    # rule metadata is embedded so downstream tools can explain findings
    assert "NUM004" in doc["rules"]
    assert doc["rules"]["NUM004"]["summary"]
    assert doc["rules"]["NUM004"]["rationale"]


def test_json_clean_document() -> None:
    doc = json.loads(render_json([]))
    assert doc["total"] == 0
    assert doc["findings"] == []
    assert doc["counts"] == {}
