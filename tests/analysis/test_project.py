"""Whole-program behaviours: broken files, call-graph cycles,
cross-module dtype summaries."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.findings import SYNTAX_RULE_ID
from repro.analysis.project import ProjectIndex, module_name_for


class TestBrokenFiles:
    def test_index_records_syntax_errors_without_raising(self) -> None:
        index = ProjectIndex.build(
            [
                ("a.py", "a.py", "def f(:\n"),
                ("b.py", "b.py", "def g():\n    return 1\n"),
            ]
        )
        assert set(index.broken) == {"a.py"}
        assert "b.g" in index.functions

    def test_lint_paths_reports_e901_and_keeps_linting(
        self, tmp_path: Path
    ) -> None:
        """One unparsable file must not take down the project pass: the
        broken module gets its E901 and every other module still gets
        its real findings."""
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "bad.py").write_text("import numpy as np\na = np.empty(3)\n")
        findings = LintEngine().lint_paths([tmp_path])
        by_rule = {f.rule_id: f for f in findings}
        assert set(by_rule) == {SYNTAX_RULE_ID, "NUM004"}
        assert by_rule[SYNTAX_RULE_ID].path.endswith("broken.py")
        assert by_rule["NUM004"].path.endswith("bad.py")


class TestCallGraphCycles:
    RECURSIVE = (
        "import numpy as np\n"
        "def f(x):\n"
        "    return g(x)\n"
        "def g(x):\n"
        "    return f(x)\n"
        "def h():\n"
        "    a = np.zeros(3, dtype=np.float64)\n"
        "    b = f(a)\n"
        "    return b.astype(np.float64)\n"
    )

    def test_mutual_recursion_terminates(self) -> None:
        """Summaries for a cycle resolve to UNKNOWN (no false DTY003 on
        the astype of an unknowable value) instead of recursing forever."""
        findings = LintEngine(select=["DTY003"]).lint_source(
            self.RECURSIVE, rel="core/cycle.py"
        )
        assert findings == []

    def test_self_recursion_terminates(self) -> None:
        src = (
            "def f(x):\n"
            "    return f(x)\n"
        )
        assert LintEngine().lint_source(src, rel="core/selfloop.py") == []

    def test_cycle_edges_are_in_the_call_graph(self) -> None:
        index = ProjectIndex.build([("m.py", "m.py", self.RECURSIVE)])
        assert "m.g" in index.call_graph["m.f"]
        assert "m.f" in index.call_graph["m.g"]
        assert "m.f" in index.callers["m.g"]


class TestCrossModuleSummaries:
    def test_redundant_cast_proven_through_another_module(
        self, tmp_path: Path
    ) -> None:
        """The tentpole scenario: ``helper.mk()`` provably returns
        float64, so ``mk().astype(np.float64)`` in a *different module*
        is a dead copy — exactly what single-module linting cannot see."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "helper.py").write_text(
            "import numpy as np\n"
            "def mk():\n"
            "    return np.zeros(3, dtype=np.float64)\n"
        )
        (pkg / "use.py").write_text(
            "import numpy as np\n"
            "from repro.core.helper import mk\n"
            "def run():\n"
            "    return mk().astype(np.float64)\n"
        )
        findings = LintEngine(select=["DTY003"]).lint_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["DTY003"]
        assert findings[0].path.endswith("use.py")

    def test_no_finding_when_helper_dtype_differs(self, tmp_path: Path) -> None:
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "helper.py").write_text(
            "import numpy as np\n"
            "def mk():\n"
            "    return np.zeros(3, dtype=np.float32)\n"
        )
        (pkg / "use.py").write_text(
            "import numpy as np\n"
            "from repro.core.helper import mk\n"
            "def run():\n"
            "    return mk().astype(np.float64)\n"
        )
        assert LintEngine(select=["DTY003"]).lint_paths([tmp_path]) == []


def test_module_name_for_anchors() -> None:
    assert module_name_for("x/src/repro/core/fastgrid.py") == "repro.core.fastgrid"
    assert module_name_for("src/repro/core/__init__.py") == "repro.core"
    assert module_name_for("/tmp/q/snippet.py") == "snippet"
