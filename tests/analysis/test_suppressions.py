"""Suppression-comment handling."""

from __future__ import annotations

from repro.analysis import LintEngine
from repro.analysis.suppressions import SuppressionIndex

HOT = "core/fastgrid.py"


def test_line_suppression_silences_that_line_only() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3)  # repro-lint: disable=NUM004\n"
        "b = np.empty(3)\n"
    )
    findings = LintEngine(select=["NUM004"]).lint_source(src)
    assert [f.line for f in findings] == [3]


def test_line_suppression_is_rule_specific() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3)  # repro-lint: disable=NUM001\n"
    )
    findings = LintEngine(select=["NUM004"]).lint_source(src)
    assert [f.rule_id for f in findings] == ["NUM004"]


def test_file_wide_suppression() -> None:
    src = (
        "# repro-lint: disable-file=NUM004\n"
        "import numpy as np\n"
        "a = np.empty(3)\n"
        "b = np.zeros(3)\n"
    )
    assert LintEngine(select=["NUM004"]).lint_source(src) == []


def test_disable_all_on_line() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3); bad = h == 0.5  # repro-lint: disable=all\n"
    )
    assert LintEngine().lint_source(src) == []


def test_multiple_rules_one_comment() -> None:
    src = (
        "import numpy as np\n"
        "def f(xs):\n"
        "    for x in xs:\n"
        "        a = np.empty(3)  # repro-lint: disable=NUM003,NUM004\n"
    )
    assert LintEngine().lint_source(src, rel=HOT) == []


def test_trailing_prose_after_rule_list_is_fine() -> None:
    src = (
        "import time\n"
        "t = time.perf_counter()  # repro-lint: disable=GPU001 - wall clock\n"
    )
    assert LintEngine(select=["GPU001"]).lint_source(src, rel="gpusim/k.py") == []


def test_index_parsing() -> None:
    src = (
        "# repro-lint: disable-file=NUM003\n"
        "x = 1  # repro-lint: disable=NUM001, PAR001\n"
    )
    index = SuppressionIndex.from_source(src)
    assert index.file_wide == {"NUM003"}
    assert index.by_line == {2: {"NUM001", "PAR001"}}


MIXED = (
    "import numpy as np\n"
    "def f(values):\n"
    "    a = np.empty(3){num_sup}\n"
    "    b = np.zeros(3, dtype=np.float64)\n"
    "    return b.astype(np.float64){dty_sup}\n"
)


def _mixed(num_sup: str = "", dty_sup: str = "") -> str:
    return MIXED.format(num_sup=num_sup, dty_sup=dty_sup)


def test_old_and_new_families_fire_side_by_side() -> None:
    findings = LintEngine(select=["NUM004", "DTY003"]).lint_source(
        _mixed(), rel="core/mixed.py"
    )
    assert [f.rule_id for f in findings] == ["NUM004", "DTY003"]


def test_suppressing_new_family_keeps_old_family() -> None:
    findings = LintEngine(select=["NUM004", "DTY003"]).lint_source(
        _mixed(dty_sup="  # repro-lint: disable=DTY003 - proven copy"),
        rel="core/mixed.py",
    )
    assert [f.rule_id for f in findings] == ["NUM004"]


def test_suppressing_old_family_keeps_new_family() -> None:
    findings = LintEngine(select=["NUM004", "DTY003"]).lint_source(
        _mixed(num_sup="  # repro-lint: disable=NUM004"),
        rel="core/mixed.py",
    )
    assert [f.rule_id for f in findings] == ["DTY003"]


def test_file_wide_disable_of_new_family_only() -> None:
    src = "# repro-lint: disable-file=DTY003\n" + _mixed()
    findings = LintEngine(select=["NUM004", "DTY003"]).lint_source(
        src, rel="core/mixed.py"
    )
    assert [f.rule_id for f in findings] == ["NUM004"]


def test_one_comment_spanning_both_families() -> None:
    src = (
        "import numpy as np\n"
        "def f():\n"
        "    b = np.zeros(3, dtype=np.float64)\n"
        "    return np.empty(3), b.astype(np.float64)"
        "  # repro-lint: disable=NUM004,DTY003\n"
    )
    assert (
        LintEngine(select=["NUM004", "DTY003"]).lint_source(
            src, rel="core/mixed.py"
        )
        == []
    )


def test_concurrency_rule_suppression() -> None:
    src = (
        "from repro.parallel.pool import WorkerPool\n"
        "def run():\n"
        "    pool = WorkerPool(2)  # repro-lint: disable=CON002 - caller owns\n"
        "    pool.map(len, [])\n"
    )
    assert (
        LintEngine(select=["CON002"]).lint_source(src, rel="parallel/use.py")
        == []
    )
