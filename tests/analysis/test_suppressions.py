"""Suppression-comment handling."""

from __future__ import annotations

from repro.analysis import LintEngine
from repro.analysis.suppressions import SuppressionIndex

HOT = "core/fastgrid.py"


def test_line_suppression_silences_that_line_only() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3)  # repro-lint: disable=NUM004\n"
        "b = np.empty(3)\n"
    )
    findings = LintEngine(select=["NUM004"]).lint_source(src)
    assert [f.line for f in findings] == [3]


def test_line_suppression_is_rule_specific() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3)  # repro-lint: disable=NUM001\n"
    )
    findings = LintEngine(select=["NUM004"]).lint_source(src)
    assert [f.rule_id for f in findings] == ["NUM004"]


def test_file_wide_suppression() -> None:
    src = (
        "# repro-lint: disable-file=NUM004\n"
        "import numpy as np\n"
        "a = np.empty(3)\n"
        "b = np.zeros(3)\n"
    )
    assert LintEngine(select=["NUM004"]).lint_source(src) == []


def test_disable_all_on_line() -> None:
    src = (
        "import numpy as np\n"
        "a = np.empty(3); bad = h == 0.5  # repro-lint: disable=all\n"
    )
    assert LintEngine().lint_source(src) == []


def test_multiple_rules_one_comment() -> None:
    src = (
        "import numpy as np\n"
        "def f(xs):\n"
        "    for x in xs:\n"
        "        a = np.empty(3)  # repro-lint: disable=NUM003,NUM004\n"
    )
    assert LintEngine().lint_source(src, rel=HOT) == []


def test_trailing_prose_after_rule_list_is_fine() -> None:
    src = (
        "import time\n"
        "t = time.perf_counter()  # repro-lint: disable=GPU001 - wall clock\n"
    )
    assert LintEngine(select=["GPU001"]).lint_source(src, rel="gpusim/k.py") == []


def test_index_parsing() -> None:
    src = (
        "# repro-lint: disable-file=NUM003\n"
        "x = 1  # repro-lint: disable=NUM001, PAR001\n"
    )
    index = SuppressionIndex.from_source(src)
    assert index.file_wide == {"NUM003"}
    assert index.by_line == {2: {"NUM001", "PAR001"}}
