# lint-fixture: rel=bench/tables.py expect=NUM004
"""Deliberate violation: allocators without an explicit dtype."""

import numpy as np
from numpy import empty as alloc


def buffers(n):
    a = np.empty(n)
    b = np.zeros((n, 2))
    c = np.full(n, np.nan)
    d = alloc(n)
    return a, b, c, d
