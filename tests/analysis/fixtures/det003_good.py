# lint-fixture: rel=bagged/plan_case.py expect=none
"""Clean counterpart: the stream is a pure function of (root, index)."""

import numpy as np

from repro.utils.rng import spawn_seed


def draw_indices(n, root_seed, index):
    rng = np.random.default_rng(spawn_seed(root_seed, index))
    return rng.choice(n, size=10, replace=False)
