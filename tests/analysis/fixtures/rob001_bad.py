# lint-fixture: rel=bench/tables.py expect=ROB001
"""Deliberate violation: a broad handler that swallows the failure."""


def run_cell(fn):
    try:
        return fn()
    except Exception:
        return None
