# lint-fixture: rel=bench/tables.py expect=none
"""Clean counterpart: every allocation names its dtype."""

import numpy as np


def buffers(n):
    a = np.empty(n, dtype=np.float64)
    b = np.zeros((n, 2), dtype=np.float32)
    c = np.full(n, np.nan, dtype=np.float64)
    d = np.empty(n, np.float64)
    return a, b, c, d
