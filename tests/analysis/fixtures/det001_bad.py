# lint-fixture: rel=parallel/fanin_case.py expect=DET001
"""Deliberate violation: set iteration (hash order) feeding the strict
row-order fold — the float bit pattern now varies per run."""

from repro.utils.numeric import fold_rows


def fan_in(parts, total):
    remaining = set(parts)
    for part in remaining:
        fold_rows(part, total)
    return total
