# lint-fixture: rel=core/gridcast_case.py expect=none
"""The validated value is used directly; casts only happen where the
target dtype is genuinely a parameter (unknowable, so not redundant)."""

import numpy as np


def _ensure_grid(values):
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64))


def sweep(values):
    grid = _ensure_grid(values)
    return grid


def as_typed(values, dtype):
    return _ensure_grid(values).astype(dtype, copy=False)
