# lint-fixture: rel=bench/programs.py expect=none
"""Clean counterpart: module-level (picklable) work units."""

from repro.parallel import WorkerPool, parallel_sum


def square(v):
    return v * v


def block_sum(items, start, stop):
    return sum(items[start:stop])


def run(items, n):
    with WorkerPool(workers=2) as pool:
        squares = pool.map(square, items)
        blocks = pool.sum_over_blocks(block_sum, n, shared_args=(items,))
    total = parallel_sum(block_sum, n, shared_args=(items,))
    return squares, blocks, total
