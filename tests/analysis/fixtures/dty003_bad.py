# lint-fixture: rel=core/gridcast_case.py expect=DTY003
"""Deliberate violation: the pre-PR-6 backend idiom — a validated
float64 grid re-cast to the dtype it already has (a dead full-array
copy the dataflow engine proves through the helper's summary)."""

import numpy as np


def _ensure_grid(values):
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64))


def sweep(values):
    grid = _ensure_grid(values).astype(float)
    return grid
