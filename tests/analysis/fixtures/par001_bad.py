# lint-fixture: rel=bench/programs.py expect=PAR001
"""Deliberate violation: unpicklable work units go to the pool."""

from repro.parallel import WorkerPool, parallel_sum


def run(items, n):
    def block(start, stop):
        return sum(items[start:stop])

    with WorkerPool(workers=2) as pool:
        squares = pool.map(lambda v: v * v, items)
        blocks = pool.sum_over_blocks(block, n)
    closure_total = parallel_sum(block, n)
    return squares, blocks, closure_total
