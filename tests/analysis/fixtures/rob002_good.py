# lint-fixture: rel=serving/smoke.py expect=none
"""Clean counterpart: every network client call states its deadline."""

import http.client
import urllib.request


def fetch_health(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.read()


def probe(host, port):
    conn = http.client.HTTPConnection(host, port, timeout=None)
    try:
        conn.request("GET", "/healthz")
        return conn.getresponse().status
    finally:
        conn.close()
