# lint-fixture: rel=core/api.py expect=NUM002
"""Deliberate violation: public entry point skips the validation funnel."""

import numpy as np

__all__ = ["select"]


def select(x, y, method="grid"):
    arr_x = np.asarray(x, dtype=np.float64)
    arr_y = np.asarray(y, dtype=np.float64)
    return arr_x, arr_y, method
