# lint-fixture: rel=serving/smoke.py expect=ROB002
"""Deliberate violation: a network call relying on the blocking default."""

import urllib.request


def fetch_health(url):
    with urllib.request.urlopen(url) as resp:
        return resp.read()
