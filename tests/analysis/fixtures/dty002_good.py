# lint-fixture: rel=core/accumulate_case.py expect=none
"""Every term enters the accumulation at one agreed width."""

import numpy as np


def accumulate(parts):
    rows = np.asarray(parts, dtype=np.float64)
    total = np.zeros(4, dtype=np.float64)
    for row in rows:
        total += row
    return total
