# lint-fixture: rel=parallel/collect_case.py expect=none
"""Ordered collection: results come back in submission order."""


def collect(executor, work, items):
    ordered = executor.map(work, items)
    return list(ordered)
