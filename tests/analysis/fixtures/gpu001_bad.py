# lint-fixture: rel=gpusim/kernel.py expect=GPU001
"""Deliberate violation: wall clock + unseeded RNG in a device module."""

import random
import time

import numpy as np


def device_kernel(ctx, out):
    started = time.perf_counter()
    rng = np.random.default_rng()
    noise = np.random.rand()
    jitter = random.random()
    out[ctx.global_id] = started + rng.random() + noise + jitter
