# lint-fixture: rel=parallel/forkorder_case.py expect=none
"""Fork first, thread after; the lock protects only the state read and
is released before the blocking join."""

import threading

from repro.parallel.pool import WorkerPool

_lock = threading.Lock()


def _drain():
    return None


def _work(start, stop):
    return stop - start


def fork_then_telemetry(n):
    pool = WorkerPool(2)
    try:
        drain = threading.Thread(target=_drain)
        drain.start()
        parts = pool.map_over_blocks(_work, n)
        drain.join()
        return parts
    finally:
        pool.close()


def stop_worker(worker):
    with _lock:
        alive = worker.is_alive()
    if alive:
        worker.join()
    return alive
