# lint-fixture: rel=parallel/pooluse_case.py expect=CON002
"""Deliberate violation: close only on the happy path — an exception in
the sweep strands the forked workers until interpreter exit."""

from repro.parallel.pool import WorkerPool


def _work(start, stop):
    return stop - start


def sweep(n):
    pool = WorkerPool(2)
    pool.open()
    parts = pool.map_over_blocks(_work, n)
    pool.close()
    return parts
