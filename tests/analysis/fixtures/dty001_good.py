# lint-fixture: rel=core/precision_case.py expect=none
"""Precision chosen at the boundary: the source dtype is the caller's
business (unknown here), so a float32 request is an explicit opt-in,
not silent narrowing."""

import numpy as np


def to_single(values):
    return np.asarray(values, dtype=np.float32)


def prepare(values, dtype="float64"):
    return np.asarray(values, dtype=dtype)
