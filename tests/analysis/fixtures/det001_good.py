# lint-fixture: rel=parallel/fanin_case.py expect=none
"""Fold inputs arrive in index order; the one unordered fold is over
provably-integer byte counts, which add exactly in any order."""

from repro.utils.numeric import compensated_sum, fold_rows


def fan_in(parts, total):
    for index in sorted(parts):
        fold_rows(parts[index], total)
    return total


def total_bytes(arrays):
    total, _carry = compensated_sum(a.nbytes for a in set(arrays))
    return total
