# lint-fixture: rel=parallel/collect_case.py expect=DET002
"""Deliberate violation: completion-order collection — scheduler noise
becomes data order for everything downstream."""

from concurrent.futures import as_completed


def collect(futures):
    results = []
    for fut in as_completed(futures):
        results.append(fut.result())
    return results
