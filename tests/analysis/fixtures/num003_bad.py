# lint-fixture: rel=core/fastgrid.py expect=NUM003
"""Deliberate violation: allocation inside a hot-path loop."""

import numpy as np


def sweep(chunks, k):
    total = np.zeros(k, dtype=np.float64)
    for chunk in chunks:
        buf = np.zeros(k, dtype=np.float64)
        buf += chunk
        total += buf
    return total
