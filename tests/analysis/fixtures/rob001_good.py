# lint-fixture: rel=bench/tables.py expect=none
"""Broad handlers are fine when they re-raise (classification, not
swallowing); narrow typed handlers are always fine."""

from repro.exceptions import SelectionError


def guarded(fn):
    try:
        return fn()
    except ValueError:
        return None
    except Exception as exc:
        raise SelectionError(f"cell failed: {exc}") from exc
