# lint-fixture: rel=parallel/segment_case.py expect=none
"""Error-path cleanup (try/finally), plus the two exempt shapes:
worker-side attach (no create → no unlink duty) and ownership handoff
(the segment is returned for the caller to manage)."""

from multiprocessing.shared_memory import SharedMemory


def scratch_segment(payload):
    seg = SharedMemory(name="repro-shm-scratch", create=True, size=len(payload))
    try:
        seg.buf[: len(payload)] = payload
        return bytes(seg.buf[: len(payload)])
    finally:
        seg.close()
        seg.unlink()


def attach_segment(name):
    seg = SharedMemory(name=name)
    data = bytes(seg.buf[:8])
    seg.close()
    return data


def open_segment(name, nbytes):
    seg = SharedMemory(name=name, create=True, size=nbytes)
    return seg
