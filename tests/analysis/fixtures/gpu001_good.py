# lint-fixture: rel=gpusim/kernel.py expect=none
"""Clean counterpart: deterministic device code (seeded RNG only)."""

import numpy as np


def device_kernel(ctx, out, seed):
    rng = np.random.default_rng(seed + ctx.global_id)
    out[ctx.global_id] = rng.random()
