# lint-fixture: rel=core/fastgrid.py expect=OBS001
"""Deliberate violation: a span opened inside the per-chunk loop."""

from repro.obs.tracer import current_tracer


def sweep(chunks):
    total = 0.0
    tracer = current_tracer()
    for chunk in chunks:
        with tracer.span("chunk", rows=len(chunk)):
            total += sum(chunk)
    return total
