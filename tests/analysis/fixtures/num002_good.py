# lint-fixture: rel=core/api.py expect=none
"""Clean counterpart: arrays funnel through the validation helpers."""

from repro.utils.validation import check_paired_samples

__all__ = ["select"]


def select(x, y, method="grid"):
    x, y = check_paired_samples(x, y)
    return x, y, method


def _private(x):
    return x
