# lint-fixture: rel=core/fastgrid.py expect=none
"""Clean counterpart: the buffer is hoisted out of the loop."""

import numpy as np


def sweep(chunks, k):
    total = np.zeros(k, dtype=np.float64)
    buf = np.zeros(k, dtype=np.float64)
    for chunk in chunks:
        buf[:] = chunk
        total += buf
    return total
