# lint-fixture: rel=core/accumulate_case.py expect=DTY002
"""Deliberate violation: float32 rows folded into a float64 total."""

import numpy as np


def accumulate(parts):
    single = np.asarray(parts, dtype=np.float32)
    total = np.zeros(4, dtype=np.float64)
    for row in single:
        total += row
    return total
