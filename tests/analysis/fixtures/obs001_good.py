# lint-fixture: rel=core/fastgrid.py expect=none
"""Clean counterpart: one span around the loop, one counter after it."""

from repro.obs.tracer import current_tracer


def sweep(chunks):
    total = 0.0
    tracer = current_tracer()
    with tracer.span("sweep", chunks=len(chunks)):
        for chunk in chunks:
            total += sum(chunk)
    tracer.counter("sweep.chunks", float(len(chunks)))
    return total
