# lint-fixture: rel=serving/handlers.py expect=none
"""Clean: blocking work rides an executor thread, never the loop."""

import asyncio
import time


async def handle_request(runner, payload):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, runner, payload)


def blocking_helper():
    # Sync context: sleeping here is someone else's executor thread.
    time.sleep(0.05)
    return None
