# lint-fixture: rel=parallel/forkorder_case.py expect=CON003
"""Deliberate violations: a telemetry thread started before the pool
forks (the child inherits its lock state frozen), and a blocking join
while holding a lock."""

import threading

from repro.parallel.pool import WorkerPool

_lock = threading.Lock()


def _drain():
    return None


def _work(start, stop):
    return stop - start


def telemetry_then_fork(n):
    drain = threading.Thread(target=_drain)
    drain.start()
    pool = WorkerPool(2)
    try:
        return pool.map_over_blocks(_work, n)
    finally:
        pool.close()
        drain.join()


def stop_worker(worker):
    with _lock:
        worker.join()
