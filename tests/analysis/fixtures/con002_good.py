# lint-fixture: rel=parallel/pooluse_case.py expect=none
"""The two sanctioned lifecycles: with-managed, and the shared-or-owned
idiom with cleanup in a finally."""

from repro.parallel.pool import WorkerPool


def _work(start, stop):
    return stop - start


def sweep(n):
    with WorkerPool(2) as pool:
        return pool.map_over_blocks(_work, n)


def sweep_shared(pool_arg, n):
    active = pool_arg or WorkerPool(2)
    try:
        return active.map_over_blocks(_work, n)
    finally:
        if active is not pool_arg:
            active.close()
