# lint-fixture: rel=bench/report.py expect=none
"""Clean counterpart: tolerance helpers and ordered comparisons."""

from repro.utils.numeric import is_zero, isclose


def pick(score, best):
    if is_zero(score):
        return None
    if score > 0.0 and not isclose(score, best):
        return score
    return best
