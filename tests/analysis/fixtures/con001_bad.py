# lint-fixture: rel=parallel/segment_case.py expect=CON001
"""Deliberate violation: segment cleanup only on the straight-line path
— the first exception strands the name in /dev/shm."""

from multiprocessing.shared_memory import SharedMemory


def scratch_segment(payload):
    seg = SharedMemory(name="repro-shm-scratch", create=True, size=len(payload))
    seg.buf[: len(payload)] = payload
    data = bytes(seg.buf[: len(payload)])
    seg.close()
    seg.unlink()
    return data
