# lint-fixture: rel=core/precision_case.py expect=DTY001
"""Deliberate violation: a provably-float64 value narrowed mid-pipeline."""

import numpy as np


def shrink(values):
    wide = np.asarray(values, dtype=np.float64)
    return wide.astype(np.float32)
