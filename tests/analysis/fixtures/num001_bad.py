# lint-fixture: rel=bench/report.py expect=NUM001
"""Deliberate violation: exact float equality."""


def pick(score, best):
    if score == 0.0:
        return None
    return score != float(best)
