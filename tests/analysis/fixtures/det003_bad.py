# lint-fixture: rel=bagged/plan_case.py expect=DET003
"""Deliberate violation: process-global seeding plus an unseeded
Generator in library code — neither draw replays from a root seed."""

import numpy as np


def draw_indices(n):
    np.random.seed(0)
    rng = np.random.default_rng()
    return rng.choice(n, size=10, replace=False)
