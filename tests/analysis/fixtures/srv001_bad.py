# lint-fixture: rel=serving/handlers.py expect=SRV001
"""Deliberate violation: blocking calls on the serving event loop."""

import time


async def handle_request(pool, payload):
    time.sleep(0.05)  # stalls every in-flight request
    pool.join()  # synchronous pool join on the loop
    return payload
