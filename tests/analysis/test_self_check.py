"""Self-check: the analysis package (and the whole source tree) is clean.

This is the dogfooding gate from the issue: ``repro-lint src/`` must
exit 0, so the suite fails the moment a change to ``src/`` introduces a
violation without either fixing it or justifying a suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, default_rules, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_at_least_six_rules_registered() -> None:
    rules = default_rules()
    assert len(rules) >= 6
    ids = {rule.rule_id for rule in rules}
    assert {
        "NUM001",
        "NUM002",
        "NUM003",
        "NUM004",
        "PAR001",
        "GPU001",
    } <= ids


def test_analysis_package_lints_clean() -> None:
    findings = LintEngine().lint_paths([SRC / "repro" / "analysis"])
    assert findings == [], "\n" + render_text(findings)


def test_whole_source_tree_lints_clean() -> None:
    findings = LintEngine().lint_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_cli_exits_zero_on_src(capsys) -> None:
    from repro.analysis.cli import main

    assert main([str(SRC)]) == 0
    assert "0 findings" in capsys.readouterr().out
