"""Self-check: the analysis package (and the whole source tree) is clean.

This is the dogfooding gate from the issue: ``repro-lint src/`` must
exit 0, so the suite fails the moment a change to ``src/`` introduces a
violation without either fixing it or justifying a suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, default_rules, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_all_rule_families_registered() -> None:
    rules = default_rules()
    assert len(rules) >= 17
    ids = {rule.rule_id for rule in rules}
    assert {
        # single-module families (PRs 1-5)
        "NUM001",
        "NUM002",
        "NUM003",
        "NUM004",
        "PAR001",
        "GPU001",
        "ROB001",
        # whole-program dataflow families (PR 6)
        "DTY001",
        "DTY002",
        "DTY003",
        "DET001",
        "DET002",
        "CON001",
        "CON002",
        "CON003",
    } <= ids


def test_analysis_package_lints_clean() -> None:
    findings = LintEngine().lint_paths([SRC / "repro" / "analysis"])
    assert findings == [], "\n" + render_text(findings)


def test_whole_source_tree_lints_clean() -> None:
    findings = LintEngine().lint_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_cli_exits_zero_on_src(capsys) -> None:
    from repro.analysis.cli import main

    assert main([str(SRC)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_whole_program_pass_stays_inside_runtime_budget() -> None:
    """The dataflow engine (project index + lazy summaries) must stay
    usable as a pre-commit hook: one full pass over src/ in well under
    30 s.  A superlinear regression in summary memoisation or the call
    graph shows up here long before it annoys anyone at the prompt."""
    import time

    start = time.perf_counter()
    LintEngine().lint_paths([SRC])
    elapsed = time.perf_counter() - start
    assert elapsed < 30.0, f"lint of src/ took {elapsed:.1f}s (budget: 30s)"
