"""Engine-level behaviour: path derivation, aliases, syntax errors."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import LintEngine
from repro.analysis.engine import derive_rel_path, iter_python_files
from repro.analysis.findings import SYNTAX_RULE_ID


class TestDeriveRelPath:
    def test_src_layout(self) -> None:
        assert (
            derive_rel_path("/root/repo/src/repro/core/fastgrid.py")
            == "core/fastgrid.py"
        )

    def test_repro_anchor_without_src(self) -> None:
        assert derive_rel_path("repro/gpusim/device.py") == "gpusim/device.py"

    def test_last_anchor_wins(self) -> None:
        assert (
            derive_rel_path("src/other/src/repro/kde/lscv.py")
            == "kde/lscv.py"
        )

    def test_outside_package_uses_filename(self) -> None:
        assert derive_rel_path("/tmp/scratch/snippet.py") == "snippet.py"


class TestAliases:
    def test_import_as(self) -> None:
        engine = LintEngine(select=["NUM004"])
        src = "import numpy as xp\na = xp.zeros(4)\n"
        findings = engine.lint_source(src)
        assert [f.rule_id for f in findings] == ["NUM004"]

    def test_from_import_as(self) -> None:
        engine = LintEngine(select=["NUM004"])
        src = "from numpy import zeros as z\na = z(4)\n"
        findings = engine.lint_source(src)
        assert [f.rule_id for f in findings] == ["NUM004"]

    def test_unimported_name_is_not_numpy(self) -> None:
        engine = LintEngine(select=["NUM004"])
        assert engine.lint_source("a = zeros(4)\n") == []


class TestSyntaxError:
    def test_unparsable_source_yields_e901(self) -> None:
        findings = LintEngine().lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].rule_id == SYNTAX_RULE_ID
        assert findings[0].path == "bad.py"
        assert "cannot parse" in findings[0].message

    def test_e901_not_suppressible(self) -> None:
        src = "# repro-lint: disable-file=all\ndef broken(:\n"
        findings = LintEngine().lint_source(src)
        assert [f.rule_id for f in findings] == [SYNTAX_RULE_ID]


class TestSelection:
    SRC = "import numpy as np\nbad = np.empty(3)\nworse = h == 0.5\n"

    def test_select_restricts_rules(self) -> None:
        findings = LintEngine(select=["NUM001"]).lint_source(self.SRC)
        assert {f.rule_id for f in findings} == {"NUM001"}

    def test_ignore_drops_rules(self) -> None:
        findings = LintEngine(ignore=["NUM004"]).lint_source(self.SRC)
        assert "NUM004" not in {f.rule_id for f in findings}

    def test_findings_sorted(self) -> None:
        findings = LintEngine().lint_source(self.SRC, path="m.py")
        assert findings == sorted(findings)


class TestIterPythonFiles:
    def test_walks_directory_skipping_pycache(self, tmp_path: Path) -> None:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = list(iter_python_files(tmp_path))
        assert [f.name for f in files] == ["a.py"]

    def test_single_file(self, tmp_path: Path) -> None:
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files(target)) == [target]


def test_module_context_public_names() -> None:
    engine = LintEngine()
    src = '__all__ = ["a"]\ndef a():\n    pass\ndef b():\n    pass\n'
    tree = ast.parse(src)
    from repro.analysis.engine import ModuleContext, _annotate_parents

    _annotate_parents(tree)
    ctx = ModuleContext(
        path="m.py", rel="m.py", source=src, tree=tree, config=engine.config
    )
    ctx.exported = frozenset({"a"})
    assert ctx.is_public("a")
    assert not ctx.is_public("b")
