"""Unit and property tests for the blockwise memory-budget planner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import MemoryBudgetError, ValidationError
from repro.utils.membudget import (
    DEFAULT_MEMORY_BUDGET,
    MEMORY_BUDGET_ENV,
    parse_byte_budget,
    plan_blocks,
    resolve_budget,
    rows_for_budget,
)


class TestParseByteBudget:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            (4096, 4096),
            (4096.9, 4096),  # fractional bytes truncate
            ("123", 123),
            ("2GB", 2 * 1024**3),
            ("2GiB", 2 * 1024**3),
            ("512MiB", 512 * 1024**2),
            ("64mb", 64 * 1024**2),
            ("1.5kb", 1536),
            (" 8 KiB ", 8192),
            ("3tb", 3 * 1024**4),
        ],
    )
    def test_accepted_spellings(self, raw, expected) -> None:
        assert parse_byte_budget(raw) == expected

    def test_bare_gb_is_binary(self) -> None:
        # "2GB" means 2 GiB here: a decimal reading would silently
        # under-provision the plan by 7%.
        assert parse_byte_budget("2GB") == parse_byte_budget("2GiB")

    @pytest.mark.parametrize("raw", ["", "GB", "2 light-years", "1e9", "-2GB"])
    def test_unparseable_strings_are_typed_errors(self, raw) -> None:
        with pytest.raises(ValidationError):
            parse_byte_budget(raw)

    @pytest.mark.parametrize("raw", [0, -1, 0.2, "0", "0.0001b"])
    def test_nonpositive_budgets_rejected(self, raw) -> None:
        with pytest.raises(ValidationError, match="positive"):
            parse_byte_budget(raw)

    def test_bool_is_not_a_byte_count(self) -> None:
        # bool subclasses int; accepting True as "1 byte" would hide a
        # caller bug forever.
        with pytest.raises(ValidationError):
            parse_byte_budget(True)

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("1.5GiB", int(1.5 * 1024**3)),
            ("1.5GB", int(1.5 * 1024**3)),  # bare GB is binary too
            ("0.5tb", 1024**4 // 2),
            ("2.75MiB", int(2.75 * 1024**2)),
            ("1.5gIb", int(1.5 * 1024**3)),  # unit case-insensitive
            ("2.9b", 2),  # fractional bytes truncate toward zero
        ],
    )
    def test_fractional_binary_units(self, raw, expected) -> None:
        assert parse_byte_budget(raw) == expected

    @pytest.mark.parametrize(
        "raw",
        [
            "1.5.5GB",   # two decimal points
            "GB2",       # unit before the number
            "two GB",    # spelled-out magnitude
            "1,000",     # thousands separator
            "1_000",     # underscore separator (int() would take it)
            "+2GB",      # explicit sign
            "2 giga",    # unknown unit
            "0x400",     # hex
            "nan",
            "infGiB",
        ],
    )
    def test_more_unparseable_spellings(self, raw) -> None:
        with pytest.raises(ValidationError) as info:
            parse_byte_budget(raw)
        # Typed, self-describing error — not a bare ValueError from int().
        assert info.value.code == "REPRO_VALIDATION"
        assert repr(raw) in str(info.value)


class TestResolveBudget:
    def test_explicit_beats_environment(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "64MiB")
        assert resolve_budget("2GiB") == 2 * 1024**3

    def test_environment_beats_default(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "64MiB")
        assert resolve_budget() == 64 * 1024**2

    def test_default_when_nothing_set(self, monkeypatch) -> None:
        monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
        assert resolve_budget() == DEFAULT_MEMORY_BUDGET

    def test_blank_environment_is_ignored(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "   ")
        assert resolve_budget() == DEFAULT_MEMORY_BUDGET

    def test_bad_environment_value_is_loud(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "lots")
        with pytest.raises(ValidationError):
            resolve_budget()

    def test_explicit_budget_never_consults_environment(self, monkeypatch) -> None:
        # A broken env var must not poison calls that pass their own
        # budget: the argument short-circuits before the env is read.
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "not-a-budget")
        assert resolve_budget("64MiB") == 64 * 1024**2

    def test_invalid_explicit_budget_raises_despite_valid_env(
        self, monkeypatch
    ) -> None:
        # Precedence is strict: an invalid argument is the caller's bug
        # and must not silently fall back to the (valid) environment.
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "64MiB")
        with pytest.raises(ValidationError):
            resolve_budget("lots")

    def test_fractional_env_budget(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "1.5GiB")
        assert resolve_budget() == int(1.5 * 1024**3)

    def test_tab_newline_environment_is_ignored(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "\t\n")
        assert resolve_budget() == DEFAULT_MEMORY_BUDGET


class TestRowsForBudget:
    def test_floor_division(self) -> None:
        assert rows_for_budget(1000, 300) == 3

    def test_clamped_to_maximum(self) -> None:
        assert rows_for_budget(10**9, 8, maximum=500) == 500

    def test_clamped_to_minimum(self) -> None:
        assert rows_for_budget(10, 300, minimum=1) == 1

    def test_nonpositive_per_row_rejected(self) -> None:
        with pytest.raises(ValidationError):
            rows_for_budget(1000, 0)


plans = st.tuples(
    st.integers(1, 5000),        # n
    st.integers(1, 64),          # k
    st.integers(1, 4),           # n_terms
    st.sampled_from([4, 8]),     # itemsize
)


class TestPlanBlocks:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(draw=plans)
    def test_blocks_partition_range_n(self, draw) -> None:
        n, k, n_terms, itemsize = draw
        plan = plan_blocks(n, k, n_terms=n_terms, itemsize=itemsize)
        spans = plan.blocks()
        assert spans[0][0] == 0 and spans[-1][1] == n
        assert len(spans) == plan.n_blocks
        for (_, stop), (nxt, _) in zip(spans, spans[1:]):
            assert stop == nxt  # contiguous, no gap, no overlap
        assert all(0 < hi - lo <= plan.block_rows for lo, hi in spans)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(draw=plans)
    def test_predicted_peak_respects_budget(self, draw) -> None:
        n, k, n_terms, itemsize = draw
        budget = 256 * 1024**2
        plan = plan_blocks(
            n, k, n_terms=n_terms, itemsize=itemsize, budget=budget
        )
        assert plan.predicted_peak_bytes <= budget
        assert plan.budget_bytes == budget

    def test_tiny_budget_raises_typed_error(self) -> None:
        with pytest.raises(MemoryBudgetError) as info:
            plan_blocks(20_000, 32, budget=1000)
        assert info.value.code == "REPRO_MEM_BUDGET"
        assert MEMORY_BUDGET_ENV in str(info.value)

    def test_budget_error_is_a_caller_bug_not_a_fault(self) -> None:
        # An impossible budget must propagate, not trigger degradation:
        # the numpy fallback would blow the very limit the user set.
        from repro.resilience.degrade import is_degradable, is_retryable

        exc = MemoryBudgetError("too small")
        assert isinstance(exc, ValidationError)
        assert not is_degradable(exc)
        assert not is_retryable(exc)

    def test_output_matrix_charges_fixed_bytes(self) -> None:
        bare = plan_blocks(1000, 16)
        shm = plan_blocks(1000, 16, output_matrix=True)
        assert shm.fixed_bytes == bare.fixed_bytes + 1000 * 16 * 8
        assert shm.block_rows <= bare.block_rows

    def test_max_rows_caps_the_block(self) -> None:
        plan = plan_blocks(10_000, 8, max_rows=64)
        assert plan.block_rows <= 64

    def test_block_rows_never_exceed_n(self) -> None:
        plan = plan_blocks(10, 4, budget=10**12)
        assert plan.block_rows == 10
        assert plan.n_blocks == 1

    def test_env_budget_drives_the_plan(self, monkeypatch) -> None:
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "32MiB")
        plan = plan_blocks(20_000, 8)
        assert plan.budget_bytes == 32 * 1024**2
        assert plan.n_blocks > 1

    @pytest.mark.parametrize(
        ("n", "k", "n_terms"), [(0, 4, 2), (10, 0, 2), (10, 4, 0)]
    )
    def test_degenerate_shapes_rejected(self, n, k, n_terms) -> None:
        with pytest.raises(ValidationError):
            plan_blocks(n, k, n_terms=n_terms)

    def test_to_dict_round_trips_the_properties(self) -> None:
        plan = plan_blocks(5000, 12, budget="64MiB")
        snap = plan.to_dict()
        assert snap["n_blocks"] == plan.n_blocks
        assert snap["predicted_peak_bytes"] == plan.predicted_peak_bytes
        assert all(
            isinstance(value, (int, np.integer)) for value in snap.values()
        )
