"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import BandwidthGridError, DataShapeError, ValidationError
from repro.utils.validation import (
    as_float_array,
    check_paired_samples,
    check_positive_int,
    check_probability,
    ensure_bandwidths,
)


class TestAsFloatArray:
    def test_list_coerced_to_contiguous_float64(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(arr, [1.0, 2.0, 3.0])

    def test_scalar_becomes_length_one(self):
        assert as_float_array(3.5).shape == (1,)

    def test_float32_dtype_respected(self):
        assert as_float_array([1.0], dtype=np.float32).dtype == np.float32

    def test_2d_rejected(self):
        with pytest.raises(DataShapeError, match="one-dimensional"):
            as_float_array(np.ones((2, 2)))

    def test_empty_rejected_by_default(self):
        with pytest.raises(DataShapeError, match="empty"):
            as_float_array([])

    def test_empty_allowed_when_requested(self):
        assert as_float_array([], allow_empty=True).size == 0

    def test_nan_rejected(self):
        with pytest.raises(DataShapeError, match="NaN or infinite"):
            as_float_array([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(DataShapeError, match="NaN or infinite"):
            as_float_array([np.inf, 1.0])

    def test_name_appears_in_error(self):
        with pytest.raises(DataShapeError, match="myarg"):
            as_float_array([[1.0]], name="myarg")


class TestCheckPairedSamples:
    def test_valid_pair_passes_through(self):
        x, y = check_paired_samples([1, 2, 3], [4, 5, 6])
        np.testing.assert_array_equal(x, [1, 2, 3])
        np.testing.assert_array_equal(y, [4, 5, 6])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataShapeError, match="same length"):
            check_paired_samples([1, 2, 3], [1, 2])

    def test_min_size_enforced(self):
        with pytest.raises(DataShapeError, match="at least 3"):
            check_paired_samples([1, 2], [1, 2])

    def test_custom_min_size(self):
        x, y = check_paired_samples([1, 2], [1, 2], min_size=2)
        assert x.shape == (2,)


class TestCheckPositiveInt:
    def test_accepts_python_and_numpy_ints(self):
        assert check_positive_int(5, name="n") == 5
        assert check_positive_int(np.int64(7), name="n") == 7

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, name="n")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, name="n")
        with pytest.raises(ValidationError):
            check_positive_int(-3, name="n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, name="n")

    def test_maximum_enforced(self):
        with pytest.raises(ValidationError, match="<= 10"):
            check_positive_int(11, name="n", maximum=10)


class TestCheckProbability:
    def test_valid_values(self):
        assert check_probability(0.95, name="level") == 0.95
        assert check_probability(1.0, name="level") == 1.0

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, name="level")

    def test_above_one_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, name="level")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            check_probability("high", name="level")


class TestEnsureBandwidths:
    def test_sorted_positive_grid_ok(self):
        grid = ensure_bandwidths([0.1, 0.2, 0.5])
        np.testing.assert_array_equal(grid, [0.1, 0.2, 0.5])

    def test_single_value_ok(self):
        assert ensure_bandwidths([0.3]).shape == (1,)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(BandwidthGridError, match="positive"):
            ensure_bandwidths([0.0, 0.1])

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(BandwidthGridError, match="positive"):
            ensure_bandwidths([-0.1, 0.1])

    def test_unsorted_rejected(self):
        with pytest.raises(BandwidthGridError, match="increasing"):
            ensure_bandwidths([0.2, 0.1])

    def test_duplicates_rejected(self):
        with pytest.raises(BandwidthGridError, match="increasing"):
            ensure_bandwidths([0.1, 0.1, 0.2])
