"""Unit and property tests for repro.utils.chunking."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ValidationError
from repro.utils.chunking import chunk_slices, iter_chunks, suggest_chunk_rows


class TestChunkSlices:
    def test_even_division(self):
        assert chunk_slices(10, 5) == [slice(0, 5), slice(5, 10)]

    def test_ragged_tail(self):
        assert chunk_slices(7, 3) == [slice(0, 3), slice(3, 6), slice(6, 7)]

    def test_chunk_larger_than_total(self):
        assert chunk_slices(3, 100) == [slice(0, 3)]

    def test_zero_total_gives_no_slices(self):
        assert chunk_slices(0, 4) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValidationError):
            chunk_slices(-1, 4)

    def test_nonpositive_chunk_rejected(self):
        with pytest.raises(ValidationError):
            chunk_slices(4, 0)

    @given(total=st.integers(0, 500), chunk=st.integers(1, 50))
    def test_slices_partition_range_exactly(self, total, chunk):
        covered = []
        for sl in chunk_slices(total, chunk):
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(total))


class TestIterChunks:
    def test_yields_views_not_copies(self):
        arr = np.arange(10.0)
        for sl, view in iter_chunks(arr, 4):
            view[:] = -1.0
        assert (arr == -1.0).all()

    def test_slices_align_with_views(self):
        arr = np.arange(11.0)
        for sl, view in iter_chunks(arr, 3):
            np.testing.assert_array_equal(view, arr[sl])


class TestSuggestChunkRows:
    def test_within_clamp_bounds(self):
        rows = suggest_chunk_rows(1000)
        assert 16 <= rows <= 8192

    def test_large_n_shrinks_chunk(self):
        small = suggest_chunk_rows(1_000_000)
        large = suggest_chunk_rows(1_000)
        assert small <= large

    def test_budget_scales_rows(self):
        lo = suggest_chunk_rows(10_000, budget_bytes=1 << 20, minimum=1)
        hi = suggest_chunk_rows(10_000, budget_bytes=1 << 30, minimum=1)
        assert hi > lo

    def test_floor_protects_tiny_budgets(self):
        assert suggest_chunk_rows(10**9, minimum=16) == 16

    def test_nonpositive_cols_rejected(self):
        with pytest.raises(ValidationError):
            suggest_chunk_rows(0)

    def test_itemsize_and_working_arrays_matter(self):
        f32 = suggest_chunk_rows(50_000, itemsize=4, minimum=1)
        f64 = suggest_chunk_rows(50_000, itemsize=8, minimum=1)
        assert f32 >= f64
