"""Calibration resolution: one bytes/s source, strict precedence.

The repo root may contain a real ``BENCH_roofline.json`` (committed by
the roofline bench), so every test here pins the working directory to a
``tmp_path`` — otherwise "no artifact anywhere" cells would silently
resolve the committed one through the cwd fallback.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim.timing import TimingModel
from repro.utils import calibration
from repro.utils.calibration import (
    DEFAULT_HOST_BYTES_PER_SECOND,
    ROOFLINE_ARTIFACT,
    calibration_source,
    host_bytes_per_second,
    load_roofline,
    roofline_path,
)
from repro.utils.membudget import estimate_sweep_seconds, plan_blocks


@pytest.fixture(autouse=True)
def isolated_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv(calibration.ROOFLINE_ENV, raising=False)
    return tmp_path


def _write_artifact(directory, peak=20.0e9, streams=None, name=ROOFLINE_ARTIFACT):
    payload = {"host": {}}
    if peak is not None:
        payload["host"]["peak_bytes_per_second"] = peak
    if streams is not None:
        payload["host"]["streams"] = streams
    target = directory / name
    target.write_text(json.dumps(payload))
    return target


class TestPrecedence:
    def test_default_when_nothing_is_configured(self):
        assert host_bytes_per_second() == DEFAULT_HOST_BYTES_PER_SECOND
        assert calibration_source() == "default"

    def test_artifact_in_cwd_beats_default(self, isolated_cwd):
        _write_artifact(isolated_cwd, peak=21.5e9)
        assert host_bytes_per_second() == 21.5e9
        assert calibration_source() == "roofline"

    def test_env_var_beats_cwd(self, isolated_cwd, tmp_path_factory, monkeypatch):
        _write_artifact(isolated_cwd, peak=1.0e9)
        elsewhere = tmp_path_factory.mktemp("roofline-env")
        _write_artifact(elsewhere, peak=33.0e9)
        monkeypatch.setenv(calibration.ROOFLINE_ENV, str(elsewhere))
        assert host_bytes_per_second() == 33.0e9

    def test_explicit_path_beats_env_and_cwd(
        self, isolated_cwd, tmp_path_factory, monkeypatch
    ):
        _write_artifact(isolated_cwd, peak=1.0e9)
        env_dir = tmp_path_factory.mktemp("roofline-env2")
        _write_artifact(env_dir, peak=2.0e9)
        monkeypatch.setenv(calibration.ROOFLINE_ENV, str(env_dir))
        explicit = tmp_path_factory.mktemp("roofline-arg")
        path = _write_artifact(explicit, peak=44.0e9)
        assert host_bytes_per_second(roofline=path) == 44.0e9

    def test_explicit_argument_beats_everything(self, isolated_cwd):
        _write_artifact(isolated_cwd, peak=99.0e9)
        assert host_bytes_per_second(5.0e9) == 5.0e9
        assert calibration_source(5.0e9) == "explicit"

    def test_non_positive_explicit_argument_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            host_bytes_per_second(0.0)
        with pytest.raises(ValidationError):
            host_bytes_per_second(-3.0)


class TestArtifactTolerance:
    def test_missing_file_falls_through(self, isolated_cwd):
        assert load_roofline() is None
        assert host_bytes_per_second() == DEFAULT_HOST_BYTES_PER_SECOND

    def test_malformed_json_falls_through(self, isolated_cwd):
        (isolated_cwd / ROOFLINE_ARTIFACT).write_text("{not json")
        assert load_roofline() is None
        assert calibration_source() == "default"

    def test_non_dict_payload_falls_through(self, isolated_cwd):
        (isolated_cwd / ROOFLINE_ARTIFACT).write_text("[1, 2, 3]")
        assert load_roofline() is None

    def test_schema_skew_falls_through_to_default(self, isolated_cwd):
        (isolated_cwd / ROOFLINE_ARTIFACT).write_text(
            json.dumps({"host": {"peak_bytes_per_second": "fast"}})
        )
        assert host_bytes_per_second() == DEFAULT_HOST_BYTES_PER_SECOND
        assert calibration_source() == "default"

    def test_streams_max_backfills_missing_peak(self, isolated_cwd):
        _write_artifact(
            isolated_cwd,
            peak=None,
            streams={"copy": 17.0e9, "scale": 20.0e9, "add": 5.0e9},
        )
        assert host_bytes_per_second() == 20.0e9
        assert calibration_source() == "roofline"

    def test_directory_argument_resolves_canonical_name(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("roofline-dir")
        target = _write_artifact(directory, peak=12.0e9)
        assert roofline_path(directory) == target
        assert host_bytes_per_second(roofline=directory) == 12.0e9


class TestConsumers:
    """membudget and gpusim timing must take the same calibrated figure."""

    def test_estimate_sweep_seconds_uses_explicit_rate(self):
        plan = plan_blocks(10_000, 64)
        seconds = estimate_sweep_seconds(plan, bytes_per_second=1.0e9)
        assert seconds == plan.predicted_traffic_bytes / 1.0e9

    def test_estimate_sweep_seconds_reads_artifact(self, isolated_cwd):
        _write_artifact(isolated_cwd, peak=2.0e9)
        plan = plan_blocks(10_000, 64)
        assert (
            estimate_sweep_seconds(plan)
            == plan.predicted_traffic_bytes / 2.0e9
        )

    def test_predicted_traffic_bytes_is_rows_times_row_cost(self):
        plan = plan_blocks(1_000, 32)
        assert plan.predicted_traffic_bytes == plan.n * plan.bytes_per_row
        # Each row streams the whole sample, so traffic grows superlinearly.
        larger = plan_blocks(2_000, 32)
        assert larger.predicted_traffic_bytes > 2 * plan.predicted_traffic_bytes

    def test_timing_model_shares_the_source(self, isolated_cwd):
        _write_artifact(isolated_cwd, peak=4.0e9)
        model = TimingModel()
        assert model.host_bytes_per_second == 4.0e9
        assert model.host_transfer_seconds(8.0e9) == 2.0
        explicit = TimingModel(host_bytes_per_second=1.0e9)
        assert explicit.host_transfer_seconds(1.0e9) == 1.0

    def test_timing_model_rejects_negative_nbytes(self):
        with pytest.raises(ValidationError, match="non-negative"):
            TimingModel().host_transfer_seconds(-1.0)

    def test_membudget_and_timing_agree(self, isolated_cwd):
        """The drift guard: both consumers resolve one figure."""
        _write_artifact(isolated_cwd, peak=7.0e9)
        plan = plan_blocks(50_000, 40)
        model = TimingModel()
        assert np.isclose(
            estimate_sweep_seconds(plan),
            model.host_transfer_seconds(plan.predicted_traffic_bytes),
            rtol=0.0,
            atol=0.0,
        )
