"""Tests for the centralised seeded-RNG helpers (repro.utils.rng)."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import (
    derive_rng,
    derive_seed_sequence,
    spawn_rngs,
    spawn_seed,
    spawn_seeds,
)


class TestDeriveSeedSequence:
    def test_deterministic(self):
        a = derive_seed_sequence(7, "site.a")
        b = derive_seed_sequence(7, "site.a")
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_distinct_parts_distinct_streams(self):
        a = derive_seed_sequence(7, "site.a")
        b = derive_seed_sequence(7, "site.b")
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()

    def test_distinct_roots_distinct_streams(self):
        a = derive_seed_sequence(7, "site")
        b = derive_seed_sequence(8, "site")
        assert a.generate_state(4).tolist() != b.generate_state(4).tolist()

    def test_bit_compatible_with_crc32_construction(self):
        # The helper must reproduce the ad-hoc constructions it replaced,
        # so recorded fault/backoff schedules replay unchanged.
        site = "pool.worker"
        old = np.random.SeedSequence([3, zlib.crc32(site.encode()) & 0xFFFFFFFF])
        new = derive_seed_sequence(3, site)
        assert old.generate_state(8).tolist() == new.generate_state(8).tolist()

    def test_int_parts_pass_through(self):
        old = np.random.SeedSequence([11, 0x5E7B])
        new = derive_seed_sequence(11, 0x5E7B)
        assert old.generate_state(8).tolist() == new.generate_state(8).tolist()

    def test_derive_rng_matches_sequence(self):
        rng = derive_rng(5, "x")
        ref = np.random.default_rng(derive_seed_sequence(5, "x"))
        assert rng.random(4).tolist() == ref.random(4).tolist()


class TestSpawnSeeds:
    def test_order_independent(self):
        # Child i is a pure function of (root, i): asking for child 7
        # directly equals taking element 7 of a batch.
        direct = spawn_seed(123, 7)
        batch = spawn_seeds(123, 10)[7]
        assert direct.generate_state(4).tolist() == batch.generate_state(4).tolist()

    def test_children_distinct(self):
        states = {tuple(s.generate_state(2).tolist()) for s in spawn_seeds(0, 50)}
        assert len(states) == 50

    def test_child_differs_from_root(self):
        root = np.random.SeedSequence(9)
        child = spawn_seed(9, 0)
        assert root.generate_state(4).tolist() != child.generate_state(4).tolist()

    def test_spawn_key_construction(self):
        # Pinned to SeedSequence(root, spawn_key=(i,)) — the documented
        # contract that makes draws replayable across versions.
        ref = np.random.SeedSequence(42, spawn_key=(3,))
        assert spawn_seed(42, 3).generate_state(4).tolist() == ref.generate_state(
            4
        ).tolist()

    def test_count_zero_is_empty(self):
        assert spawn_seeds(1, 0) == ()

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            spawn_seed(1, -1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_seeds(1, -2)

    def test_spawn_rngs_match_seeds(self):
        rngs = spawn_rngs(77, 3)
        seeds = spawn_seeds(77, 3)
        for rng, seed in zip(rngs, seeds):
            ref = np.random.default_rng(seed)
            assert rng.random(3).tolist() == ref.random(3).tolist()
