"""Unit tests for repro.utils.timer."""

import time

import pytest

from repro.utils.timer import Stopwatch, TimingRecord, time_callable


class TestStopwatch:
    def test_segment_records_elapsed(self):
        sw = Stopwatch()
        with sw.segment("sleep"):
            time.sleep(0.01)
        assert sw.elapsed("sleep") >= 0.009

    def test_segments_accumulate_on_reentry(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.segment("work"):
                time.sleep(0.003)
        assert sw.elapsed("work") >= 0.008

    def test_unknown_segment_is_zero(self):
        assert Stopwatch().elapsed("missing") == 0.0

    def test_total_sums_all_segments(self):
        sw = Stopwatch()
        sw.segments = {"a": 1.0, "b": 2.0}
        assert sw.total() == pytest.approx(3.0)

    def test_total_exclusion(self):
        sw = Stopwatch()
        sw.segments = {"a": 1.0, "b": 2.0, "setup": 5.0}
        assert sw.total(exclude=("setup",)) == pytest.approx(3.0)

    def test_segment_recorded_even_on_exception(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.segment("boom"):
                raise RuntimeError("x")
        assert "boom" in sw.segments


class TestTimeCallable:
    def test_returns_value_and_record(self):
        value, record = time_callable(lambda: 42, label="answer")
        assert value == 42
        assert isinstance(record, TimingRecord)
        assert record.label == "answer"
        assert record.seconds >= 0.0

    def test_repetitions_run_and_divide(self):
        calls = []
        _, record = time_callable(lambda: calls.append(1), repetitions=5)
        assert len(calls) == 5
        assert record.repetitions == 5
        assert record.per_call == pytest.approx(record.seconds / 5)

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repetitions=0)


class TestTimingRecord:
    def test_per_call_guards_zero_repetitions(self):
        rec = TimingRecord(label="x", seconds=1.0, repetitions=0)
        assert rec.per_call == 1.0


class TestStopwatchConcurrency:
    def test_hammered_segment_loses_no_updates(self, monkeypatch):
        """T threads × R entries must accumulate exactly T·R seconds.

        A deterministic per-thread clock makes every ``segment()`` entry
        measure exactly 1.0 s: each thread sees its own monotonically
        increasing counter, so start/stop always differ by one.  Without
        the lock the ``segments[name] = segments.get(name) + elapsed``
        read-modify-write interleaves and updates vanish; with it the
        total is exact (sums of 1.0 are exact in binary floats).
        """
        import threading

        local = threading.local()

        def flip_clock() -> float:
            local.t = getattr(local, "t", 0.0) + 1.0
            return local.t

        monkeypatch.setattr(
            "repro.utils.timer.time.perf_counter", flip_clock
        )
        sw = Stopwatch()
        threads_n, reps = 8, 200
        barrier = threading.Barrier(threads_n)

        def hammer() -> None:
            barrier.wait()
            for _ in range(reps):
                with sw.segment("shared"):
                    pass

        workers = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert sw.elapsed("shared") == float(threads_n * reps)

    def test_concurrent_distinct_segments(self, monkeypatch):
        import threading

        local = threading.local()

        def flip_clock() -> float:
            local.t = getattr(local, "t", 0.0) + 1.0
            return local.t

        monkeypatch.setattr(
            "repro.utils.timer.time.perf_counter", flip_clock
        )
        sw = Stopwatch()
        reps = 100

        def hammer(name: str) -> None:
            for _ in range(reps):
                with sw.segment(name):
                    pass

        names = [f"seg-{i}" for i in range(4)]
        workers = [
            threading.Thread(target=hammer, args=(name,)) for name in names
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        for name in names:
            assert sw.elapsed(name) == float(reps)
        assert sw.total() == float(4 * reps)
