"""KDE extension: least-squares CV bandwidth for density estimation.

The paper (§II) notes its least-squares cross-validation machinery
"can be applied to ... optimal bandwidth selection for kernel density
estimation".  This example does exactly that on a bimodal synthetic
"income" distribution — the classic case where normal-reference rules of
thumb (Silverman, Scott) oversmooth and merge the modes, while LSCV
keeps them separate:

* select bandwidths by LSCV grid (fast sorted sweep), Silverman, Scott;
* compare integrated squared error against the true density;
* show the estimated density height at the modes and the antimode.

Run:  python examples/kde_income_density.py
"""

import numpy as np

from repro.data import bimodal_normal_sample
from repro.kde import KernelDensity, select_kde_bandwidth


def main() -> None:
    sample = bimodal_normal_sample(n=1200, seed=3)
    x = sample.x
    print(f"bimodal sample: n={sample.n} (modes at -1.5 and +1.5)")

    methods = ("lscv-grid", "silverman", "scott")
    fits: dict[str, KernelDensity] = {}
    print(f"\n{'method':<12} {'h':>9} {'LSCV(h)':>12} {'ISE vs truth':>14}")
    for method in methods:
        sel = select_kde_bandwidth(x, method=method, n_bandwidths=100)
        kde = KernelDensity(bandwidth=sel.bandwidth).fit(x)
        ise = kde.integrated_squared_error(sample.pdf)
        fits[method] = kde
        print(f"{method:<12} {sel.bandwidth:>9.4f} {sel.score:>12.6f} {ise:>14.6f}")

    # Mode separation: the true density dips at 0; oversmoothing fills
    # the valley in.
    probe = np.array([-1.5, 0.0, 1.5])
    truth = sample.true_density(probe)
    print("\ndensity at the modes and the antimode:")
    print(f"{'x':>6} {'truth':>9} " + " ".join(f"{m:>10}" for m in methods))
    for i, xi in enumerate(probe):
        est = " ".join(f"{fits[m].evaluate(np.array([xi]))[0]:>10.4f}" for m in methods)
        print(f"{xi:>6.1f} {truth[i]:>9.4f} {est}")

    lscv_valley = fits["lscv-grid"].evaluate(np.array([0.0]))[0]
    silv_valley = fits["silverman"].evaluate(np.array([0.0]))[0]
    print(
        f"\nvalley depth at x=0: LSCV {lscv_valley:.4f} vs Silverman "
        f"{silv_valley:.4f} (truth {truth[1]:.4f}) — the rule of thumb "
        "oversmooths the antimode, exactly the failure CV selection corrects."
    )


if __name__ == "__main__":
    main()
