"""Multivariate bandwidth selection on a bivariate response surface.

The paper's §I notes the grid becomes "an evenly-spaced grid or matrix
in multivariate contexts".  This example selects a per-dimension
bandwidth vector for a bivariate regression two ways and shows why
anisotropy matters:

* the surface is wiggly in x₀ (sin(8x₀)) and almost flat in x₁, so the
  CV-optimal bandwidths should differ strongly across dimensions;
* the exhaustive product grid (k² dense CV evaluations) and the
  coordinate-descent search (d fast weighted sweeps per cycle) find the
  same structure at very different cost.

Run:  python examples/multivariate_surface.py
"""

import numpy as np

from repro.multivariate import (
    CoordinateDescentSelector,
    ProductGridSelector,
    mv_cv_score,
    mv_nw_estimate,
    mv_rule_of_thumb,
)


def main() -> None:
    rng = np.random.default_rng(23)
    n = 800
    x = rng.uniform(0, 1, (n, 2))
    y = np.sin(8 * x[:, 0]) + 0.2 * x[:, 1] + rng.normal(0, 0.15, n)
    print(f"bivariate sample: n={n}; mean = sin(8*x0) + 0.2*x1 (anisotropic)")

    rot = mv_rule_of_thumb(x)
    print(f"\nrule-of-thumb start    : h = [{rot[0]:.4f}, {rot[1]:.4f}] "
          f"(CV = {mv_cv_score(x, y, rot):.6f})")

    pg = ProductGridSelector(n_bandwidths=10).select(x, y)
    print(f"product grid (10x10)   : h = [{pg.bandwidths[0]:.4f}, "
          f"{pg.bandwidths[1]:.4f}] (CV = {pg.score:.6f}, "
          f"{pg.n_evaluations} dense evaluations, {pg.wall_seconds:.2f}s)")

    cd = CoordinateDescentSelector(n_bandwidths=50).select(x, y)
    print(f"coordinate descent     : h = [{cd.bandwidths[0]:.4f}, "
          f"{cd.bandwidths[1]:.4f}] (CV = {cd.score:.6f}, "
          f"{len(cd.trace)} cycles, {cd.wall_seconds:.2f}s)")
    print("\nanisotropy found: the wiggly dimension gets a bandwidth "
          f"{cd.bandwidths[1] / cd.bandwidths[0]:.1f}x smaller than the flat one")

    # Fit quality at the coordinate-descent optimum.
    probe = np.array([[0.2, 0.5], [0.4, 0.5], [0.6, 0.5], [0.8, 0.5]])
    est, _ = mv_nw_estimate(x, y, probe, cd.bandwidths)
    truth = np.sin(8 * probe[:, 0]) + 0.2 * probe[:, 1]
    print(f"\n{'x0':>5} {'x1':>5} {'estimate':>10} {'truth':>10}")
    for row, e, t in zip(probe, est, truth):
        print(f"{row[0]:>5.2f} {row[1]:>5.2f} {e:>10.4f} {t:>10.4f}")

    # Cost of an isotropic constraint: force h0 = h1 at the best common h.
    common = np.geomspace(0.02, 1.0, 40)
    iso_scores = [mv_cv_score(x, y, np.array([h, h])) for h in common]
    iso_best = float(common[int(np.argmin(iso_scores))])
    print(f"\nbest isotropic h = {iso_best:.4f} gives CV = "
          f"{min(iso_scores):.6f} vs anisotropic {cd.score:.6f} "
          f"({(min(iso_scores) / cd.score - 1) * 100:.1f}% worse)")


if __name__ == "__main__":
    main()
