"""Traced selection: seeing the paper's cost model inside one run.

Tables I and II of the paper report end-to-end run times; §III's
complexity argument says where the time *should* go — per-observation
sort, windowed sweep, reduction.  The tracing layer records exactly that
decomposition as a hierarchical span tree.  This example demonstrates:

* a traced grid search — the phase tree printed with millisecond
  timings, sort/sweep/reduction visible under each row block;
* the numerics counters — empty LOO windows and the running Neumaier
  compensation maximum riding along with the spans;
* proof that observation does not perturb: the traced and untraced CV
  curves compare byte-for-byte equal;
* the Chrome trace-event export, loadable in chrome://tracing or
  https://ui.perfetto.dev.

Run:  python examples/traced_selection.py
"""

import tempfile
from pathlib import Path

from repro import select_bandwidth
from repro.core.fastgrid import cv_scores_fastgrid
from repro.data import sine_dgp
from repro.obs import Tracer, render_tree, use_tracer, write_chrome_trace


def traced_grid_search(x, y) -> Tracer:
    print("=== 1. one grid search, every phase timed ===")
    tracer = Tracer()
    result = select_bandwidth(x, y, n_bandwidths=50, trace=tracer)
    print(f"h* = {result.bandwidth:.6g}  (backend {result.backend})\n")
    print(render_tree(tracer))
    print()
    return tracer


def observation_does_not_perturb(x, y) -> None:
    print("=== 2. tracing on vs off: bit-for-bit identical curves ===")
    import numpy as np

    grid = np.linspace(0.02, 0.4, 50)
    plain = cv_scores_fastgrid(x, y, grid)
    with use_tracer(Tracer()):
        traced = cv_scores_fastgrid(x, y, grid)
    assert plain.tobytes() == traced.tobytes()
    print("cv_scores_fastgrid traced == untraced, byte for byte\n")


def chrome_export(tracer: Tracer) -> None:
    print("=== 3. Chrome trace-event export ===")
    out = Path(tempfile.mkdtemp()) / "trace.json"
    write_chrome_trace(out, tracer)
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    print("load it in chrome://tracing or https://ui.perfetto.dev\n")


def main() -> None:
    sample = sine_dgp(600, seed=0)
    x, y = sample.x, sample.y
    tracer = traced_grid_search(x, y)
    observation_does_not_perturb(x, y)
    chrome_export(tracer)
    payload = tracer.to_payload()
    print(f"(the same {len(payload['spans'])} spans ride along in "
          "SelectionResult.diagnostics['trace'])")


if __name__ == "__main__":
    main()
