"""Quickstart: select an optimal bandwidth and fit a kernel regression.

Reproduces the paper's core use case end to end on its own synthetic
DGP (X ~ U(0,1), Y = 0.5X + 10X² + U(0, 0.5)):

1. draw data;
2. select the CV-optimal bandwidth with the fast sorted grid search;
3. compare against the rule of thumb practitioners typically use;
4. fit the Nadaraya–Watson estimator and score it against the truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NadarayaWatson, select_bandwidth
from repro.data import paper_dgp


def main() -> None:
    sample = paper_dgp(n=2000, seed=42)
    print(f"data: n={sample.n}, DGP={sample.name!r}, domain={sample.domain():.3f}")

    # -- 1. the paper's method: fast sorted grid search over 50 bandwidths
    grid_result = select_bandwidth(sample.x, sample.y, n_bandwidths=50)
    print("\n--- fast grid search (the paper's method) ---")
    print(grid_result.summary())

    # -- 2. the practitioner baseline: normal-reference rule of thumb
    rot_result = select_bandwidth(sample.x, sample.y, method="rule-of-thumb")
    print("\n--- rule of thumb (what the intro says practitioners use) ---")
    print(rot_result.summary())
    worse = (rot_result.score / grid_result.score - 1.0) * 100.0
    print(f"\nrule-of-thumb CV score is {worse:.1f}% worse than the CV optimum")

    # -- 3. fit and evaluate the regression at the selected bandwidth
    model = NadarayaWatson(bandwidth=grid_result.bandwidth).fit(sample.x, sample.y)
    at = np.linspace(0.05, 0.95, 10)
    estimates = model.predict(at)
    truth = sample.true_mean(at)
    print(f"\nNadaraya-Watson fit at h* = {grid_result.bandwidth:.4f} "
          f"(pseudo-R2 = {model.r_squared():.4f})")
    print(f"{'x':>6} {'estimate':>10} {'truth':>10} {'error':>10}")
    for xi, gi, ti in zip(at, estimates, truth):
        print(f"{xi:>6.2f} {gi:>10.4f} {ti:>10.4f} {gi - ti:>10.4f}")

    rmse = float(np.sqrt(np.mean((estimates - truth) ** 2)))
    print(f"\nRMSE against the true conditional mean: {rmse:.4f}")


if __name__ == "__main__":
    main()
