"""Walkthrough of the paper's CUDA program on the GPU simulator.

Retraces §IV step by step:

1. run the full device program (functional mode: every thread of the
   main kernel, the k sum reductions, and the argmin reduction actually
   execute on the simulator) and check it against the sequential
   reference;
2. inspect the §IV-A memory profile and the modelled Tesla-S1070 phase
   breakdown;
3. demonstrate the paper's two hard resource limits: the 8 KB
   constant-memory cap (k <= 2,048) and the 4 GB out-of-memory wall the
   paper reports above n = 20,000.

Run:  python examples/gpu_program_walkthrough.py
"""

import numpy as np

from repro.core.fastgrid import cv_scores_fastgrid_python
from repro.core.grid import BandwidthGrid
from repro.cuda_port import CudaBandwidthProgram, estimate_program_runtime
from repro.data import paper_dgp
from repro.exceptions import ConstantMemoryError, DeviceMemoryError
from repro.gpusim import TESLA_S1070


def main() -> None:
    print(f"device: {TESLA_S1070.name} — {TESLA_S1070.total_cores} cores, "
          f"{TESLA_S1070.global_memory_bytes / 2**30:.0f} GiB global memory, "
          f"{TESLA_S1070.constant_cache_bytes} B constant-cache working set")

    # -- 1. functional execution vs the sequential reference --------------
    sample = paper_dgp(n=150, seed=9)
    grid = BandwidthGrid.for_sample(sample.x, 20)
    program = CudaBandwidthProgram(mode="functional")
    result = program.run(sample.x, sample.y, grid.values)
    reference = cv_scores_fastgrid_python(sample.x, sample.y, grid.values)
    agree = np.allclose(result.scores, reference, rtol=5e-4)
    print(f"\nfunctional run: n={sample.n}, k={len(grid)}")
    print(f"  selected h*      : {result.bandwidth:.4f}")
    print(f"  matches reference: {agree} (float32 device vs float64 host)")
    print(f"  kernel launches  : {len(result.launch_stats)} "
          f"(1 main + {len(grid)} sum reductions + 1 argmin)")
    main_stats = result.launch_stats[0]
    print(f"  main kernel      : {main_stats.grid_dim} block(s) x "
          f"{main_stats.block_dim} threads, {main_stats.ops:,} ops tallied")

    # -- 2. memory profile and modelled Tesla time ------------------------
    print(f"\nmemory report: {result.memory_report}")
    print("\nmodelled Tesla-S1070 time at paper scale (n=20,000, k=50):")
    print(estimate_program_runtime(20000, 50).breakdown())

    # -- 3. the paper's resource limits ------------------------------------
    print("\nresource limits:")
    big = paper_dgp(n=300, seed=1)
    try:
        wide = BandwidthGrid.evenly_spaced(0.001, 1.0, 2049)
        CudaBandwidthProgram(mode="fast").run(big.x, big.y, wide.values)
    except ConstantMemoryError as exc:
        print(f"  k=2049 -> ConstantMemoryError: {exc}")

    rng = np.random.default_rng(0)
    n_oom = 25_000
    x = rng.uniform(size=n_oom)
    y = x + rng.normal(size=n_oom) * 0.1
    try:
        CudaBandwidthProgram(mode="fast").run(
            x, y, BandwidthGrid.for_sample(x, 50).values
        )
    except DeviceMemoryError as exc:
        print(f"  n=25,000 -> DeviceMemoryError: {exc}")
    print("  (n=20,000 fits: two 1.6 GB matrices on a 4 GB device — the "
        "paper's exact ceiling)")


if __name__ == "__main__":
    main()
