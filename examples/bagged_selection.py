"""Bagged subsampled-CV bandwidth selection — huge n, exact grid points.

The exact fast-grid sweep is O(n²·log k): the blocked backend makes
n = 100,000 *fit* (see ``examples/large_n_selection.py``) but it still
takes ~25 minutes.  The bagged selector (arXiv:2105.04134) runs the
same sweep on r seeded subsamples of size m ≪ n and combines the votes
through the known h ~ n^(−1/5) rate — O(r·m²·log k), independent of n
once m is capped.

Shown here:

1. the estimator at a size where the exact answer is cheap to compute —
   grid-matched rescaling means every subsample votes for an *exact*
   point of the full-sample grid, so the bagged h* is compared to the
   exact sweep's in grid points, not float drift;
2. the determinism contract: the same ``(root_seed, r, m, grid)`` plan
   replays bit-for-bit, serial or pooled, on any strict-fold backend;
3. the degenerate case m = n, r = 1 reducing to the exact grid search
   to the bit;
4. a taste of the headline regime: n = 200,000 selected in seconds
   (the exact sweep would take the better part of two hours).

Run:  python examples/bagged_selection.py       (well under a minute)
"""

import time

import numpy as np

from repro.core.api import select_bandwidth
from repro.core.grid import BandwidthGrid


def make_sample(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, n)
    return x, y


def main() -> None:
    # -- 1. votes are exact full-grid points ---------------------------------
    x, y = make_sample(5_000)
    exact = select_bandwidth(x, y)  # the exact fast-grid sweep
    bagged = select_bandwidth(
        x, y, method="bagged", subsamples=10, subsample_size=800, root_seed=0
    )
    grid = BandwidthGrid.for_sample(x, 50)
    print("n = 5,000, r = 10 subsamples of m = 800:")
    print(f"  exact  h* = {exact.bandwidth:.6f}")
    print(f"  bagged h* = {bagged.bandwidth:.6f}")
    print(f"  every subsample vote on the full grid: "
          f"{all(h in grid.values for h in bagged.bandwidths)}")
    rel = abs(bagged.bandwidth - exact.bandwidth) / exact.bandwidth
    print(f"  rel. error vs exact at this (deliberately small) m: {rel:.1%}")

    # -- 2. the plan *is* the result: bit-for-bit replay ---------------------
    again = select_bandwidth(
        x, y, method="bagged", subsamples=10, subsample_size=800, root_seed=0
    )
    pooled = select_bandwidth(
        x, y, method="bagged", subsamples=10, subsample_size=800, root_seed=0,
        subsample_workers=2,
    )
    blocked = select_bandwidth(
        x, y, method="bagged", subsamples=10, subsample_size=800, root_seed=0,
        backend="blocked", memory_budget="64MiB",
    )
    print("\nsame (root_seed, r, m, grid), three execution shapes:")
    print(f"  serial replay identical: "
          f"{again.bandwidth == bagged.bandwidth and np.array_equal(again.scores, bagged.scores)}")
    print(f"  2-worker pool identical: "
          f"{pooled.bandwidth == bagged.bandwidth and np.array_equal(pooled.scores, bagged.scores)}")
    print(f"  blocked backend identical: "
          f"{blocked.bandwidth == bagged.bandwidth and np.array_equal(blocked.scores, bagged.scores)}")

    # -- 3. m = n degenerates to the exact sweep -----------------------------
    degenerate = select_bandwidth(
        x, y, method="bagged", subsamples=1, subsample_size=5_000, root_seed=0
    )
    print(f"\nm = n, r = 1 reduces to the exact grid search: "
          f"{degenerate.bandwidth == exact.bandwidth}")

    # -- 4. the regime the exact sweep cannot reach --------------------------
    n = 200_000
    xl, yl = make_sample(n, seed=42)
    start = time.perf_counter()
    big = select_bandwidth(xl, yl, method="bagged", root_seed=0)
    wall = time.perf_counter() - start
    bag = big.diagnostics["bagged"]
    print(f"\nn = {n:,} with the default plan "
          f"(r = {bag['n_subsamples']}, m = {bag['subsample_size']}):")
    print(f"  h* = {big.bandwidth:.6f} in {wall:.1f} s "
          f"(the exact O(n²) sweep extrapolates to ~100 minutes here)")


if __name__ == "__main__":
    main()
