"""Monte Carlo study: where do the selectors land, and at what cost?

A compact version of the simulation study a referee would ask the paper
for: draw the paper's DGP repeatedly, run each selector on the same
draws, and compare (a) the distribution of selected bandwidths against
the AMISE-optimal target, (b) the integrated squared error of the
resulting fits, and (c) the run-time cost.

Run:  python examples/monte_carlo_study.py
"""

import numpy as np

from repro.core import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
)
from repro.data import paper_dgp
from repro.theory import SelectorStudy, regression_amise_bandwidth


def main() -> None:
    n = 500
    replications = 15
    print(f"Monte Carlo study: paper DGP, n={n}, {replications} replications\n")

    h_amise = regression_amise_bandwidth(
        lambda t: 0.5 * np.asarray(t) + 10.0 * np.asarray(t) ** 2 + 0.25,
        n,
        noise_variance=0.5**2 / 12.0,  # variance of U(0, 0.5)
    )
    print(f"AMISE-optimal bandwidth (known truth): h* = {h_amise:.5f}\n")

    study = SelectorStudy(paper_dgp, n=n, replications=replications, base_seed=100)
    study.run(
        {
            "fast-grid": GridSearchSelector(n_bandwidths=100),
            "fast-grid+refine": GridSearchSelector(n_bandwidths=50, refine_rounds=2),
            "numeric": NumericalOptimizationSelector(
                n_restarts=2, maxiter=60, seed=0
            ),
            "rule-of-thumb": RuleOfThumbSelector(),
        }
    )
    print(study.report())

    grid = study.results["fast-grid"]
    rot = study.results["rule-of-thumb"]
    print(
        f"\nCV selection tracks the asymptotic target "
        f"(mean h = {grid.bandwidths.mean():.4f} vs AMISE {h_amise:.4f}); "
        f"the rule of thumb sits {rot.bandwidths.mean() / h_amise:.1f}x above it "
        f"and pays {rot.mises.mean() / grid.mises.mean():.0f}x the MISE."
    )
    numeric = study.results["numeric"]
    print(
        f"numeric optimisation needs "
        f"{numeric.wall_seconds.mean() / grid.wall_seconds.mean():.0f}x the "
        "run time of the fast grid for the same draws — the gap the paper's "
        "sorting innovation removes, before any GPU is involved."
    )


if __name__ == "__main__":
    main()
