"""An econometric scenario: a nonparametric Engel-curve-style analysis.

The paper's introduction motivates kernel regression as the economist's
tool for summarising relationships "with simple graphs" free of
functional-form assumptions.  This example plays that scenario out on a
synthetic household-expenditure relationship with rising dispersion
(heteroskedasticity), the typical shape of expenditure data:

* CV-optimal bandwidth (fast grid) vs the rule of thumb vs numerical
  optimisation — and what each choice does to the fitted curve;
* leave-one-out cross-validated 95% confidence band (the paper's §II
  extension);
* Nadaraya–Watson vs local linear at the sample boundary, where the
  local-constant estimator is biased.

Run:  python examples/engel_curve_study.py
"""

import numpy as np

from repro import LocalLinear, NadarayaWatson
from repro.core import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
)
from repro.data import heteroskedastic_dgp
from repro.regression import loo_confidence_band


def main() -> None:
    sample = heteroskedastic_dgp(n=1500, seed=11)
    x, y = sample.x, sample.y
    print(f"synthetic expenditure data: n={sample.n} (noise grows with x)")

    # -- bandwidth selection, three ways ---------------------------------
    selectors = {
        "fast grid search": GridSearchSelector(n_bandwidths=100),
        "numerical optimisation": NumericalOptimizationSelector(
            n_restarts=3, seed=0, maxiter=80
        ),
        "rule of thumb": RuleOfThumbSelector(),
    }
    results = {}
    print(f"\n{'selector':<26} {'h':>10} {'CV(h)':>12} {'evals':>7} {'secs':>8}")
    for name, sel in selectors.items():
        res = sel.select(x, y)
        results[name] = res
        print(
            f"{name:<26} {res.bandwidth:>10.4f} {res.score:>12.6f} "
            f"{res.n_evaluations:>7d} {res.wall_seconds:>8.3f}"
        )
    h_star = results["fast grid search"].bandwidth

    # -- confidence band at the CV-optimal bandwidth ----------------------
    at = np.linspace(0.05, 0.95, 19)
    band = loo_confidence_band(x, y, at, h_star, level=0.95)
    truth = sample.true_mean(at)
    coverage = band.coverage_of(truth)
    print(f"\n95% LOO-CV confidence band at h*={h_star:.4f}:")
    print(f"{'x':>6} {'fit':>9} {'lower':>9} {'upper':>9} {'width':>8} {'truth':>9}")
    for i in range(0, len(at), 3):
        print(
            f"{at[i]:>6.2f} {band.estimate[i]:>9.4f} {band.lower[i]:>9.4f} "
            f"{band.upper[i]:>9.4f} {band.width[i]:>8.4f} {truth[i]:>9.4f}"
        )
    print(f"pointwise coverage of the truth in this draw: {coverage:.2%}")
    print("(band widens to the right, tracking the rising noise)")

    # -- boundary bias: local constant vs local linear --------------------
    nw = NadarayaWatson(bandwidth=h_star).fit(x, y)
    ll = LocalLinear(bandwidth=h_star).fit(x, y)
    edge = np.array([0.01, 0.03, 0.5, 0.97, 0.99])
    print("\nboundary behaviour (true mean has slope at the edges):")
    print(f"{'x':>6} {'NW':>9} {'local-lin':>10} {'truth':>9}")
    for xi, a, b, t in zip(edge, nw.predict(edge), ll.predict(edge), sample.true_mean(edge)):
        print(f"{xi:>6.2f} {a:>9.4f} {b:>10.4f} {t:>9.4f}")
    print("(the local linear fit hugs the truth at x -> 0 and x -> 1)")


if __name__ == "__main__":
    main()
