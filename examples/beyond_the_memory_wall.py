"""Past n = 20,000: the paper's future-work fixes in action.

§V: "program 4) cannot run at sample sizes greater than 20,000, because
the memory requirements become prohibitive.  Future work will address
this issue by eliminating the reliance on storing n-by-n matrices in the
GPU's device memory."  §IV-C also notes the machine carries *two* Tesla
S10 modules while the program uses one.

This example implements both follow-ups on the simulator:

1. reproduce the wall: the monolithic program OOMs at n = 25,000;
2. the tiled program runs the same problem in bounded device memory;
3. the dual-GPU split halves the modelled main-kernel time (~1.98x);
4. modelled Tesla run times for the combinations, out to n = 100,000.

Run:  python examples/beyond_the_memory_wall.py
"""

import numpy as np

from repro.core.grid import BandwidthGrid
from repro.cuda_port import (
    CudaBandwidthProgram,
    MultiGpuBandwidthProgram,
    TiledCudaBandwidthProgram,
    default_tile_rows,
    estimate_multi_gpu_runtime,
    estimate_program_runtime,
    estimate_tiled_runtime,
)
from repro.exceptions import DeviceMemoryError


def main() -> None:
    rng = np.random.default_rng(7)
    n = 25_000
    x = rng.uniform(size=n)
    y = 0.5 * x + 10 * x * x + rng.uniform(0, 0.5, size=n)
    grid = BandwidthGrid.for_sample(x, 50)

    # -- 1. the wall --------------------------------------------------------
    print(f"n = {n:,}, k = {len(grid)} on the simulated Tesla S1070 (4 GB):")
    try:
        CudaBandwidthProgram(mode="fast").run(x, y, grid.values)
    except DeviceMemoryError as exc:
        print(f"  monolithic program: DeviceMemoryError — {exc}")

    # -- 2. the tiled fix ----------------------------------------------------
    tile = default_tile_rows(n)
    tiled = TiledCudaBandwidthProgram().run(x, y, grid.values)
    print(f"\n  tiled program     : OK — {tiled.memory_report['tiles']} tiles of "
          f"{tile:,} rows, peak {tiled.memory_report['peak_gb']:.2f} GB, "
          f"h* = {tiled.bandwidth:.4f}")
    print(f"    modelled Tesla time: {tiled.simulated_seconds:.1f} s "
          f"(the n-by-n layout would not run at all)")

    # -- 3. the dual-GPU fix --------------------------------------------------
    smaller = 20_000
    xs, ys = x[:smaller], y[:smaller]
    gs = BandwidthGrid.for_sample(xs, 50)
    dual = MultiGpuBandwidthProgram().run(xs, ys, gs.values)
    t1 = estimate_program_runtime(smaller, 50).total_seconds
    t2 = estimate_multi_gpu_runtime(smaller, 50).total_seconds
    print(f"\n  dual Tesla S10 at n = {smaller:,}: h* = {dual.bandwidth:.4f}, "
          f"modelled {t2:.1f} s vs {t1:.1f} s on one module "
          f"({t1 / t2:.2f}x)")

    # -- 4. modelled scaling table --------------------------------------------
    print("\nmodelled Tesla-S1070 run times (seconds), k = 50:")
    print(f"{'n':>10} {'monolithic':>12} {'tiled':>10} {'tiled+2gpu':>12}")
    for size in (10_000, 20_000, 40_000, 100_000):
        mono = (
            f"{estimate_program_runtime(size, 50).total_seconds:12.1f}"
            if 2 * size * size * 4 < 4 * 1024**3
            else f"{'OOM':>12}"
        )
        tiled_t = estimate_tiled_runtime(size, 50).total_seconds
        both = estimate_multi_gpu_runtime(size, 50).total_seconds * (
            estimate_tiled_runtime(size, 50).total_seconds
            / estimate_program_runtime(size, 50).total_seconds
        )
        print(f"{size:>10,} {mono} {tiled_t:>10.1f} {both:>12.1f}")


if __name__ == "__main__":
    main()
