"""Resilient selection: surviving crashes, resuming mid-sweep, degrading.

The CV objective decomposes into per-row-block partial sums, so the
sweep can absorb worker crashes, resume after a hard stop, and fall
back down the backend chain without changing a single bit of the
answer.  This example demonstrates all three, using the deterministic
fault injector the chaos suite runs on:

* a multicore sweep under injected worker crashes — same bandwidth,
  bit for bit, with the absorbed faults itemised in the report;
* a "power cut" mid-sweep — the retry budget dies, the checkpoint
  survives, and a second run resumes the finished blocks from disk;
* the 4 GB device-memory wall — the gpusim backend dies on
  ``cudaMalloc`` and the engine degrades to the tiled out-of-core
  variant (§V future work) with the bandwidth intact.

Run:  python examples/resilient_selection.py
"""

import tempfile
from pathlib import Path

from repro import select_bandwidth
from repro.data import sine_dgp
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    RetryBudgetExceeded,
    RetryPolicy,
    inject_faults,
)
from repro.resilience.engine import ResilienceConfig, resilient_cv_scores


def crash_storm(x, y) -> None:
    print("=== 1. worker crashes on the multicore backend ===")
    clean = select_bandwidth(x, y, backend="multicore", resilience=True)

    storm = FaultInjector(
        [
            FaultSpec(site="pool.worker", kind="crash", at=(1,)),
            FaultSpec(site="data.block", kind="nan", at=(6,)),
        ],
        seed=7,
    )
    with inject_faults(storm):
        survived = select_bandwidth(x, y, backend="multicore", resilience=True)

    same = survived.bandwidth == clean.bandwidth
    print(f"clean run    : h* = {clean.bandwidth:.6f}")
    print(f"chaotic run  : h* = {survived.bandwidth:.6f}  (bitwise equal: {same})")
    print(survived.resilience.summary(), "\n")


def resume_after_crash(x, y, grid, ckpt: Path) -> None:
    print("=== 2. power cut mid-sweep, then resume ===")
    # One block is doomed: the sweep has 7 blocks, so draw 2 poisons the
    # third block in the first wave and draw 7 poisons its only retry —
    # the run dies, but every *finished* block has already been
    # checkpointed atomically.
    doomed = FaultInjector(
        [FaultSpec(site="data.block", kind="nan", at=(2, 7))], seed=0
    )
    config = ResilienceConfig(
        policy=RetryPolicy(max_retries=1, base_delay=0.0),
        checkpoint=ckpt,
        keep_checkpoint=True,
    )
    with inject_faults(doomed):
        try:
            resilient_cv_scores(x, y, grid, backend="numpy", config=config)
        except RetryBudgetExceeded as exc:
            print(f"first run died: {exc}")
    print(f"checkpoint survives: {ckpt.exists()}")

    # The re-run replays the finished blocks from disk and only computes
    # the one that never landed.
    config = ResilienceConfig(checkpoint=ckpt)
    scores, report = resilient_cv_scores(
        x, y, grid, backend="numpy", config=config
    )
    print(
        f"resumed run: {report.blocks_resumed}/{report.blocks_total} blocks "
        f"replayed from disk, h* = {grid[scores.argmin()]:.6f}\n"
    )


def degrade_past_the_memory_wall(x, y) -> None:
    print("=== 3. the 4 GB wall: gpusim -> gpusim-tiled ===")
    oom = FaultInjector(
        [FaultSpec(site="gpusim.malloc", kind="oom", at=(0,))], seed=0
    )
    with inject_faults(oom):
        result = select_bandwidth(x, y, backend="gpusim", resilience=True)
    rep = result.resilience
    trail = " -> ".join(
        f"{a['backend']}({a['outcome']})" for a in rep.backend_attempts
    )
    print(f"attempts: {trail}")
    print(f"degraded to {rep.backend_used}: h* = {result.bandwidth:.6f}\n")


def main() -> None:
    sample = sine_dgp(n=400, seed=3)
    x, y = sample.x, sample.y

    crash_storm(x, y)

    import numpy as np

    grid = np.linspace(0.005, 0.3, 40)
    with tempfile.TemporaryDirectory() as tmp:
        resume_after_crash(x, y, grid, Path(tmp) / "sweep.ckpt.npz")

    degrade_past_the_memory_wall(x, y)


if __name__ == "__main__":
    main()
