"""Bandwidth selection past the paper's n = 20,000 memory wall — on the host.

The paper's CUDA program dies above n = 20,000 because it materialises
two n-by-n float32 matrices (Section IV-A).  The host-side analogue of
that wall is the m-by-n distance slab a vectorised sweep allocates.  The
``blocked`` backend removes it: a planner picks a row-block size from a
*byte budget*, the sweep computes one block's contributions at a time,
and a strict row-order reduction keeps the CV curve **bit-for-bit
identical** to the all-at-once numpy sweep — any partition, any budget.

Shown here:

1. the bit-for-bit contract, demonstrated at a size small enough to
   compare against the dense sweep directly;
2. what the planner does with a budget (blocks, predicted peak);
3. the paper's wall size, n = 20,000, swept inside a 128 MiB working
   set with the real tracemalloc peak printed next to the prediction;
4. the same selection through the shared-memory worker pool
   (``blocked-shm``), which adds parallelism without changing a bit.

Run:  python examples/large_n_selection.py       (about a minute)
"""

import tracemalloc

import numpy as np

from repro.core.api import select_bandwidth
from repro.core.backends import get_backend
from repro.core.blockwise import plan_for


def make_sample(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = np.sin(2.0 * np.pi * x) + rng.normal(0.0, 0.3, n)
    return x, y


def main() -> None:
    # -- 1. the contract: blocked == numpy, to the last bit ------------------
    x, y = make_sample(3_000)
    grid = np.linspace(0.01, 0.30, 20)
    dense = get_backend("numpy")(x, y, grid, "epanechnikov")
    print("bit-for-bit at n = 3,000 (vs the all-at-once numpy sweep):")
    for rows in (1, 999, 3_000):
        blocked = get_backend("blocked")(
            x, y, grid, "epanechnikov", block_rows=rows
        )
        same = blocked.tobytes() == dense.tobytes()
        print(f"  block_rows={rows:>5}: identical bytes = {same}")

    # -- 2. what a budget buys ----------------------------------------------
    n = 20_000
    print(f"\nplanning n = {n:,}, k = 15 under different budgets:")
    for budget in ("64MiB", "256MiB", "2GiB"):
        plan = plan_for(n, 15, "epanechnikov", memory_budget=budget)
        print(
            f"  {budget:>7}: {plan.n_blocks:>4} blocks of "
            f"{plan.block_rows:>5} rows, predicted peak "
            f"{plan.predicted_peak_bytes / 1024**2:7.1f} MiB"
        )

    # -- 3. the paper's wall size inside 128 MiB -----------------------------
    x, y = make_sample(n, seed=42)
    plan = plan_for(n, 15, "epanechnikov", memory_budget="128MiB")
    tracemalloc.start()
    try:
        result = select_bandwidth(
            x, y, backend="blocked", n_bandwidths=15, memory_budget="128MiB"
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    print(f"\nn = {n:,} selection under a 128 MiB budget:")
    print(f"  h* = {result.bandwidth:.5f}  CV(h*) = {result.score:.6f}")
    print(
        f"  measured peak {peak / 1024**2:.1f} MiB vs predicted "
        f"{plan.predicted_peak_bytes / 1024**2:.1f} MiB "
        f"(a dense sweep would need ~{n * n * 8 / 1024**3:.1f} GiB)"
    )

    # -- 4. the shared-memory pool: parallel, still bit-identical ------------
    xs, ys = make_sample(4_000, seed=7)
    serial = select_bandwidth(
        xs, ys, backend="blocked", n_bandwidths=12
    )
    pooled = select_bandwidth(
        xs, ys, backend="blocked-shm", n_bandwidths=12, workers=2
    )
    print("\nblocked-shm (2 workers, zero-copy segments) vs blocked:")
    print(
        f"  same h*: {pooled.bandwidth == serial.bandwidth}, "
        "same scores bytes: "
        f"{np.asarray(pooled.scores).tobytes() == np.asarray(serial.scores).tobytes()}"
    )


if __name__ == "__main__":
    main()
