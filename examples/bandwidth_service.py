"""Bandwidth selection as a service: cache, registry, micro-batching.

The paper's sweep is O(n² log n) per dataset — but it is a *pure
function* of its inputs, so a serving layer can amortise nearly all of
it.  This example walks the three layers the ``repro.serving`` package
adds on top of :func:`repro.select_bandwidth`:

* the **artifact cache** — a second selection on the same data is a
  SHA-256 fingerprint lookup, bit-for-bit identical to the cold run;
* the **model registry** — fit once, predict many, with the bandwidth's
  provenance attached;
* the **serving app** — the JSON-over-HTTP surface behind
  ``repro-bench serve``, driven here in-process: warm ``/select`` hits
  the cache, concurrent ``/predict`` requests coalesce into one
  estimator pass.

Run:  python examples/bandwidth_service.py
"""

import asyncio
import time

from repro.data import paper_dgp
from repro.serving import (
    ArtifactCache,
    ModelRegistry,
    SchedulerConfig,
    ServingApp,
    ServingConfig,
)


def cached_selection(x, y) -> ArtifactCache:
    print("=== 1. the artifact cache: pay the sweep once ===")
    from repro import select_bandwidth

    cache = ArtifactCache(None)  # memory-only; pass a dir to survive restarts
    t0 = time.perf_counter()
    cold = select_bandwidth(x, y, n_bandwidths=50, cache=cache)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = select_bandwidth(x, y, n_bandwidths=50, cache=cache)
    warm_s = time.perf_counter() - t0
    print(f"cold: h* = {cold.bandwidth:.6f}  ({cold_s * 1e3:8.2f} ms, full sweep)")
    print(f"warm: h* = {warm.bandwidth:.6f}  ({warm_s * 1e3:8.2f} ms, fingerprint hit)")
    print(f"bit-for-bit: {warm.bandwidth == cold.bandwidth}")
    print(f"hit rate   : {cache.stats.hit_rate:.2f}\n")
    return cache


def fit_once_predict_many(x, y, cache) -> None:
    print("=== 2. the registry: selection provenance rides the model ===")
    registry = ModelRegistry(cache=cache)
    record = registry.fit("engel", x, y, n_bandwidths=50)
    prov = record.provenance
    print(f"model 'engel': h* = {record.bandwidth:.6f}")
    print(f"  selected by : {prov['method']} [{prov['backend']}]")
    print(f"  cache       : {prov['cache']} (the sweep above was reused)")
    print(f"  fingerprint : {prov['fingerprint'][:16]}...\n")


async def drive_the_app(x, y) -> None:
    print("=== 3. the serving app: what `repro-bench serve` exposes ===")
    app = ServingApp(
        ServingConfig(
            port=0,
            predict=SchedulerConfig(max_batch_size=16, max_wait_ms=20.0),
        )
    )
    app.startup()
    body = {"x": list(x), "y": list(y), "n_bandwidths": 25, "register": "svc"}
    _, cold = await app.handle("POST", "/select", dict(body))
    _, warm = await app.handle("POST", "/select", dict(body))
    print(f"POST /select  twice: cache_hit = {cold['cache_hit']}, then "
          f"{warm['cache_hit']}")

    answers = await asyncio.gather(*[
        app.handle("POST", "/predict", {"model": "svc", "at": [0.1 * (i + 1)]})
        for i in range(8)
    ])
    occupancy = app.metrics.snapshot()["predict_batch_occupancy"]
    print(f"POST /predict x8 concurrently: all "
          f"{sum(1 for s, _ in answers if s == 200)} ok, "
          f"max batch occupancy {occupancy['max']:.0f} "
          "(coalesced into shared estimator passes)")

    _, text = await app.handle("GET", "/metrics", None)
    hit_line = next(
        line for line in text.splitlines()
        if line.startswith("repro_cache_hit_rate")
    )
    print(f"GET  /metrics: {hit_line}")
    await app.shutdown()


def main() -> None:
    sample = paper_dgp(1000, seed=42)
    cache = cached_selection(sample.x, sample.y)
    fit_once_predict_many(sample.x, sample.y, cache)
    asyncio.run(drive_the_app(sample.x, sample.y))
    print("\nsame surface over TCP:  repro-bench serve --dgp paper --n 1000")


if __name__ == "__main__":
    main()
