"""The compiled hot path: JIT when you have it, identical bits when you don't.

The ``compiled`` backend runs the fast-grid sweep as a scalar loop that
numba can ``njit`` — and that falls back to the vectorised numpy
reference, byte for byte, on machines without numba (like this one, if
you haven't installed the ``.[compiled]`` extra).  This example walks
the whole story:

* what the capability probe decided for this process, and how to
  overrule it (``REPRO_COMPILED=0``);
* float64 curves bit-identical across ``numpy`` / ``compiled`` /
  ``blocked-compiled`` — the property that lets the serving cache share
  warm entries between jitted and numba-less replicas;
* an injected mid-sweep JIT loss degrading ``compiled -> numpy``
  without changing a single bit;
* the roofline calibration every time estimate resolves through.

Run:  python examples/compiled_selection.py
"""

import numpy as np

import repro.compiled as compiled
from repro import select_bandwidth
from repro.data import sine_dgp
from repro.resilience import FaultInjector, FaultSpec, inject_faults
from repro.serving.cache import ArtifactCache
from repro.utils.calibration import calibration_source, host_bytes_per_second
from repro.utils.membudget import estimate_sweep_seconds, plan_blocks


def probe_report() -> None:
    print("=== 1. what backs the compiled engine here? ===")
    cap = compiled.capability()
    print(f"implementation : {cap.implementation}")
    print(f"reason         : {cap.reason}")
    print("(REPRO_COMPILED=0 forces the numpy fallback without importing)\n")


def identical_bits(x, y) -> None:
    print("=== 2. three backends, one bit pattern ===")
    results = {
        name: select_bandwidth(x, y, backend=name, n_bandwidths=40)
        for name in ("numpy", "compiled", "blocked-compiled")
    }
    ref = results["numpy"]
    for name, result in results.items():
        same = result.scores.tobytes() == ref.scores.tobytes()
        print(f"{name:>17}: h* = {result.bandwidth:.6f}  bitwise == numpy: {same}")
    print()


def shared_cache_family(x, y) -> None:
    print("=== 3. a warm compiled entry serves a numpy request ===")
    cache = ArtifactCache(None)  # memory-only, for the demo
    cold = select_bandwidth(x, y, backend="compiled", n_bandwidths=40, cache=cache)
    warm = select_bandwidth(x, y, backend="numpy", n_bandwidths=40, cache=cache)
    print(f"cold compiled run : h* = {cold.bandwidth:.6f}")
    print(
        f"warm numpy run    : h* = {warm.bandwidth:.6f}  "
        f"(cache: {warm.diagnostics['cache']})"
    )
    print("byte-identity is what makes sharing one fingerprint family safe\n")


def jit_loss_degrades(x, y) -> None:
    print("=== 4. the JIT dies mid-sweep; nobody notices ===")
    clean = select_bandwidth(x, y, backend="compiled", resilience=True)
    storm = FaultInjector(
        [FaultSpec(site="compiled.jit", kind="nojit", at=(0,))], seed=0
    )
    with inject_faults(storm):
        survived = select_bandwidth(x, y, backend="compiled", resilience=True)
    rep = survived.resilience
    same = survived.scores.tobytes() == clean.scores.tobytes()
    print(f"degraded to {rep.backend_used}: h* = {survived.bandwidth:.6f}")
    print(f"curve bitwise equal to the clean compiled run: {same}\n")


def calibrated_estimate(n: int) -> None:
    print("=== 5. one bytes/s figure for every estimate ===")
    rate = host_bytes_per_second()
    plan = plan_blocks(n, 50)
    print(f"calibration source : {calibration_source()}")
    print(f"host bandwidth     : {rate / 1e9:.2f} GB/s")
    print(
        f"n = {n}: predicted traffic {plan.predicted_traffic_bytes / 1e9:.2f} GB"
        f" -> >= {estimate_sweep_seconds(plan):.2f} s at streaming speed"
    )
    print("(run benchmarks/bench_roofline.py to replace the default with a")
    print(" measured peak — the artifact is picked up from the cwd)\n")


def main() -> None:
    sample = sine_dgp(n=400, seed=5)
    x, y = np.asarray(sample.x), np.asarray(sample.y)

    probe_report()
    identical_bits(x, y)
    shared_cache_family(x, y)
    jit_loss_degrades(x, y)
    calibrated_estimate(n=20_000)


if __name__ == "__main__":
    main()
