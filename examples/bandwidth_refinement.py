"""Grid refinement: precision beyond the 2,048-bandwidth cap.

§IV-A: "If a higher level of precision is necessary, the user can run
the optimization code multiple times with progressively smaller ranges
of possible bandwidths."  This example runs that workflow:

* a coarse k=50 grid (grid spacing limits precision to domain/50);
* the same search with 3 refinement rounds, each re-centred on the
  incumbent optimum with a 10x narrower range;
* a numerical optimiser as the precision yardstick — and a demonstration
  of *why* the paper distrusts it (restart-to-restart dispersion on a
  non-concave objective).

Run:  python examples/bandwidth_refinement.py
"""

import numpy as np

from repro.core import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    cv_score,
)
from repro.data import sine_dgp


def main() -> None:
    sample = sine_dgp(n=800, seed=21)
    x, y = sample.x, sample.y
    print(f"sine DGP, n={sample.n}: CV optimum is interior and sharp\n")

    coarse = GridSearchSelector(n_bandwidths=50).select(x, y)
    refined = GridSearchSelector(n_bandwidths=50, refine_rounds=3).select(x, y)
    print(f"{'selector':<28} {'h':>12} {'CV(h)':>14} {'evals':>7}")
    print(f"{'coarse grid (k=50)':<28} {coarse.bandwidth:>12.6f} "
          f"{coarse.score:>14.8f} {coarse.n_evaluations:>7d}")
    print(f"{'refined grid (3 rounds)':<28} {refined.bandwidth:>12.6f} "
          f"{refined.score:>14.8f} {refined.n_evaluations:>7d}")
    for step in refined.diagnostics["refinements"]:
        print(f"    round {step['round']}: h={step['h']:.6f}  CV={step['score']:.8f}")

    # Numerical optimisation: precise when it lands in the right basin,
    # but restart-dependent — run each restart separately to show the
    # dispersion the paper's §III warns about.
    print("\nnumerical optimisation, one restart at a time:")
    optima = []
    for seed in range(5):
        res = NumericalOptimizationSelector(
            n_restarts=1, seed=seed, maxiter=120
        ).select(x, y)
        optima.append(res.bandwidth)
        print(f"    seed {seed}: h={res.bandwidth:.6f}  CV={res.score:.8f}")
    spread = max(optima) - min(optima)
    print(f"restart spread: {spread:.6f} "
          f"({spread / refined.bandwidth * 100:.1f}% of the refined optimum)")
    print("\nthe refined grid reaches optimiser-level precision while "
          "staying deterministic and global on its range:")
    print(f"    CV at refined h : {cv_score(x, y, refined.bandwidth):.8f}")
    print(f"    CV at best seed : {min(cv_score(x, y, h) for h in optima):.8f}")


if __name__ == "__main__":
    main()
