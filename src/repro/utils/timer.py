"""Wall-clock timing helpers used by the benchmark harness.

The paper times its R programs with ``system.time`` (excluding data
generation) and its C/CUDA programs with the shell ``time`` command
(including data generation).  :class:`Stopwatch` gives the harness one
mechanism for both conventions: segments can be named and summed
selectively, so a bench can report "with" and "without" setup cost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar
from contextlib import contextmanager

__all__ = ["Stopwatch", "TimingRecord", "time_callable"]

T = TypeVar("T")


@dataclass(frozen=True)
class TimingRecord:
    """Result of timing one callable: value, elapsed seconds, repetitions."""

    label: str
    seconds: float
    repetitions: int = 1

    @property
    def per_call(self) -> float:
        """Mean seconds per repetition."""
        return self.seconds / max(self.repetitions, 1)


@dataclass
class Stopwatch:
    """Accumulates named timing segments.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.segment("generate"):
    ...     data = list(range(10))
    >>> with sw.segment("compute"):
    ...     total = sum(data)
    >>> sw.total() >= sw.elapsed("compute")
    True
    """

    segments: dict[str, float] = field(default_factory=dict)
    # Concurrent callers (per-block spans fanned out through WorkerPool
    # collector threads) accumulate into the same segment name; the
    # read-modify-write below must be atomic or updates are lost.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def segment(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulates on re-entry)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.segments[name] = self.segments.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 if never entered)."""
        with self._lock:
            return self.segments.get(name, 0.0)

    def total(self, *, exclude: tuple[str, ...] = ()) -> float:
        """Sum of all segments, optionally excluding some by name."""
        with self._lock:
            return sum(v for k, v in self.segments.items() if k not in exclude)


def time_callable(
    func: Callable[[], T],
    *,
    label: str = "call",
    repetitions: int = 1,
) -> tuple[T, TimingRecord]:
    """Run ``func`` ``repetitions`` times, return last value and timing.

    The paper runs each (program, n, k) combination five times back to back
    to keep system-load conditions comparable; the harness uses this helper
    with ``repetitions=5`` for the same protocol.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    start = time.perf_counter()
    value: T
    for _ in range(repetitions):
        value = func()
    seconds = time.perf_counter() - start
    return value, TimingRecord(label=label, seconds=seconds, repetitions=repetitions)
