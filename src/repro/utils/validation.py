"""Input validation helpers.

All public entry points of the library funnel their array arguments through
these helpers so that error messages are uniform and the numerical code can
assume clean, contiguous, float ndarrays (a guide idiom: validate once at
the boundary, compute without checks in the hot loops).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.exceptions import (
    BandwidthGridError,
    DataShapeError,
    ValidationError,
)

__all__ = [
    "as_float_array",
    "check_paired_samples",
    "check_positive_int",
    "check_probability",
    "ensure_bandwidths",
]


def as_float_array(
    values: Any,
    *,
    name: str = "array",
    dtype: np.dtype | type = np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``values`` to a 1-D contiguous float array.

    Parameters
    ----------
    values:
        Anything ``np.asarray`` accepts.
    name:
        Argument name used in error messages.
    dtype:
        Target floating dtype (``float64`` default; the GPU path uses
        ``float32`` to mirror the paper's single-precision constraint).
    allow_empty:
        Permit zero-length arrays.

    Raises
    ------
    DataShapeError
        If the result is not 1-D, is empty when not allowed, or contains
        non-finite entries.
    """
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise DataShapeError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    if not allow_empty and arr.size == 0:
        raise DataShapeError(f"{name} must not be empty")
    if arr.size and not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_paired_samples(
    x: Any,
    y: Any,
    *,
    min_size: int = 3,
    dtype: np.dtype | type = np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a regression sample ``(x, y)``.

    Returns clean contiguous arrays of equal length ``n >= min_size``.
    Leave-one-out cross-validation needs at least 3 points: with 2, every
    leave-one-out fit rests on a single neighbour and the CV curve is
    degenerate in ``h``.
    """
    x_arr = as_float_array(x, name="x", dtype=dtype)
    y_arr = as_float_array(y, name="y", dtype=dtype)
    if x_arr.shape[0] != y_arr.shape[0]:
        raise DataShapeError(
            "x and y must have the same length, got "
            f"{x_arr.shape[0]} and {y_arr.shape[0]}"
        )
    if x_arr.shape[0] < min_size:
        raise DataShapeError(
            f"need at least {min_size} observations, got {x_arr.shape[0]}"
        )
    return x_arr, y_arr


def check_positive_int(value: Any, *, name: str, maximum: int | None = None) -> int:
    """Validate that ``value`` is a positive integer (optionally bounded)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    ivalue = int(value)
    if ivalue <= 0:
        raise ValidationError(f"{name} must be positive, got {ivalue}")
    if maximum is not None and ivalue > maximum:
        raise ValidationError(f"{name} must be <= {maximum}, got {ivalue}")
    return ivalue


def check_probability(value: Any, *, name: str) -> float:
    """Validate a probability-like float in ``(0, 1]``."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float, got {value!r}") from exc
    if not 0.0 < fvalue <= 1.0:
        raise ValidationError(f"{name} must lie in (0, 1], got {fvalue}")
    return fvalue


def ensure_bandwidths(bandwidths: Any | Sequence[float]) -> np.ndarray:
    """Validate a bandwidth grid: 1-D, positive, strictly increasing.

    The fast grid search relies on the grid being sorted ascending — the
    running sums roll forward from smaller to larger bandwidths — so the
    ordering is part of the contract, not a convenience.
    """
    grid = as_float_array(bandwidths, name="bandwidths")
    if np.any(grid <= 0.0):
        raise BandwidthGridError("bandwidths must all be positive")
    if grid.size > 1 and np.any(np.diff(grid) <= 0.0):
        raise BandwidthGridError("bandwidths must be strictly increasing")
    return grid
