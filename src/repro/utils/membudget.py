"""Host-memory budget planner for the blockwise out-of-core sweep.

The paper's own ceiling is memory, not compute: the CUDA program "cannot
exceed n = 20,000" because its n×n global-memory matrices exhaust the
4 GB device.  The host-side analogue of that wall is the m×n distance
slab each vectorised chunk materialises.  This module plans the row-block
size ``B`` from an explicit *byte budget* the same way
:class:`repro.gpusim.memory.GlobalMemory` accounts device allocations:
enumerate the arrays a block keeps alive, charge them against the
budget, and fail loudly (typed ``REPRO_MEM_BUDGET`` error) when no block
size can fit — instead of letting the OS OOM-killer decide.

The budget comes from, in priority order: an explicit ``memory_budget=``
argument, the ``REPRO_MEM_BUDGET`` environment variable, or the default
(:data:`DEFAULT_MEMORY_BUDGET`).  Human-friendly strings ("2GB",
"512MiB", "64mb") are accepted everywhere a byte count is.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from repro.exceptions import MemoryBudgetError, ValidationError

__all__ = [
    "BlockPlan",
    "DEFAULT_MEMORY_BUDGET",
    "MEMORY_BUDGET_ENV",
    "estimate_sweep_seconds",
    "parse_byte_budget",
    "plan_blocks",
    "resolve_budget",
    "rows_for_budget",
]

#: Environment variable consulted when no explicit budget is given.
MEMORY_BUDGET_ENV = "REPRO_MEM_BUDGET"

#: Default sweep working-set budget: 1 GiB — laptop-friendly while large
#: enough that n = 20,000 runs in a handful of blocks.
DEFAULT_MEMORY_BUDGET: int = 1024**3

#: Binary units; the bare k/M/G forms are treated as binary too (a "2GB"
#: budget that under-provisions by 7% would defeat its purpose).
_UNITS: dict[str, int] = {
    "": 1,
    "b": 1,
    "kb": 1024,
    "kib": 1024,
    "mb": 1024**2,
    "mib": 1024**2,
    "gb": 1024**3,
    "gib": 1024**3,
    "tb": 1024**4,
    "tib": 1024**4,
}

_BUDGET_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-z]*)\s*$")


def parse_byte_budget(value: int | float | str) -> int:
    """Parse a byte budget: an int/float count or a "2GB"-style string."""
    if isinstance(value, bool):  # bool is an int subclass; reject it
        raise ValidationError(f"memory budget must be bytes, got {value!r}")
    if isinstance(value, (int, float)):
        byte_count = int(value)
    else:
        match = _BUDGET_RE.match(str(value).lower())
        if match is None or match.group(2) not in _UNITS:
            raise ValidationError(
                f"unparseable memory budget {value!r}; expected bytes or a "
                "string like '2GB', '512MiB', '64mb'"
            )
        byte_count = int(float(match.group(1)) * _UNITS[match.group(2)])
    if byte_count <= 0:
        raise ValidationError(
            f"memory budget must be positive, got {byte_count} bytes"
        )
    return byte_count


def resolve_budget(budget: int | float | str | None = None) -> int:
    """Explicit budget, else ``$REPRO_MEM_BUDGET``, else the default."""
    if budget is not None:
        return parse_byte_budget(budget)
    env = os.environ.get(MEMORY_BUDGET_ENV)
    if env is not None and env.strip():
        return parse_byte_budget(env)
    return DEFAULT_MEMORY_BUDGET


def rows_for_budget(
    budget_bytes: int,
    bytes_per_row: int,
    *,
    minimum: int = 1,
    maximum: int | None = None,
) -> int:
    """Largest row count whose working set fits ``budget_bytes``.

    The shared sizing primitive: the blockwise planner and the tiled CUDA
    program's :func:`~repro.cuda_port.tiled.default_tile_rows` both
    funnel through here, so host and device block sizes are chosen by the
    same arithmetic.  Clamped to ``[minimum, maximum]`` — the *caller*
    decides whether falling below ``minimum`` is an error.
    """
    if bytes_per_row <= 0:
        raise ValidationError(
            f"bytes_per_row must be positive, got {bytes_per_row}"
        )
    rows = budget_bytes // bytes_per_row
    if maximum is not None:
        rows = min(rows, maximum)
    return int(max(rows, minimum))


@dataclass(frozen=True)
class BlockPlan:
    """A planned partition of ``range(n)`` into budget-fitting row blocks.

    ``predicted_peak_bytes`` is the planner's model of the sweep's peak
    working set (fixed arrays + one block's temporaries); the blockwise
    test suite holds the real tracemalloc peak to within 1.5× of it.
    """

    n: int
    k: int
    block_rows: int
    bytes_per_row: int
    fixed_bytes: int
    budget_bytes: int

    @property
    def n_blocks(self) -> int:
        return -(-self.n // self.block_rows)

    @property
    def predicted_peak_bytes(self) -> int:
        return self.fixed_bytes + self.block_rows * self.bytes_per_row

    @property
    def predicted_traffic_bytes(self) -> int:
        """Total bytes the sweep streams through the block temporaries.

        Every row's working set is written/read once regardless of how
        rows are grouped into blocks, so traffic is ``n * bytes_per_row``
        — the numerator of the roofline sweep-time estimate
        (:func:`estimate_sweep_seconds`)."""
        return self.n * self.bytes_per_row

    def blocks(self) -> list[tuple[int, int]]:
        """The ``(start, stop)`` row ranges, in index order."""
        return [
            (start, min(start + self.block_rows, self.n))
            for start in range(0, self.n, self.block_rows)
        ]

    def to_dict(self) -> dict[str, int]:
        """JSON-friendly snapshot (for spans and bench artifacts)."""
        return {
            "n": self.n,
            "k": self.k,
            "block_rows": self.block_rows,
            "n_blocks": self.n_blocks,
            "bytes_per_row": self.bytes_per_row,
            "fixed_bytes": self.fixed_bytes,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "budget_bytes": self.budget_bytes,
        }


def _block_row_bytes(n: int, k: int, n_terms: int, itemsize: int) -> int:
    """Model of one block row's live temporaries in the fast-grid sweep.

    Mirrors ``_window_sums_for_block``: the distance row (``itemsize``),
    the int64 bin/offset/index triple, one distance-power and one
    weighted-Y row per polynomial term, and the handful of k-length
    per-row outputs (window sums, LOO estimate, residuals, histogram
    rows).  Deliberately counts arrays that overlap only briefly — the
    plan must be an upper bound, not a best case.
    """
    return (
        n * (2 * itemsize + 3 * 8)
        + n_terms * n * (itemsize + 8)
        + 16 * k * 8
    )


def plan_blocks(
    n: int,
    k: int,
    *,
    n_terms: int = 2,
    itemsize: int = 8,
    budget: int | float | str | None = None,
    output_matrix: bool = False,
    max_rows: int | None = None,
) -> BlockPlan:
    """Choose a block size B so one block's sweep fits the byte budget.

    Parameters
    ----------
    n, k:
        Sample size and bandwidth-grid size.
    n_terms:
        Polynomial term count of the kernel (2 for Epanechnikov).
    itemsize:
        Bytes per distance element (8 float64, 4 for the float32 path).
    budget:
        Bytes (or a "2GB"-style string); ``None`` consults
        ``$REPRO_MEM_BUDGET`` and then :data:`DEFAULT_MEMORY_BUDGET`.
    output_matrix:
        Charge the n×k float64 per-row contribution matrix against the
        fixed working set (the shared-memory variant materialises it).
    max_rows:
        Optional cap on the chosen block size (e.g. a checkpoint
        granularity requirement).

    Raises
    ------
    MemoryBudgetError
        When the budget cannot hold the fixed arrays plus even a single
        row block (code ``REPRO_MEM_BUDGET``).
    """
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    if n_terms <= 0:
        raise ValidationError(f"n_terms must be positive, got {n_terms}")
    budget_bytes = resolve_budget(budget)
    # Fixed residency: x and y (float64), the grid, and the k-length
    # accumulators; plus the n×k contribution matrix when materialised.
    fixed = 2 * n * 8 + k * 8 + 4 * k * 8
    if output_matrix:
        fixed += n * k * 8
    per_row = _block_row_bytes(n, k, n_terms, itemsize)
    spare = budget_bytes - fixed
    if spare < per_row:
        raise MemoryBudgetError(
            f"memory budget of {budget_bytes:,} bytes cannot hold a "
            f"single-row block: fixed working set is {fixed:,} bytes and "
            f"each block row needs {per_row:,} bytes (n={n:,}, k={k}); "
            f"raise the budget (memory_budget= / ${MEMORY_BUDGET_ENV})"
        )
    rows = rows_for_budget(
        spare, per_row, minimum=1, maximum=min(n, max_rows or n)
    )
    return BlockPlan(
        n=n,
        k=k,
        block_rows=rows,
        bytes_per_row=per_row,
        fixed_bytes=fixed,
        budget_bytes=budget_bytes,
    )


def estimate_sweep_seconds(
    plan: BlockPlan,
    *,
    bytes_per_second: float | None = None,
    roofline: str | None = None,
) -> float:
    """Roofline lower bound on a blockwise sweep's wall time.

    The fast-grid sweep is memory-bound on the host (the per-row
    temporaries dominate arithmetic), so its floor is the plan's
    streamed traffic divided by the host bandwidth.  The bandwidth
    resolves through the shared calibration source
    (:mod:`repro.utils.calibration`): an explicit ``bytes_per_second``
    wins, else a measured ``BENCH_roofline.json`` (at ``roofline``, then
    ``$REPRO_ROOFLINE``, then the CWD), else a conservative builtin
    default — conservative so an *uncalibrated* estimate over-predicts
    time rather than promising speed the host cannot deliver.
    """
    from repro.utils.calibration import host_bytes_per_second

    rate = host_bytes_per_second(bytes_per_second, roofline=roofline)
    return plan.predicted_traffic_bytes / rate
