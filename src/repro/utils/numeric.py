"""Tolerance-based float comparison helpers.

The lint rule NUM001 bans bare ``==``/``!=`` between float expressions:
around the CV argmin the score curve is flat to ~1e-12, so exact
equality makes tie-breaking depend on summation order (chunking,
backend, thread count).  These helpers centralise the tolerances so
every comparison in the library breaks ties the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FLOAT_ATOL",
    "FLOAT_RTOL",
    "allclose",
    "compensated_sum",
    "fold_rows",
    "int_power",
    "is_zero",
    "isclose",
]

#: Absolute tolerance for "is this exactly the same float" questions —
#: a hair above accumulated rounding in the O(n²) double-precision sums.
FLOAT_ATOL = 1e-12

#: Relative tolerance for comparing quantities of arbitrary magnitude.
FLOAT_RTOL = 1e-9


def isclose(
    a: float, b: float, *, rtol: float = FLOAT_RTOL, atol: float = FLOAT_ATOL
) -> bool:
    """Scalar tolerance comparison (``|a−b| <= atol + rtol·|b|``)."""
    return bool(np.isclose(a, b, rtol=rtol, atol=atol))


def allclose(
    a: np.ndarray,
    b: np.ndarray,
    *,
    rtol: float = FLOAT_RTOL,
    atol: float = FLOAT_ATOL,
) -> bool:
    """Array tolerance comparison with the project-wide tolerances."""
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))


def is_zero(value: float, *, atol: float = FLOAT_ATOL) -> bool:
    """Whether ``value`` is zero up to absolute tolerance."""
    return bool(abs(value) <= atol)


def int_power(base: np.ndarray, power: int) -> np.ndarray:
    """``base ** power`` for integer ``power >= 1`` by square-and-multiply.

    The library's canonical integer power: a left-to-right binary
    exponentiation over the exponent's bits (MSB first) —
    ``r = x; then per lower bit: r = r·r, and r = r·x when the bit is
    set``.  Because every step is an exactly-rounded IEEE multiply, the
    chain produces the *same bits* whether it runs vectorised here or as
    a scalar loop — which is what lets the compiled engine
    (:mod:`repro.compiled.kernels`) reproduce the numpy sweep
    byte-for-byte at every polynomial power.  numpy's own ``x ** p``
    cannot serve as the contract: its SIMD ``pow`` differs from scalar
    libm ``pow`` by an ulp on a few percent of inputs.

    The association order is part of the byte-identity contract; change
    it here and in the compiled kernels together, or not at all.
    """
    if power < 1:
        raise ValueError(f"int_power requires power >= 1, got {power}")
    bit = 1
    while (bit << 1) <= power:
        bit <<= 1
    result = base
    bit >>= 1
    while bit:
        result = result * result
        if power & bit:
            result = result * base
        bit >>= 1
    return result


def fold_rows(
    rows: np.ndarray, total: np.ndarray | None = None
) -> np.ndarray:
    """Strict left-fold of a 2-D array's rows, in index order.

    ``total <- ((total + rows[0]) + rows[1]) + ...`` with one in-place
    float64 addition per row.  This is the library's *canonical* reduction
    order for per-observation CV contributions: because each observation's
    k-vector is computed independently of how rows are batched, folding
    them in global row order makes the reduced curve **bit-for-bit
    independent of the partition** — any chunk size, block size, or worker
    count reproduces the identical result.  (Pairwise reductions such as
    ``np.sum``/``einsum`` re-associate with shape and would not.)

    Pass ``total`` to continue a fold across batch boundaries; it must be
    a float64 vector matching ``rows.shape[1]`` and is updated in place.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if total is None:
        total = np.zeros(rows.shape[-1], dtype=np.float64)
    for row in rows:
        np.add(total, row, out=total)
    return total


def compensated_sum(values: np.ndarray) -> tuple[float, float]:
    """Neumaier compensated sum: ``(plain_total, compensation)``.

    Running-sum sweeps accumulate drift that grows with the number of
    partial sums (Langrené & Warin); the observability layer uses the
    compensation term as a *measurement* of that drift without changing
    any returned result — callers keep using the plain total.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    total = 0.0
    comp = 0.0
    for v in flat.tolist():
        t = total + v
        if abs(total) >= abs(v):
            comp += (total - t) + v
        else:
            comp += (v - t) + total
        total = t
    return total, comp
