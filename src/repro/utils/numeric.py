"""Tolerance-based float comparison helpers.

The lint rule NUM001 bans bare ``==``/``!=`` between float expressions:
around the CV argmin the score curve is flat to ~1e-12, so exact
equality makes tie-breaking depend on summation order (chunking,
backend, thread count).  These helpers centralise the tolerances so
every comparison in the library breaks ties the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FLOAT_ATOL",
    "FLOAT_RTOL",
    "allclose",
    "compensated_sum",
    "is_zero",
    "isclose",
]

#: Absolute tolerance for "is this exactly the same float" questions —
#: a hair above accumulated rounding in the O(n²) double-precision sums.
FLOAT_ATOL = 1e-12

#: Relative tolerance for comparing quantities of arbitrary magnitude.
FLOAT_RTOL = 1e-9


def isclose(
    a: float, b: float, *, rtol: float = FLOAT_RTOL, atol: float = FLOAT_ATOL
) -> bool:
    """Scalar tolerance comparison (``|a−b| <= atol + rtol·|b|``)."""
    return bool(np.isclose(a, b, rtol=rtol, atol=atol))


def allclose(
    a: np.ndarray,
    b: np.ndarray,
    *,
    rtol: float = FLOAT_RTOL,
    atol: float = FLOAT_ATOL,
) -> bool:
    """Array tolerance comparison with the project-wide tolerances."""
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))


def is_zero(value: float, *, atol: float = FLOAT_ATOL) -> bool:
    """Whether ``value`` is zero up to absolute tolerance."""
    return bool(abs(value) <= atol)


def compensated_sum(values: np.ndarray) -> tuple[float, float]:
    """Neumaier compensated sum: ``(plain_total, compensation)``.

    Running-sum sweeps accumulate drift that grows with the number of
    partial sums (Langrené & Warin); the observability layer uses the
    compensation term as a *measurement* of that drift without changing
    any returned result — callers keep using the plain total.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    total = 0.0
    comp = 0.0
    for v in flat.tolist():
        t = total + v
        if abs(total) >= abs(v):
            comp += (total - t) + v
        else:
            comp += (v - t) + total
        total = t
    return total, comp
