"""Centralised seeded-RNG derivation.

Every stochastic component in the library — bagged subsample draws,
fault-injection Bernoulli streams, retry jitter, chaos transports —
derives its generator here, from one of two disciplines:

* :func:`spawn_seeds` — ``count`` independent child sequences of a root
  seed via ``SeedSequence(root, spawn_key=(i,))``.  Child ``i`` is a pure
  function of ``(root, i)``: workers can consume their streams in any
  order, a retried unit re-derives the identical stream, and adding more
  children never perturbs existing ones.  This is the contract bagged
  subsampling's bit-for-bit reproducibility rests on.
* :func:`derive_seed_sequence` — a sequence keyed by a root seed plus
  string/int labels (``derive_seed_sequence(seed, "pool.worker")``).
  String labels are folded in by ``crc32``, **not** ``hash()`` — Python
  salts ``hash()`` per interpreter, which would make the stream
  irreproducible across runs.  Fault injection and retry jitter key
  their streams this way, so the Bernoulli/backoff sequence at each site
  is a pure function of the seed and the event order.

Ad-hoc ``np.random.default_rng(...)`` constructions outside this module
are what repro-lint rule DET003 exists to catch.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "derive_rng",
    "derive_seed_sequence",
    "spawn_rngs",
    "spawn_seed",
    "spawn_seeds",
]


def _entropy_word(part: int | str) -> int:
    """One 32-bit entropy word from a label (crc32 for strings)."""
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8")) & 0xFFFFFFFF
    return int(part)


def derive_seed_sequence(root: int, *parts: int | str) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` keyed by ``(root, *parts)``.

    Bit-compatible with the historical ad-hoc constructions it replaced
    (``SeedSequence([seed, crc32(site)])`` in the fault injector,
    ``SeedSequence([seed, 0x5E7B])`` in the retry policy), so chaos
    schedules recorded before the consolidation replay unchanged.
    """
    return np.random.SeedSequence(
        [int(root), *(_entropy_word(part) for part in parts)]
    )


def derive_rng(root: int, *parts: int | str) -> np.random.Generator:
    """A fresh generator positioned at the start of the derived stream."""
    return np.random.default_rng(derive_seed_sequence(root, *parts))


def spawn_seed(root: int, index: int) -> np.random.SeedSequence:
    """Child ``index`` of ``root`` — a pure function of ``(root, index)``.

    Uses the numpy-sanctioned ``spawn_key`` mechanism, so children are
    statistically independent of each other *and* of any
    :func:`derive_seed_sequence` stream sharing the root.
    """
    if index < 0:
        raise ValidationError(f"spawn index must be >= 0, got {index}")
    return np.random.SeedSequence(int(root), spawn_key=(int(index),))


def spawn_seeds(root: int, count: int) -> tuple[np.random.SeedSequence, ...]:
    """``count`` independent child sequences of ``root``, in index order.

    ``spawn_seeds(root, count)[i]`` equals ``spawn_seed(root, i)`` — the
    tuple is a convenience view over the per-index derivation, not a
    stateful spawn, so consuming the children out of order (or re-deriving
    one for a retry) cannot change any draw.
    """
    if count < 0:
        raise ValidationError(f"spawn count must be >= 0, got {count}")
    return tuple(spawn_seed(root, i) for i in range(count))


def spawn_rngs(root: int, count: int) -> tuple[np.random.Generator, ...]:
    """Generators over :func:`spawn_seeds`, one per child stream."""
    return tuple(np.random.default_rng(seq) for seq in spawn_seeds(root, count))
