"""Shared utilities: validation, timing, chunking, float comparison."""

from repro.utils.chunking import chunk_slices, iter_chunks, suggest_chunk_rows
from repro.utils.numeric import FLOAT_ATOL, FLOAT_RTOL, allclose, is_zero, isclose
from repro.utils.rng import (
    derive_rng,
    derive_seed_sequence,
    spawn_rngs,
    spawn_seed,
    spawn_seeds,
)
from repro.utils.timer import Stopwatch, TimingRecord, time_callable
from repro.utils.validation import (
    as_float_array,
    check_paired_samples,
    check_positive_int,
    check_probability,
    ensure_bandwidths,
)

__all__ = [
    "FLOAT_ATOL",
    "FLOAT_RTOL",
    "Stopwatch",
    "TimingRecord",
    "allclose",
    "as_float_array",
    "check_paired_samples",
    "check_positive_int",
    "check_probability",
    "chunk_slices",
    "derive_rng",
    "derive_seed_sequence",
    "ensure_bandwidths",
    "is_zero",
    "isclose",
    "iter_chunks",
    "spawn_rngs",
    "spawn_seed",
    "spawn_seeds",
    "suggest_chunk_rows",
    "time_callable",
]
