"""Shared utilities: validation, timing, and chunked iteration."""

from repro.utils.chunking import chunk_slices, iter_chunks, suggest_chunk_rows
from repro.utils.timer import Stopwatch, TimingRecord, time_callable
from repro.utils.validation import (
    as_float_array,
    check_paired_samples,
    check_positive_int,
    check_probability,
    ensure_bandwidths,
)

__all__ = [
    "Stopwatch",
    "TimingRecord",
    "as_float_array",
    "check_paired_samples",
    "check_positive_int",
    "check_probability",
    "chunk_slices",
    "ensure_bandwidths",
    "iter_chunks",
    "suggest_chunk_rows",
    "time_callable",
]
