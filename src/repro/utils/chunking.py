"""Row-chunking helpers for memory-bounded O(n²) sweeps.

The leave-one-out distance matrix for n = 20,000 observations holds 4·10⁸
entries — 3.2 GB in float64 — so the vectorised backends never materialise
it whole.  They process blocks of rows instead, exactly the "be easy on the
memory" idiom from the optimisation guide, and the block size is chosen so
a chunk's working set stays within a target byte budget.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["chunk_slices", "iter_chunks", "suggest_chunk_rows"]

#: Default working-set budget per chunk (256 MiB) — comfortably cache- and
#: RAM-friendly on a laptop while keeping per-chunk numpy overhead amortised.
DEFAULT_CHUNK_BYTES: int = 256 * 1024 * 1024


def chunk_slices(total: int, chunk: int) -> list[slice]:
    """Split ``range(total)`` into consecutive slices of length ``chunk``.

    The final slice may be shorter.  ``chunk`` larger than ``total`` yields
    a single slice covering everything.
    """
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    if chunk <= 0:
        raise ValidationError(f"chunk must be positive, got {chunk}")
    return [slice(lo, min(lo + chunk, total)) for lo in range(0, total, chunk)]


def iter_chunks(array: np.ndarray, chunk: int) -> Iterator[tuple[slice, np.ndarray]]:
    """Yield ``(slice, view)`` pairs over the leading axis of ``array``.

    Views, not copies: each chunk is a window into the original buffer.
    """
    for sl in chunk_slices(array.shape[0], chunk):
        yield sl, array[sl]


def suggest_chunk_rows(
    n_cols: int,
    *,
    itemsize: int = 8,
    working_arrays: int = 4,
    budget_bytes: int = DEFAULT_CHUNK_BYTES,
    minimum: int = 16,
    maximum: int = 8192,
) -> int:
    """Pick a row-block size so the chunk working set fits ``budget_bytes``.

    Parameters
    ----------
    n_cols:
        Number of columns each chunk row carries (the sample size ``n`` for
        a distance-matrix sweep).
    itemsize:
        Bytes per element (8 for float64, 4 for the float32 GPU path).
    working_arrays:
        How many chunk-shaped temporaries the sweep keeps alive at once
        (distances, sorted distances, sorted Y, cumulative sums, ...).
    budget_bytes:
        Total byte budget for those temporaries.
    minimum, maximum:
        Clamp for the suggestion; the floor keeps tiny inputs from
        degenerating into per-row python overhead.
    """
    if n_cols <= 0:
        raise ValidationError(f"n_cols must be positive, got {n_cols}")
    per_row = max(n_cols * itemsize * working_arrays, 1)
    rows = budget_bytes // per_row
    return int(np.clip(rows, minimum, maximum))
