"""Host memory-bandwidth calibration: one source of truth for bytes/s.

"As fast as the hardware allows" is only meaningful against a *measured*
ceiling.  ``benchmarks/bench_roofline.py`` ports the memory-bandwidth
microbenchmark idiom (reframe's ``memory_bandwidth.cu`` + its ReFrame
harness) to the host: it measures copy/scale/add/triad streaming
bandwidth and records the peak into ``BENCH_roofline.json``.  This
module is the *consumer* side — every subsystem that needs a host
bytes/s figure (the membudget planner's sweep-time estimate, the gpusim
timing model's host-transfer phases, the roofline report itself) funnels
through :func:`host_bytes_per_second` instead of hardcoding its own
constant, so they can never drift apart.

Resolution precedence (mirrors the membudget precedence contract):

1. an explicit ``bytes_per_second=`` argument,
2. the measured peak in a ``BENCH_roofline.json`` artifact — located via
   an explicit ``roofline=`` path, ``$REPRO_ROOFLINE``, or the current
   working directory,
3. the builtin conservative default (:data:`DEFAULT_HOST_BYTES_PER_SECOND`).

Artifact reads are tolerant: a missing, malformed, or schema-skewed file
silently falls through to the default — calibration must degrade to
"use the conservative constant", never to "fail the sweep".
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_HOST_BYTES_PER_SECOND",
    "ROOFLINE_ARTIFACT",
    "ROOFLINE_ENV",
    "calibration_source",
    "host_bytes_per_second",
    "load_roofline",
    "roofline_path",
]

#: Environment variable pointing at a roofline artifact (file or its dir).
ROOFLINE_ENV = "REPRO_ROOFLINE"

#: Canonical artifact filename written by ``benchmarks/bench_roofline.py``.
ROOFLINE_ARTIFACT = "BENCH_roofline.json"

#: Conservative builtin default: 10 GB/s — a single DDR4 channel's worth,
#: deliberately below any machine this library targets so an uncalibrated
#: estimate over-predicts time rather than under-predicting it.
DEFAULT_HOST_BYTES_PER_SECOND: float = 10.0e9


def roofline_path(path: str | Path | None = None) -> Path | None:
    """Locate the roofline artifact: explicit path > ``$REPRO_ROOFLINE`` > cwd.

    A directory (explicit or from the environment) means "the canonical
    artifact inside it".  Returns ``None`` when no candidate exists on
    disk — the caller falls through to the builtin default.
    """
    candidates: list[Path] = []
    if path is not None:
        candidates.append(Path(path))
    env = os.environ.get(ROOFLINE_ENV)
    if env is not None and env.strip():
        candidates.append(Path(env))
    candidates.append(Path.cwd() / ROOFLINE_ARTIFACT)
    for candidate in candidates:
        if candidate.is_dir():
            candidate = candidate / ROOFLINE_ARTIFACT
        if candidate.is_file():
            return candidate
    return None


def load_roofline(path: str | Path | None = None) -> dict[str, Any] | None:
    """Parse the roofline artifact, or ``None`` when absent/unreadable."""
    located = roofline_path(path)
    if located is None:
        return None
    try:
        payload = json.loads(located.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _artifact_peak(payload: dict[str, Any]) -> float | None:
    """Extract the measured peak bytes/s from an artifact payload.

    Prefers the explicit ``host.peak_bytes_per_second`` field; falls back
    to the max over ``host.streams`` (copy/scale/add/triad) so older or
    hand-trimmed artifacts still calibrate.
    """
    host = payload.get("host")
    if not isinstance(host, dict):
        return None
    peak = host.get("peak_bytes_per_second")
    if isinstance(peak, (int, float)) and float(peak) > 0.0:
        return float(peak)
    streams = host.get("streams")
    if isinstance(streams, dict):
        rates = [
            float(v)
            for v in streams.values()
            if isinstance(v, (int, float)) and float(v) > 0.0
        ]
        if rates:
            return max(rates)
    return None


def host_bytes_per_second(
    bytes_per_second: float | None = None,
    *,
    roofline: str | Path | None = None,
) -> float:
    """The calibrated host streaming bandwidth, in bytes per second.

    Precedence: explicit argument > measured ``BENCH_roofline.json``
    peak > :data:`DEFAULT_HOST_BYTES_PER_SECOND`.
    """
    if bytes_per_second is not None:
        value = float(bytes_per_second)
        if value <= 0.0:
            raise ValidationError(
                f"bytes_per_second must be positive, got {bytes_per_second!r}"
            )
        return value
    payload = load_roofline(roofline)
    if payload is not None:
        peak = _artifact_peak(payload)
        if peak is not None:
            return peak
    return DEFAULT_HOST_BYTES_PER_SECOND


def calibration_source(
    bytes_per_second: float | None = None,
    *,
    roofline: str | Path | None = None,
) -> str:
    """Where :func:`host_bytes_per_second` would take its figure from.

    One of ``"explicit"``, ``"roofline"``, or ``"default"`` — reported by
    ``repro info`` and recorded into bench artifacts so a reader can tell
    a measured estimate from a guessed one.
    """
    if bytes_per_second is not None:
        return "explicit"
    payload = load_roofline(roofline)
    if payload is not None and _artifact_peak(payload) is not None:
        return "roofline"
    return "default"
