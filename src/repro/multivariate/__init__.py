"""Multivariate kernel regression with product kernels.

The multivariate extension the paper's §I anticipates ("an evenly-spaced
grid or matrix in multivariate contexts"): product-kernel Nadaraya–Watson
estimation, the multivariate LOO-CV objective, and two selectors — an
exhaustive product-grid search and a coordinate-descent search whose
per-dimension sweeps reuse the paper's fast-grid decomposition with
fixed cross-dimension weights.
"""

from repro.multivariate.fastgrid import mv_cv_scores_along_dim
from repro.multivariate.nw import mv_cv_score, mv_loo_estimates, mv_nw_estimate
from repro.multivariate.product import (
    product_weights,
    resolve_kernels,
    self_weight_constant,
)
from repro.multivariate.selection import (
    CoordinateDescentSelector,
    MVSelectionResult,
    ProductGridSelector,
    mv_rule_of_thumb,
)
from repro.multivariate.validation import (
    as_design_matrix,
    check_multivariate_sample,
    ensure_bandwidth_vector,
)

__all__ = [
    "CoordinateDescentSelector",
    "MVSelectionResult",
    "ProductGridSelector",
    "as_design_matrix",
    "check_multivariate_sample",
    "ensure_bandwidth_vector",
    "mv_cv_score",
    "mv_cv_scores_along_dim",
    "mv_loo_estimates",
    "mv_nw_estimate",
    "mv_rule_of_thumb",
    "product_weights",
    "resolve_kernels",
    "self_weight_constant",
]
