"""Per-dimension fast grid sweep for product kernels.

The paper's sorted prefix-sum trick (§III) does not cover a full product
kernel directly — the windows are rectangles, not intervals — but it
*does* cover one dimension at a time: holding every other dimension's
weight fixed at

    W_il = Π_{d ≠ j} K_d((X_{i,d} − X_{l,d}) / h_d),

the swept dimension's kernel is still a compact polynomial in
``d_j / h_j``, so the leave-one-out sums factor as

    Σ_{d_j <= R·h_j} (W_il · Y_l) · c_p · d_j^p / h_j^p

— exactly the univariate decomposition with ``W·Y`` and ``W`` in place of
``Y`` and 1.  One pass over the pairwise distances therefore evaluates
``CV_lc`` for an entire grid of ``h_j`` values, which is what makes
coordinate-descent bandwidth selection (`.selection`) cheap: each descent
step costs one weighted sweep, O(n²·(d−1 + log k)), instead of k dense
O(d·n²) evaluations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel
from repro.core.fastgrid import require_fast_grid_kernel
from repro.multivariate.product import (
    product_weights,
    resolve_kernels,
    self_weight_constant,
)
from repro.multivariate.validation import (
    check_multivariate_sample,
    ensure_bandwidth_vector,
)
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import ensure_bandwidths

__all__ = ["mv_cv_scores_along_dim"]


def mv_cv_scores_along_dim(
    x: np.ndarray,
    y: np.ndarray,
    h: np.ndarray | float,
    dim: int,
    bandwidths: np.ndarray,
    kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """``CV_lc`` over a grid of bandwidths for dimension ``dim``.

    ``h`` supplies the *other* dimensions' bandwidths (``h[dim]`` is
    ignored); ``bandwidths`` is the ascending grid swept for dimension
    ``dim``.  The swept dimension's kernel must support the fast grid
    (compact polynomial); the other dimensions' kernels may be anything.
    """
    x, y = check_multivariate_sample(x, y)
    n, d = x.shape
    if not 0 <= dim < d:
        raise ValidationError(f"dim must be in [0, {d}), got {dim}")
    h_vec = ensure_bandwidth_vector(h, d)
    grid = ensure_bandwidths(bandwidths)
    kerns = resolve_kernels(kernels, d)
    swept = require_fast_grid_kernel(kerns[dim])
    k = grid.shape[0]
    self_w = self_weight_constant(kerns, skip_dim=dim)

    rows = chunk_rows or suggest_chunk_rows(
        n, working_arrays=4 + d + len(swept.poly_terms)
    )
    sq_sums = np.zeros(k, dtype=np.float64)
    x_dim = x[:, dim]

    for sl in chunk_slices(n, rows):
        m = sl.stop - sl.start
        w_other = product_weights(x[sl], x, h_vec, kerns, skip_dim=dim)
        dist = np.abs(x_dim[sl, None] - x_dim[None, :])
        first_j = np.minimum(
            np.searchsorted(grid * swept.support_radius, dist.ravel(), side="left"),
            k,
        )
        flat_bins = (
            np.repeat(np.arange(m, dtype=np.int64) * (k + 1), n) + first_j
        )

        num = np.zeros((m, k), dtype=np.float64)
        den = np.zeros((m, k), dtype=np.float64)
        h_cols = grid[None, :]
        for term in swept.poly_terms:
            if term.power == 0:
                wd = w_other
            else:
                wd = w_other * dist**term.power
            wyd = wd * y[None, :]
            hist_d = np.bincount(
                flat_bins, weights=wd.ravel(), minlength=m * (k + 1)
            ).reshape(m, k + 1)[:, :k]
            hist_yd = np.bincount(
                flat_bins, weights=wyd.ravel(), minlength=m * (k + 1)
            ).reshape(m, k + 1)[:, :k]
            scale = term.coefficient / (
                h_cols**term.power if term.power else 1.0
            )
            num += scale * np.cumsum(hist_yd, axis=1)
            den += scale * np.cumsum(hist_d, axis=1)

        # Leave-one-out: each observation sits in its own window at every
        # swept bandwidth with swept-dimension distance 0 (power-0 terms
        # only) and fixed-weight ``self_w`` from the other dimensions.
        c0 = sum(t.coefficient for t in swept.poly_terms if t.power == 0)
        y_block = y[sl]
        num -= c0 * self_w * y_block[:, None]
        den -= c0 * self_w

        valid = den > 0.0
        g_loo = np.where(valid, num / np.where(valid, den, 1.0), 0.0)
        resid = np.where(valid, y_block[:, None] - g_loo, 0.0)
        sq_sums += np.einsum("ij,ij->j", resid, resid)
    return sq_sums / n
