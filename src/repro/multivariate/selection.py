"""Multivariate bandwidth selection.

Two strategies, mirroring the univariate pair but adapted to the curse
of grid dimensionality:

* :class:`ProductGridSelector` — the literal multivariate reading of the
  paper's grid search: an evenly spaced grid *per dimension*, every
  combination evaluated densely.  Exhaustive and deterministic, but
  O(k^d · n²): practical for d ≤ 3 with modest k.
* :class:`CoordinateDescentSelector` — sweeps one dimension's whole grid
  at a time with the weighted fast sweep
  (:func:`repro.multivariate.fastgrid.mv_cv_scores_along_dim`), cycling
  until no dimension improves.  Each full cycle costs d weighted sweeps
  instead of k^d dense evaluations.  Like any coordinate method it can
  stop at a coordinate-wise minimum, so ``restarts`` from rule-of-thumb
  multiples are supported.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import Kernel
from repro.core.grid import BandwidthGrid
from repro.core.selectors import rule_of_thumb_bandwidth
from repro.multivariate.fastgrid import mv_cv_scores_along_dim
from repro.multivariate.nw import mv_cv_score
from repro.multivariate.product import resolve_kernels
from repro.multivariate.validation import check_multivariate_sample
from repro.utils.numeric import is_zero
from repro.utils.validation import check_positive_int

__all__ = [
    "MVSelectionResult",
    "ProductGridSelector",
    "CoordinateDescentSelector",
    "mv_rule_of_thumb",
]


@dataclass(frozen=True)
class MVSelectionResult:
    """Outcome of a multivariate bandwidth selection."""

    bandwidths: np.ndarray
    score: float
    method: str
    kernels: tuple[str, ...]
    n_observations: int
    n_dimensions: int
    n_evaluations: int
    wall_seconds: float
    converged: bool = True
    trace: tuple[dict[str, Any], ...] = field(default_factory=tuple)

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        hs = ", ".join(f"{h:.5g}" for h in self.bandwidths)
        return (
            f"multivariate bandwidth selection via {self.method}\n"
            f"  kernels       : {', '.join(self.kernels)}\n"
            f"  n x d         : {self.n_observations} x {self.n_dimensions}\n"
            f"  h*            : [{hs}]\n"
            f"  CV(h*)        : {self.score:.6g}\n"
            f"  evaluations   : {self.n_evaluations}\n"
            f"  wall time (s) : {self.wall_seconds:.4f}\n"
            f"  converged     : {self.converged}"
        )


def mv_rule_of_thumb(
    x: np.ndarray,
    kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
) -> np.ndarray:
    """Per-dimension normal-reference bandwidths with the d-adjusted rate.

    The univariate rule's ``n^{-1/5}`` becomes ``n^{-1/(4+d)}`` in d
    dimensions (the standard multivariate normal-reference adjustment).
    """
    from repro.multivariate.validation import as_design_matrix

    x = as_design_matrix(x)
    n, d = x.shape
    kerns = resolve_kernels(kernels, d)
    out = np.empty(d, dtype=np.float64)
    for dim in range(d):
        base = rule_of_thumb_bandwidth(x[:, dim], kerns[dim])
        # Swap the univariate rate for the multivariate one.
        out[dim] = base * n**0.2 * n ** (-1.0 / (4.0 + d))
    return out


def _per_dim_grids(
    x: np.ndarray, n_bandwidths: int
) -> list[BandwidthGrid]:
    return [
        BandwidthGrid.for_sample(x[:, dim], n_bandwidths)
        for dim in range(x.shape[1])
    ]


class ProductGridSelector:
    """Exhaustive product-grid search (the paper's "grid or matrix").

    Evaluates ``CV_lc`` densely at every combination of the per-dimension
    grids.  Deterministic and globally optimal on the grid; cost grows as
    ``k^d``, so ``n_bandwidths`` defaults low and d > 3 is rejected.
    """

    method = "product-grid"

    def __init__(
        self,
        kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
        *,
        n_bandwidths: int = 10,
        grids: Sequence[BandwidthGrid] | None = None,
        max_dimensions: int = 3,
    ):
        self.kernels = kernels
        self.n_bandwidths = check_positive_int(n_bandwidths, name="n_bandwidths")
        self.grids = list(grids) if grids is not None else None
        self.max_dimensions = max_dimensions

    def select(self, x: np.ndarray, y: np.ndarray) -> MVSelectionResult:
        """Exhaustively evaluate every per-dimension grid combination."""
        x, y = check_multivariate_sample(x, y)
        n, d = x.shape
        if d > self.max_dimensions:
            raise ValidationError(
                f"product grid over {d} dimensions would need "
                f"{self.n_bandwidths}^{d} CV evaluations; use "
                "CoordinateDescentSelector for d > "
                f"{self.max_dimensions}"
            )
        kerns = resolve_kernels(self.kernels, d)
        grids = self.grids or _per_dim_grids(x, self.n_bandwidths)
        if len(grids) != d:
            raise ValidationError(f"need {d} grids, got {len(grids)}")

        start = time.perf_counter()
        best_h: np.ndarray | None = None
        best_score = np.inf
        evaluations = 0
        for combo in itertools.product(*(g.values for g in grids)):
            h = np.array(combo)
            score = mv_cv_score(x, y, h, kerns)
            evaluations += 1
            if 0.0 < score < best_score or (
                is_zero(score) and best_h is None
            ):
                best_score = score
                best_h = h
        if best_h is None:
            raise SelectionError("no grid combination produced a valid CV score")
        return MVSelectionResult(
            bandwidths=best_h,
            score=best_score,
            method=self.method,
            kernels=tuple(k.name for k in kerns),
            n_observations=n,
            n_dimensions=d,
            n_evaluations=evaluations,
            wall_seconds=time.perf_counter() - start,
        )


class CoordinateDescentSelector:
    """Cyclic per-dimension grid sweeps using the weighted fast sweep.

    Each step fixes all but one dimension and evaluates that dimension's
    *entire* grid with one O(n²) weighted pass — the multivariate payoff
    of the paper's sorting idea.  Cycles until a full pass improves the
    score by less than ``tol`` (relative) or ``max_cycles`` is hit.
    """

    method = "coordinate-descent"

    def __init__(
        self,
        kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
        *,
        n_bandwidths: int = 50,
        max_cycles: int = 10,
        tol: float = 1e-6,
        init: np.ndarray | None = None,
    ):
        self.kernels = kernels
        self.n_bandwidths = check_positive_int(n_bandwidths, name="n_bandwidths")
        self.max_cycles = check_positive_int(max_cycles, name="max_cycles")
        if tol < 0.0:
            raise ValidationError(f"tol must be >= 0, got {tol}")
        self.tol = float(tol)
        self.init = init

    def select(self, x: np.ndarray, y: np.ndarray) -> MVSelectionResult:
        """Cycle per-dimension fast sweeps from a rule-of-thumb start."""
        x, y = check_multivariate_sample(x, y)
        n, d = x.shape
        kerns = resolve_kernels(self.kernels, d)
        grids = _per_dim_grids(x, self.n_bandwidths)

        if self.init is not None:
            h = np.asarray(self.init, dtype=float).copy()
            if h.shape != (d,):
                raise ValidationError(f"init must have shape ({d},)")
        else:
            h = mv_rule_of_thumb(x, kerns)
            # Clamp the start into each grid's range.
            for dim in range(d):
                h[dim] = float(
                    np.clip(h[dim], grids[dim].minimum, grids[dim].maximum)
                )

        start = time.perf_counter()
        best_score = mv_cv_score(x, y, h, kerns)
        evaluations = 1
        trace: list[dict[str, Any]] = []
        converged = False
        for cycle in range(self.max_cycles):
            cycle_start_score = best_score
            for dim in range(d):
                scores = mv_cv_scores_along_dim(
                    x, y, h, dim, grids[dim].values, kerns
                )
                evaluations += len(grids[dim])
                positive = np.flatnonzero(scores > 0.0)
                if positive.size == 0:
                    continue
                j = int(positive[0]) + int(np.argmin(scores[positive[0]:]))
                if scores[j] < best_score:
                    h[dim] = float(grids[dim].values[j])
                    best_score = float(scores[j])
            trace.append(
                {"cycle": cycle + 1, "h": h.copy(), "score": best_score}
            )
            improvement = cycle_start_score - best_score
            if improvement <= self.tol * max(cycle_start_score, 1e-300):
                converged = True
                break
        return MVSelectionResult(
            bandwidths=h,
            score=best_score,
            method=self.method,
            kernels=tuple(k.name for k in kerns),
            n_observations=n,
            n_dimensions=d,
            n_evaluations=evaluations,
            wall_seconds=time.perf_counter() - start,
            converged=converged,
            trace=tuple(trace),
        )
