"""Validation helpers for multivariate samples."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import DataShapeError
from repro.utils.validation import as_float_array

__all__ = ["as_design_matrix", "check_multivariate_sample", "ensure_bandwidth_vector"]


def as_design_matrix(values: Any, *, name: str = "X") -> np.ndarray:
    """Coerce to a 2-D (n, d) float64 design matrix.

    1-D input is promoted to a single-column matrix so the multivariate
    API degrades gracefully to the univariate case.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DataShapeError(f"{name} must be 2-D (n, d), got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise DataShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_multivariate_sample(
    x: Any, y: Any, *, min_size: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a multivariate regression sample ``(X, y)``."""
    x_mat = as_design_matrix(x)
    y_arr = as_float_array(y, name="y")
    if x_mat.shape[0] != y_arr.shape[0]:
        raise DataShapeError(
            f"X has {x_mat.shape[0]} rows but y has {y_arr.shape[0]} entries"
        )
    if x_mat.shape[0] < min_size:
        raise DataShapeError(
            f"need at least {min_size} observations, got {x_mat.shape[0]}"
        )
    return x_mat, y_arr


def ensure_bandwidth_vector(h: Any, d: int) -> np.ndarray:
    """Validate a per-dimension bandwidth vector of length ``d``.

    A scalar is broadcast to every dimension.
    """
    arr = np.asarray(h, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(d, float(arr), dtype=np.float64)
    if arr.shape != (d,):
        raise DataShapeError(
            f"bandwidth vector must have shape ({d},), got {arr.shape}"
        )
    if not np.isfinite(arr).all() or np.any(arr <= 0.0):
        raise DataShapeError("bandwidths must be positive and finite")
    return arr
