"""Multivariate Nadaraya–Watson estimation and its LOO-CV objective.

Dense, chunked evaluation — the multivariate analogue of
:mod:`repro.core.loocv`.  The per-dimension sorted trick does not compose
across a product kernel's rectangular windows, so the dense path is the
general evaluator; the *per-dimension* fast sweep lives in
:mod:`repro.multivariate.fastgrid` and is what the coordinate-descent
selector uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel
from repro.multivariate.product import product_weights, resolve_kernels
from repro.multivariate.validation import (
    as_design_matrix,
    check_multivariate_sample,
    ensure_bandwidth_vector,
)
from repro.utils.chunking import chunk_slices, suggest_chunk_rows

__all__ = ["mv_nw_estimate", "mv_loo_estimates", "mv_cv_score"]


def mv_nw_estimate(
    x: np.ndarray,
    y: np.ndarray,
    at: np.ndarray,
    h: np.ndarray | float,
    kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Product-kernel NW estimates at points ``at`` (m, d).

    Returns ``(estimates, valid)``; empty product windows give NaN.
    """
    x, y = check_multivariate_sample(x, y)
    at = as_design_matrix(at, name="at")
    d = x.shape[1]
    if at.shape[1] != d:
        raise ValidationError(
            f"at has {at.shape[1]} columns but the sample has {d}"
        )
    h_vec = ensure_bandwidth_vector(h, d)
    kerns = resolve_kernels(kernels, d)
    m = at.shape[0]
    out = np.full(m, np.nan, dtype=np.float64)
    valid = np.zeros(m, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(x.shape[0], working_arrays=2 + d)
    for sl in chunk_slices(m, rows):
        w = product_weights(at[sl], x, h_vec, kerns)
        den = w.sum(axis=1)
        num = w @ y
        ok = den > 0.0
        out[sl] = np.where(ok, num / np.where(ok, den, 1.0), np.nan)
        valid[sl] = ok
    return out, valid


def mv_loo_estimates(
    x: np.ndarray,
    y: np.ndarray,
    h: np.ndarray | float,
    kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Leave-one-out product-kernel NW estimates at the sample points."""
    x, y = check_multivariate_sample(x, y)
    d = x.shape[1]
    h_vec = ensure_bandwidth_vector(h, d)
    kerns = resolve_kernels(kernels, d)
    n = x.shape[0]
    g_loo = np.full(n, np.nan, dtype=np.float64)
    valid = np.zeros(n, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=2 + d)
    for sl in chunk_slices(n, rows):
        w = product_weights(x[sl], x, h_vec, kerns)
        idx = np.arange(sl.start, sl.stop)
        w[np.arange(idx.shape[0]), idx] = 0.0
        den = w.sum(axis=1)
        num = w @ y
        ok = den > 0.0
        g_loo[sl] = np.where(ok, num / np.where(ok, den, 1.0), np.nan)
        valid[sl] = ok
    return g_loo, valid


def mv_cv_score(
    x: np.ndarray,
    y: np.ndarray,
    h: np.ndarray | float,
    kernels: str | Kernel | Sequence[str | Kernel] = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> float:
    """Multivariate ``CV_lc(h)`` — paper eq. (1) with a product kernel."""
    x, y = check_multivariate_sample(x, y)
    g_loo, valid = mv_loo_estimates(x, y, h, kernels, chunk_rows=chunk_rows)
    resid = np.where(valid, y - np.where(valid, g_loo, 0.0), 0.0)
    return float(np.dot(resid, resid) / x.shape[0])
