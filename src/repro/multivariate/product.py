"""Product kernels for multivariate regression.

The standard multivariate extension of the paper's setting: the weight of
observation ``l`` at evaluation point ``x`` is the *product* of univariate
kernel weights, one per regressor,

    W(x, X_l) = Π_d K_d((x_d − X_{l,d}) / h_d),

with a per-dimension bandwidth vector ``h`` (paper §I: "an evenly-spaced
grid or matrix in multivariate contexts").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel
from repro.multivariate.validation import as_design_matrix, ensure_bandwidth_vector

__all__ = ["resolve_kernels", "product_weights", "self_weight_constant"]


def resolve_kernels(
    kernels: str | Kernel | Sequence[str | Kernel], d: int
) -> tuple[Kernel, ...]:
    """Resolve per-dimension kernels (one name/instance broadcasts)."""
    if isinstance(kernels, (str, Kernel)):
        return tuple(get_kernel(kernels) for _ in range(d))
    resolved = tuple(get_kernel(k) for k in kernels)
    if len(resolved) != d:
        raise ValidationError(
            f"need {d} kernels (one per dimension), got {len(resolved)}"
        )
    return resolved


def product_weights(
    at: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    kernels: tuple[Kernel, ...],
    *,
    skip_dim: int | None = None,
) -> np.ndarray:
    """Pairwise product-kernel weights between ``at`` (m, d) and ``x`` (n, d).

    Returns an (m, n) matrix.  ``skip_dim`` omits one dimension from the
    product — the hook the coordinate-descent selector uses to hold every
    other dimension's weight fixed while sweeping one bandwidth.
    """
    at = as_design_matrix(at, name="at")
    x = as_design_matrix(x, name="x")
    m, d = at.shape
    n = x.shape[0]
    h = ensure_bandwidth_vector(h, d)
    weights = np.ones((m, n), dtype=np.float64)
    for dim in range(d):
        if dim == skip_dim:
            continue
        u = (at[:, dim, None] - x[None, :, dim]) / h[dim]
        weights *= kernels[dim](u)
    return weights


def self_weight_constant(
    kernels: tuple[Kernel, ...], *, skip_dim: int | None = None
) -> float:
    """Product of kernel peak values ``Π_d K_d(0)``.

    This is the weight an observation gives *itself* (all distances 0) in
    any product-kernel sum — the constant the leave-one-out correction
    subtracts.  With ``skip_dim``, the peak of that dimension's kernel is
    excluded (its own distance-0 contribution is handled by the swept
    dimension's power-0 terms instead).
    """
    total = 1.0
    for dim, kern in enumerate(kernels):
        if dim == skip_dim:
            continue
        total *= float(kern(np.zeros(1, dtype=np.float64))[0])
    return total
