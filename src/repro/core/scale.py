"""Scale-factor parameterisation of bandwidths (R ``np`` convention).

``npregbw`` reports bandwidths as *scale factors*: the multiple of
``σ̂·n^{-1/(4+d)}`` the bandwidth represents, where σ̂ is the robust
spread of the regressor.  Scale factors are comparable across sample
sizes and variables — a scale factor near 1 means "about the
normal-reference rule", far below 1 means aggressive localisation — so
they are the natural unit for communicating CV results, and the unit in
which the paper's program 1 baseline actually searches.

Conversions here are exact inverses of each other and power the
``scale_factor`` fields on selection summaries.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SelectionError, ValidationError

__all__ = ["robust_spread", "bandwidth_to_scale", "scale_to_bandwidth"]


def robust_spread(x: np.ndarray) -> float:
    """``min(σ̂, IQR/1.349)`` — the np/R robust spread estimate."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValidationError("robust spread needs a 1-D sample of size >= 2")
    sd = float(np.std(x, ddof=1))
    q75, q25 = np.percentile(x, [75.0, 25.0])
    iqr = float(q75 - q25) / 1.349
    candidates = [s for s in (sd, iqr) if s > 0.0]
    if not candidates:
        raise SelectionError("sample has zero spread")
    return min(candidates)


def bandwidth_to_scale(
    h: float, x: np.ndarray, *, dimensions: int = 1
) -> float:
    """Convert a bandwidth to an npregbw-style scale factor.

    ``scale = h / (spread · n^{-1/(4+d)})``.
    """
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    if dimensions < 1:
        raise ValidationError(f"dimensions must be >= 1, got {dimensions}")
    x = np.asarray(x, dtype=float)
    spread = robust_spread(x)
    rate = x.shape[0] ** (-1.0 / (4.0 + dimensions))
    return float(h / (spread * rate))


def scale_to_bandwidth(
    scale: float, x: np.ndarray, *, dimensions: int = 1
) -> float:
    """Convert an npregbw-style scale factor back to a bandwidth."""
    if scale <= 0.0:
        raise ValidationError(f"scale must be positive, got {scale}")
    if dimensions < 1:
        raise ValidationError(f"dimensions must be >= 1, got {dimensions}")
    x = np.asarray(x, dtype=float)
    spread = robust_spread(x)
    rate = x.shape[0] ** (-1.0 / (4.0 + dimensions))
    return float(scale * spread * rate)
