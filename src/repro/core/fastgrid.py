"""The paper's primary contribution: the fast sorted grid search.

Standard grid search evaluates ``CV_lc(h)`` independently for each of the
``k`` grid bandwidths — O(k·n²).  Paper §III observes that for compactly
supported polynomial kernels, the per-observation summations *nest*: every
pair (i, l) inside the window of bandwidth ``h₁`` is also inside the window
of every ``h₂ > h₁``, and the kernel weight decomposes into terms
``c_p · d^p / h^p`` whose distance part ``d^p`` does not depend on ``h``.
So, per observation i:

1. sort the distances ``d = |X_i − X_l|``  (O(n log n)),
2. sweep the sorted array once, rolling the running sums
   ``Σ d^p`` and ``Σ Y_l·d^p`` forward from each grid bandwidth to the
   next (O(n + k)),
3. recombine per bandwidth: ``ĝ₋ᵢ = (Σ_p c_p·T_p/h^p) / (Σ_p c_p·S_p/h^p)``.

Total: O(n² log n) for the whole grid instead of O(k·n²).

Two interchangeable implementations live here:

* :func:`cv_scores_fastgrid_python` — the paper's per-thread algorithm,
  written literally (per-observation sort + pointer sweep).  It is what
  each simulated GPU thread executes in :mod:`repro.cuda_port`, and the
  testing ground truth for the vectorised path.
* :func:`cv_scores_fastgrid` — a vectorised formulation of the *same
  summations*: instead of walking each sorted row with a pointer, each
  distance is binned against the (already sorted) bandwidth grid with
  ``searchsorted`` and the per-power window sums are built with weighted
  ``bincount`` + ``cumsum`` over bins.  Algebraically identical output —
  the property tests assert agreement with the dense path for every
  polynomial kernel — but it replaces the per-row python loop with
  whole-chunk array ops (the "vectorise the inner loop" guide idiom).
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import ensure_bandwidth_grid
from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel
from repro.obs.tracer import current_tracer
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.numeric import fold_rows, int_power
from repro.utils.validation import check_paired_samples, ensure_bandwidths

__all__ = [
    "FASTGRID_ENGINES",
    "cv_scores_fastgrid",
    "cv_scores_fastgrid_python",
    "fastgrid_block_sums",
    "fastgrid_row_contributions",
    "require_fast_grid_kernel",
]

#: Interchangeable per-block window-sum implementations.  ``numpy`` is the
#: vectorised reference; ``compiled`` routes through
#: :mod:`repro.compiled` (numba-jitted scalar loops, byte-identical in
#: float64, silently numpy-backed when the JIT is unavailable).
FASTGRID_ENGINES: tuple[str, ...] = ("numpy", "compiled")


def _resolve_engine(engine: str) -> str:
    if engine not in FASTGRID_ENGINES:
        raise ValidationError(
            f"unknown fast-grid engine {engine!r}; "
            f"known: {', '.join(FASTGRID_ENGINES)}"
        )
    return engine


def require_fast_grid_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve ``kernel`` and check it is eligible for the fast grid search.

    Eligibility = compact support **and** a polynomial weight (paper
    footnote 1: Epanechnikov, Uniform, Triangular — plus the other
    polynomial kernels in :mod:`repro.kernels.polynomial`).
    """
    kern = get_kernel(kernel)
    if not kern.supports_fast_grid:
        raise ValidationError(
            f"kernel {kern.name!r} does not support the sorted fast grid "
            "search (needs compact support and a polynomial weight); use "
            "the dense grid path instead"
        )
    return kern


def cv_scores_fastgrid_python(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
) -> np.ndarray:
    """Paper-literal fast grid search (per-observation sort + sweep).

    This mirrors the CUDA main kernel of §IV-B one-to-one — including
    keeping observation i itself in the sorted array and excluding it only
    when the final sums are combined (its distance is 0, so it affects
    exactly the power-0 running sums at every bandwidth).

    Pure python loops: use for testing and as the simulated-GPU thread
    body; for production sizes call :func:`cv_scores_fastgrid`.
    """
    x, y = check_paired_samples(x, y)
    grid = ensure_bandwidths(bandwidths)
    kern = require_fast_grid_kernel(kernel)
    terms = kern.poly_terms
    radius = kern.support_radius
    n = x.shape[0]
    k = grid.shape[0]
    sq_sums = np.zeros(k, dtype=float)

    with current_tracer().span("fastgrid-python", n=n, k=k, kernel=kern.name):
        for i in range(n):
            dist = np.abs(x[i] - x)
            order = np.argsort(dist, kind="stable")
            d_sorted = dist[order]
            y_sorted = y[order]

            # Running window sums per polynomial power, swept once over the
            # sorted distances while the bandwidth pointer advances.
            sum_d = {t.power: 0.0 for t in terms}
            sum_yd = {t.power: 0.0 for t in terms}
            ptr = 0
            for j in range(k):
                cutoff = radius * grid[j]
                while ptr < n and d_sorted[ptr] <= cutoff:
                    d = float(d_sorted[ptr])
                    yv = float(y_sorted[ptr])
                    for t in terms:
                        dp = d**t.power if t.power else 1.0
                        sum_d[t.power] += dp
                        sum_yd[t.power] += yv * dp
                    ptr += 1
                # Combine: exclude self (d = 0 contributes only to power 0).
                num = 0.0
                den = 0.0
                h = float(grid[j])
                for t in terms:
                    hp = h**t.power if t.power else 1.0
                    s_d = sum_d[t.power] - (1.0 if t.power == 0 else 0.0)
                    s_yd = sum_yd[t.power] - (
                        float(y[i]) if t.power == 0 else 0.0
                    )
                    num += t.coefficient * s_yd / hp
                    den += t.coefficient * s_d / hp
                if den > 0.0:
                    resid = float(y[i]) - num / den
                    sq_sums[j] += resid * resid
    return sq_sums / n


def _window_sums_for_block(
    x_block: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    grid: np.ndarray,
    kern: Kernel,
    dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-power window sums for a block of evaluation points.

    Returns ``(num, den)`` of shape ``(m, k)``: the kernel-weighted
    numerator and denominator of the (not yet leave-one-out-corrected)
    Nadaraya–Watson estimator at every grid bandwidth.

    Implementation: each pairwise distance is assigned, via one
    ``searchsorted`` against the sorted grid, the index of the *first*
    bandwidth whose window contains it; per-power weighted histograms over
    those indices, cumulated along the grid axis, are exactly the sorted
    sweep's running sums.
    """
    m = x_block.shape[0]
    n = x.shape[0]
    k = grid.shape[0]
    tracer = current_tracer()
    # "sort" phase: binning each distance against the sorted grid is the
    # vectorised counterpart of the paper's per-observation sort.
    with tracer.span("sort", rows=m):
        dist = np.abs(x_block[:, None] - x[None, :]).astype(dtype, copy=False)
        # First grid index whose window d <= radius*h contains this
        # distance; k means "outside every window".
        first_j = np.searchsorted(
            grid * kern.support_radius, dist.ravel(), side="left"
        )
        row_offsets = np.repeat(np.arange(m, dtype=np.int64) * (k + 1), n)
        flat_bins = row_offsets + np.minimum(first_j, k)

    num = np.zeros((m, k), dtype=np.float64)
    den = np.zeros((m, k), dtype=np.float64)
    h_cols = grid[None, :]
    # "sweep" phase: per-power weighted histograms + cumsum along the grid
    # axis are exactly the sorted sweep's running sums.
    with tracer.span("sweep", rows=m, terms=len(kern.poly_terms)):
        for term in kern.poly_terms:
            if term.power == 0:
                d_pow = None  # weight 1 per element
                yw = np.broadcast_to(y, (m, n)).ravel()
            else:
                # int_power, not dist**p: numpy's SIMD pow differs from
                # scalar libm by an ulp, so the exactly-rounded multiply
                # chain is the only form the compiled engine can mirror
                # byte-for-byte (see utils.numeric.int_power).
                d_pow = int_power(dist, term.power)
                yw = (y[None, :] * d_pow).ravel()
            hist_d = np.bincount(
                flat_bins,
                weights=None if d_pow is None else d_pow.ravel(),
                minlength=m * (k + 1),
            ).reshape(m, k + 1)[:, :k]
            hist_yd = np.bincount(
                flat_bins, weights=yw, minlength=m * (k + 1)
            ).reshape(m, k + 1)[:, :k]
            s_d = np.cumsum(hist_d, axis=1)
            s_yd = np.cumsum(hist_yd, axis=1)
            scale = term.coefficient / (
                int_power(h_cols, term.power) if term.power else 1.0
            )
            num += scale * s_yd
            den += scale * s_d
    return num, den


def fastgrid_row_contributions(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Per-observation squared-residual k-vectors for rows ``[start, stop)``.

    Returns a float64 ``(stop - start, k)`` matrix whose row ``i`` is
    observation ``start + i``'s contribution to ``n · CV_lc(h)`` at every
    grid bandwidth.  Each row depends only on its own observation and the
    *whole* sample — never on which other rows share the block — so the
    matrix is **partition-invariant**: any batching of ``range(n)``
    produces the identical bits row by row.  Folding the rows in global
    index order (:func:`repro.utils.numeric.fold_rows`) therefore yields
    a CV curve that is bit-for-bit independent of block size, chunk size,
    and worker count — the invariant the blockwise/shared-memory backends
    are tested against.

    This is the unit of work for the out-of-core blockwise engine: the
    block's working set is O(B·n + B·k) while the full sweep never
    materialises anything n×n.

    ``engine`` selects the window-sum implementation (see
    :data:`FASTGRID_ENGINES`); the leave-one-out correction and residual
    reduction below are shared, so ``engine="compiled"`` changes only how
    ``(num, den)`` are produced — and not a single float64 bit of them.
    """
    kern = require_fast_grid_kernel(kernel_name)
    engine = _resolve_engine(engine)
    grid = np.asarray(bandwidths, dtype=float)
    np_dtype = np.dtype(dtype)
    x = np.asarray(x)
    y = np.asarray(y)
    if not 0 <= start < stop <= x.shape[0]:
        raise ValidationError(
            f"invalid row block [{start}, {stop}) for n={x.shape[0]}"
        )
    x_block = x[start:stop]
    y_block = y[start:stop]
    tracer = current_tracer()
    with tracer.span("block", start=start, stop=stop):
        if engine == "compiled":
            from repro.compiled.api import window_sums as _compiled_sums

            num, den = _compiled_sums(x_block, x, y, grid, kern, np_dtype)
        else:
            num, den = _window_sums_for_block(
                x_block, x, y, grid, kern, np_dtype
            )

        # Leave-one-out correction: observation i appears in its own window
        # at every bandwidth with distance 0, touching only the power-0 term.
        with tracer.span("reduction", rows=stop - start):
            zero_terms = [t for t in kern.poly_terms if t.power == 0]
            if zero_terms:
                c0 = sum(t.coefficient for t in zero_terms)
                num -= c0 * y_block[:, None]
                den -= c0

            valid = den > 0.0
            if tracer.enabled:
                tracer.counter(
                    "numeric.empty_windows",
                    float(num.size - int(np.count_nonzero(valid))),
                )
            g_loo = np.where(valid, num / np.where(valid, den, 1.0), 0.0)
            resid = np.where(valid, y_block[:, None] - g_loo, 0.0)
            out: np.ndarray = resid * resid
    return out


def fastgrid_block_sums(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Squared-residual sums over observations ``[start, stop)``.

    The unit of work for the multicore backend and the resilient engine:
    top-level (hence picklable) and self-contained, so worker processes
    can be handed ``(x, y, grid, kernel, row range)`` and return a
    k-vector that the parent simply adds up.  The full CV score is the
    sum of these blocks over a partition of ``range(n)``, divided by n.

    The within-block reduction is the canonical strict row-order fold, so
    two partitions whose block boundaries coincide produce identical bits
    (bit-exactness across *different* partitions needs the row matrices
    from :func:`fastgrid_row_contributions` folded globally).
    """
    return fold_rows(
        fastgrid_row_contributions(
            x, y, bandwidths, kernel_name, start, stop, dtype, engine
        )
    )


def cv_scores_fastgrid(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Vectorised fast grid search over a whole bandwidth grid.

    Computes ``CV_lc(h)`` for every ``h`` in ``bandwidths`` in
    O(n² log k + n·k) — the vectorised counterpart of the paper's
    O(n² log n) sorted sweep (the grid, already sorted, plays the role of
    the sorted distance array).  Memory is bounded by processing row
    chunks; pass ``dtype="float32"`` to mirror the paper's
    single-precision GPU arithmetic.

    Accumulation is the canonical strict row-order fold carried across
    chunk boundaries, so the returned curve is bit-for-bit independent of
    ``chunk_rows`` — and bit-identical to the ``blocked``/``blocked-shm``
    out-of-core backends at any block size.
    """
    x, y = check_paired_samples(x, y)
    grid = ensure_bandwidth_grid(bandwidths)
    kern = require_fast_grid_kernel(kernel)
    engine = _resolve_engine(engine)
    n = x.shape[0]
    rows = chunk_rows or suggest_chunk_rows(
        n, working_arrays=4 + len(kern.poly_terms)
    )
    tracer = current_tracer()
    sq_sums = np.zeros(grid.shape[0], dtype=np.float64)
    with tracer.span(
        "fastgrid", n=n, k=grid.shape[0], kernel=kern.name, dtype=dtype,
        chunk_rows=rows, engine=engine,
    ):
        if not tracer.enabled:
            for sl in chunk_slices(n, rows):
                contrib = fastgrid_row_contributions(
                    x, y, grid, kern.name, sl.start, sl.stop, dtype, engine
                )
                fold_rows(contrib, sq_sums)
        else:
            # Traced path: the identical fold (``a = a + row`` is the
            # in-place add, bit for bit) plus a Neumaier compensation term
            # that *measures* per-row summation drift without touching
            # the returned values (Langrené & Warin motivate tracking it).
            comp = np.zeros_like(sq_sums)
            for sl in chunk_slices(n, rows):
                contrib = fastgrid_row_contributions(
                    x, y, grid, kern.name, sl.start, sl.stop, dtype, engine
                )
                for row in contrib:
                    acc = sq_sums + row
                    comp += np.where(
                        np.abs(sq_sums) >= np.abs(row),
                        (sq_sums - acc) + row,
                        (row - acc) + sq_sums,
                    )
                    sq_sums = acc
            tracer.record_max(
                "numeric.kahan_compensation", float(np.max(np.abs(comp)))
            )
    return sq_sums / n
