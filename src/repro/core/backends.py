"""Grid-evaluation backends.

A *backend* maps ``(x, y, bandwidth grid, kernel) -> CV scores`` and
corresponds to one of the paper's execution substrates:

===============  ==================================================
``python``       paper-literal per-observation sorted sweep (the
                 sequential reference; the CUDA thread body)
``numpy``        vectorised fast grid search — the "Sequential C"
                 analogue (numpy plays the role of compiled C)
``multicore``    row-parallel fast grid over a process pool
``blocked``      budget-planned out-of-core blockwise sweep
                 (:mod:`repro.core.blockwise`) — O(n·B + n·k) peak
                 memory, bit-identical to ``numpy``
``blocked-shm``  the blockwise sweep fanned over a shared-memory
                 worker pool (zero-copy inputs, O(1) per-block IPC)
``gpusim``       the paper's CUDA program executed on the GPU
                 simulator (registered lazily by
                 :mod:`repro.cuda_port` to avoid an import cycle)
``distributed``  the blockwise sweep leased out to a worker fleet
                 over JSON-over-HTTP (registered lazily by
                 :mod:`repro.distributed.backend`); byte-identical
                 to ``blocked`` and degrades to it losslessly
``compiled``     the fast grid with the numba-jitted per-block
                 kernel (registered lazily by
                 :mod:`repro.compiled.backend`); float64 curves
                 byte-identical to ``numpy``, silent numpy fallback
                 when the JIT is unavailable
``blocked-``     the budget-planned out-of-core sweep driving the
``compiled``     jitted kernel; byte-identical to ``blocked``
===============  ==================================================

The ``blocked``/``blocked-shm`` backends also accept ``engine="compiled"``
to run their existing partition/fold machinery over the jitted kernel.

Backends automatically fall back to the dense O(k·n²) evaluation for
kernels without a polynomial form (Cosine, Gaussian), matching paper
footnote 1.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import BackendError
from repro.kernels import Kernel, get_kernel
from repro.core.blockwise import cv_scores_blocked, cv_scores_blocked_shm
from repro.core.fastgrid import (
    cv_scores_fastgrid,
    cv_scores_fastgrid_python,
    fastgrid_row_contributions,
)
from repro.core.loocv import cv_scores_dense_grid
from repro.obs.tracer import current_tracer
from repro.parallel import WorkerPool
from repro.utils.numeric import fold_rows

__all__ = [
    "GridBackend",
    "BACKEND_REGISTRY",
    "get_backend",
    "list_backends",
    "register_backend",
]

#: Signature of a grid backend.
GridBackend = Callable[..., np.ndarray]

BACKEND_REGISTRY: Dict[str, GridBackend] = {}


def register_backend(name: str, backend: GridBackend, *, overwrite: bool = False) -> None:
    """Register a grid backend under ``name``."""
    if name in BACKEND_REGISTRY and not overwrite:
        raise BackendError(f"backend {name!r} is already registered")
    BACKEND_REGISTRY[name] = backend


def get_backend(name: str) -> GridBackend:
    """Look up a backend, importing heavy subsystems on demand."""
    if name in ("gpusim", "gpusim-tiled") and name not in BACKEND_REGISTRY:
        # The CUDA port registers itself at import time.
        import repro.cuda_port  # noqa: F401
    if name == "distributed" and name not in BACKEND_REGISTRY:
        # The fleet coordinator registers itself at import time.
        import repro.distributed.backend  # noqa: F401
    if name in ("compiled", "blocked-compiled") and name not in BACKEND_REGISTRY:
        # The compiled engine registers itself at import time.
        import repro.compiled.backend  # noqa: F401

    try:
        return BACKEND_REGISTRY[name]
    except KeyError:
        known = ", ".join(
            sorted(
                set(BACKEND_REGISTRY)
                | {
                    "gpusim",
                    "gpusim-tiled",
                    "distributed",
                    "compiled",
                    "blocked-compiled",
                }
            )
        )
        raise BackendError(f"unknown backend {name!r}; known: {known}") from None


def list_backends() -> list[str]:
    """Registered backend names (gpusim included once imported)."""
    return sorted(BACKEND_REGISTRY)


def _wants_dense(kernel: str | Kernel) -> bool:
    return not get_kernel(kernel).supports_fast_grid


def _python_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    **_: object,
) -> np.ndarray:
    dense = _wants_dense(kernel)
    with current_tracer().span(
        "backend:python", n=int(np.asarray(x).shape[0]), k=len(bandwidths),
        dense=dense,
    ):
        if dense:
            return cv_scores_dense_grid(x, y, bandwidths, kernel)
        return cv_scores_fastgrid_python(x, y, bandwidths, kernel)


def _numpy_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    dtype: str = "float64",
    **_: object,
) -> np.ndarray:
    dense = _wants_dense(kernel)
    with current_tracer().span(
        "backend:numpy", n=int(np.asarray(x).shape[0]), k=len(bandwidths),
        dense=dense,
    ):
        if dense:
            return cv_scores_dense_grid(
                x, y, bandwidths, kernel, chunk_rows=chunk_rows
            )
        return cv_scores_fastgrid(
            x, y, bandwidths, kernel, chunk_rows=chunk_rows, dtype=dtype
        )


def _multicore_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    workers: int | None = None,
    pool: WorkerPool | None = None,
    dtype: str = "float64",
    **_: object,
) -> np.ndarray:
    n = int(np.asarray(x).shape[0])
    with current_tracer().span(
        "backend:multicore", n=n, k=len(bandwidths), dense=_wants_dense(kernel)
    ) as span:
        if _wants_dense(kernel):
            # Dense path parallelises poorly per-h; evaluate serially rather
            # than silently multiplying the O(k·n²) cost by pool overhead.
            return cv_scores_dense_grid(x, y, bandwidths, kernel)
        kern = get_kernel(kernel)
        grid = np.asarray(bandwidths, dtype=float)
        shared = (
            np.asarray(x, dtype=float),
            np.asarray(y, dtype=float),
            grid,
            kern.name,
        )

        def block_args(start: int, stop: int) -> tuple:
            return shared + (start, stop, dtype)

        owned = pool is None
        active = pool or WorkerPool(workers)
        span.set(workers=active.workers)
        try:
            # Ordered per-worker row matrices folded in global row order:
            # the canonical strict fold makes the curve bit-identical to
            # the serial numpy backend at every worker count.
            partials = active.map_over_blocks(
                fastgrid_row_contributions, n, block_args=block_args
            )
        finally:
            if owned:
                active.close()
        sums = np.zeros(len(grid), dtype=np.float64)
        for part in partials:
            fold_rows(part, sums)
        return sums / n


def _blocked_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    dtype: str = "float64",
    engine: str = "numpy",
    **_: object,
) -> np.ndarray:
    dense = _wants_dense(kernel)
    with current_tracer().span(
        "backend:blocked", n=int(np.asarray(x).shape[0]), k=len(bandwidths),
        dense=dense,
    ):
        if dense:
            # Dense kernels have no rolling-sum form; the dense evaluator
            # already chunks its row slabs, so just bound the chunk size.
            return cv_scores_dense_grid(x, y, bandwidths, kernel)
        return cv_scores_blocked(
            x, y, bandwidths, get_kernel(kernel).name,
            memory_budget=memory_budget, block_rows=block_rows, dtype=dtype,
            engine=engine,
        )


def _blocked_shm_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    workers: int | None = None,
    dtype: str = "float64",
    engine: str = "numpy",
    **_: object,
) -> np.ndarray:
    dense = _wants_dense(kernel)
    with current_tracer().span(
        "backend:blocked-shm", n=int(np.asarray(x).shape[0]),
        k=len(bandwidths), dense=dense,
    ):
        if dense:
            return cv_scores_dense_grid(x, y, bandwidths, kernel)
        return cv_scores_blocked_shm(
            x, y, bandwidths, get_kernel(kernel).name,
            memory_budget=memory_budget, block_rows=block_rows,
            workers=workers, dtype=dtype, engine=engine,
        )


register_backend("python", _python_backend)
register_backend("numpy", _numpy_backend)
register_backend("multicore", _multicore_backend)
register_backend("blocked", _blocked_backend)
register_backend("blocked-shm", _blocked_shm_backend)
