"""Blockwise out-of-core CV sweep: past the paper's n = 20,000 wall.

The paper's CUDA program stores two n×n float32 matrices in device
memory and therefore "cannot exceed n = 20,000" on its 4 GB Tesla.  The
same wall exists on the host: the vectorised fast grid search
materialises an m×n distance slab per chunk, and an unplanned chunk size
at n = 100,000 is a multi-gigabyte allocation.  This module makes the
memory ceiling an explicit *budget* instead of an accident:

1. a :func:`~repro.utils.membudget.plan_blocks` plan picks the row-block
   size B so that one block's sorted-sweep working set — distances,
   bin indices, per-term prefix sums — fits the byte budget
   (O(n·B + n·k) peak, never O(n²));
2. the sweep walks the blocks in index order, folding each block's
   per-observation contribution rows into the running k-vector with the
   canonical strict fold (:func:`~repro.utils.numeric.fold_rows`), so
   the CV curve is **bit-for-bit identical** to the ``numpy`` backend at
   *any* block size;
3. the shared-memory variant fans the blocks out over a
   :class:`~repro.parallel.WorkerPool` whose workers attach X, Y, the
   grid and the n×k contribution matrix by segment name
   (:mod:`repro.parallel.shm`) — per-block IPC is a ``(start, stop)``
   pair, and the parent performs the same global fold over the shared
   matrix, preserving the bit-exactness guarantee across worker counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.fastgrid import (
    fastgrid_block_sums,
    fastgrid_row_contributions,
    require_fast_grid_kernel,
)
from repro.obs.tracer import current_tracer
from repro.parallel.pool import WorkerPool, traced_work_unit
from repro.parallel.shm import ShmWorkspace, attach_workspace, current_workspace
from repro.resilience import faults
from repro.utils.membudget import BlockPlan, plan_blocks
from repro.utils.numeric import fold_rows
from repro.core.grid import ensure_bandwidth_grid
from repro.utils.validation import check_paired_samples

__all__ = [
    "cv_scores_blocked",
    "cv_scores_blocked_shm",
    "plan_for",
    "shm_block_rows",
    "shm_block_sums",
]


def plan_for(
    n: int,
    k: int,
    kernel_name: str,
    *,
    dtype: str = "float64",
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    output_matrix: bool = False,
) -> BlockPlan:
    """The block plan both blocked backends (and the engine) agree on."""
    kern = require_fast_grid_kernel(kernel_name)
    return plan_blocks(
        n,
        k,
        n_terms=len(kern.poly_terms or ()) or 1,
        itemsize=np.dtype(dtype).itemsize,
        budget=memory_budget,
        output_matrix=output_matrix,
        max_rows=block_rows,
    )


def cv_scores_blocked(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str = "epanechnikov",
    *,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Out-of-core CV scores: one budget-sized row block at a time.

    Peak memory is the plan's ``predicted_peak_bytes`` (asserted against
    tracemalloc in the test suite); the result is bit-for-bit the
    ``numpy`` backend's at every block size, including B = 1 and B >= n.
    ``engine="compiled"`` swaps the per-block window sums for the jitted
    kernel without moving a float64 bit (the ``blocked-compiled``
    backend).
    """
    x, y = check_paired_samples(x, y)
    grid = ensure_bandwidth_grid(bandwidths)
    kern = require_fast_grid_kernel(kernel)
    n = int(x.shape[0])
    k = int(grid.shape[0])
    tracer = current_tracer()
    total = np.zeros(k, dtype=np.float64)
    with tracer.span(
        "blocked-sweep", n=n, k=k, kernel=kern.name, dtype=dtype,
        engine=engine,
    ):
        with tracer.span("plan") as pspan:
            plan = plan_for(
                n,
                k,
                kern.name,
                dtype=dtype,
                memory_budget=memory_budget,
                block_rows=block_rows,
            )
            pspan.set(**plan.to_dict())
        for index, (bstart, bstop) in enumerate(plan.blocks()):
            with tracer.span(
                "block-sweep", index=index, start=bstart, stop=bstop
            ):
                contrib = fastgrid_row_contributions(
                    x, y, grid, kern.name, bstart, bstop, dtype, engine
                )
                with tracer.span("reduce", rows=bstop - bstart):
                    fold_rows(contrib, total)
    return total / n


# -- shared-memory workers (top-level, hence picklable) ----------------------


def shm_block_rows(
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
    engine: str = "numpy",
) -> tuple[int, int]:
    """Fill rows ``[start, stop)`` of the workspace's ``out`` matrix.

    The blocked-shm work unit: inputs come from the attached workspace
    (zero-copy), the contribution rows land in the shared n×k matrix,
    and only the row range crosses the pipe.  Forked workers inherit the
    parent's jitted kernels, so ``engine="compiled"`` costs no per-worker
    recompilation.
    """
    workspace = current_workspace()
    contrib = fastgrid_row_contributions(
        workspace["x"], workspace["y"], workspace["grid"],
        kernel_name, start, stop, dtype, engine,
    )
    workspace["out"][start:stop, :] = contrib
    return start, stop


def shm_block_sums(
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Block k-vector partial read from the attached workspace.

    The resilient engine's blocked-shm work unit: same partial sums as
    the serial ``blocked`` candidate (identical bits for an identical
    partition — what makes shm -> blocked degradation lossless), with
    the inputs attached rather than pickled.
    """
    workspace = current_workspace()
    return fastgrid_block_sums(
        workspace["x"], workspace["y"], workspace["grid"],
        kernel_name, start, stop, dtype, engine,
    )


def cv_scores_blocked_shm(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str = "epanechnikov",
    *,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    workers: int | None = None,
    dtype: str = "float64",
    engine: str = "numpy",
) -> np.ndarray:
    """Blockwise sweep fanned over a shared-memory worker pool.

    Workers attach the inputs and the n×k contribution matrix by
    segment name; the parent folds the finished matrix in global row
    order, so the scores are bit-for-bit :func:`cv_scores_blocked`'s —
    and hence the ``numpy`` backend's — for any block size *and* any
    worker count.
    """
    x, y = check_paired_samples(x, y)
    grid = ensure_bandwidth_grid(bandwidths)
    kern = require_fast_grid_kernel(kernel)
    n = int(x.shape[0])
    k = int(grid.shape[0])
    tracer = current_tracer()
    with tracer.span(
        "blocked-shm-sweep", n=n, k=k, kernel=kern.name, dtype=dtype,
        engine=engine,
    ):
        with tracer.span("plan") as pspan:
            plan = plan_for(
                n,
                k,
                kern.name,
                dtype=dtype,
                memory_budget=memory_budget,
                block_rows=block_rows,
                output_matrix=True,
            )
            pspan.set(**plan.to_dict())
        faults.fire("shm.segment", f"workspace[n={n},k={k}]")
        workspace = ShmWorkspace.create(
            inputs={"x": x, "y": y, "grid": grid},
            outputs={"out": ((n, k), "float64")},
        )
        try:
            blocks = plan.blocks()
            args_list = [
                (kern.name, bstart, bstop, dtype, engine)
                for bstart, bstop in blocks
            ]
            with WorkerPool(
                workers,
                initializer=attach_workspace,
                initargs=(workspace.manifest(),),
            ) as pool:
                if tracer.enabled:
                    with tracer.span(
                        "block-sweep", blocks=len(blocks), workers=pool.workers
                    ) as parent:
                        wrapped = [
                            (shm_block_rows,) + args for args in args_list
                        ]
                        outputs = pool.starmap(traced_work_unit, wrapped)
                        for _, spans, counters, maxima in outputs:
                            tracer.adopt(spans, parent_id=parent.span_id)
                            tracer.merge_counters(counters, maxima)
                else:
                    pool.starmap(shm_block_rows, args_list)
            with tracer.span("reduce", rows=n):
                total = fold_rows(workspace["out"])
        finally:
            workspace.close()
    return total / n
