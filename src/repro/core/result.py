"""Result types returned by bandwidth selectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import SelectionError

__all__ = ["SelectionResult"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one bandwidth selection.

    Attributes
    ----------
    bandwidth:
        The selected (CV-minimising) bandwidth.
    score:
        ``CV_lc`` at the selected bandwidth.
    method:
        Selector identifier, e.g. ``"grid-search"``/``"numerical-optimization"``.
    backend:
        Execution backend, e.g. ``"numpy"``, ``"python"``, ``"multicore"``,
        ``"gpusim"``.
    kernel:
        Kernel name used in the objective.
    n_observations:
        Sample size.
    bandwidths, scores:
        The evaluated grid and its CV curve (grid selectors), or the
        sequence of evaluated points (numerical optimisers).  May be empty
        for rule-of-thumb selectors.
    n_evaluations:
        Number of ``CV_lc`` evaluations performed.  Grid selectors report
        the grid size; numerical optimisers report actual objective calls
        (their cost driver).
    wall_seconds:
        Wall-clock duration of the selection.
    converged:
        False when a numerical optimiser hit its iteration cap or any
        restart failed; grid searches always converge.
    diagnostics:
        Free-form extras (restart trajectories, simulated GPU time,
        worker counts, refinement history...).
    resilience:
        The :class:`~repro.resilience.degrade.ResilienceReport` of the
        run when the selector ran with ``resilience=`` enabled (recorded
        faults, retries, backend degradations, resumed blocks); ``None``
        otherwise.
    """

    bandwidth: float
    score: float
    method: str
    backend: str
    kernel: str
    n_observations: int
    bandwidths: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    scores: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    n_evaluations: int = 0
    wall_seconds: float = 0.0
    converged: bool = True
    diagnostics: dict[str, Any] = field(default_factory=dict)
    resilience: Any | None = None

    def __post_init__(self) -> None:
        if not np.isfinite(self.bandwidth) or self.bandwidth <= 0.0:
            raise SelectionError(
                f"selected bandwidth must be positive and finite, got {self.bandwidth}"
            )

    @property
    def cv_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """``(bandwidths, scores)`` pair for plotting the CV curve."""
        return self.bandwidths, self.scores

    def is_boundary_minimum(self, *, rtol: float = 1e-9) -> bool:
        """True when the optimum sits on the edge of the evaluated grid.

        A boundary minimum suggests the grid range should be widened (or,
        at the lower edge, that the data favour less smoothing than the
        grid allows) — the natural trigger for the §IV-A refinement loop.
        """
        if self.bandwidths.size < 2:
            return False
        lo, hi = float(self.bandwidths.min()), float(self.bandwidths.max())
        return bool(
            np.isclose(self.bandwidth, lo, rtol=rtol)
            or np.isclose(self.bandwidth, hi, rtol=rtol)
        )

    def to_dict(self, *, include_curve: bool = True) -> dict[str, Any]:
        """JSON-ready dict (CLI ``--json``, the serving layer, artifacts).

        Arrays become lists; the resilience report is included via its
        own ``to_dict`` when present.  ``include_curve=False`` drops the
        evaluated grid/scores for compact payloads.
        """

        def scrub(value: Any) -> Any:
            if isinstance(value, dict):
                return {str(k): scrub(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [scrub(v) for v in value]
            if isinstance(value, np.ndarray):
                return value.tolist()
            if isinstance(value, np.generic):
                return value.item()
            return value

        out: dict[str, Any] = {
            "bandwidth": self.bandwidth,
            "score": self.score,
            "method": self.method,
            "backend": self.backend,
            "kernel": self.kernel,
            "n_observations": self.n_observations,
            "n_evaluations": self.n_evaluations,
            "wall_seconds": self.wall_seconds,
            "converged": self.converged,
            "diagnostics": scrub(self.diagnostics),
        }
        if include_curve:
            out["bandwidths"] = self.bandwidths.tolist()
            out["scores"] = self.scores.tolist()
        if self.resilience is not None and hasattr(self.resilience, "to_dict"):
            out["resilience"] = self.resilience.to_dict()
        else:
            out["resilience"] = None
        return out

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lines = [
            f"bandwidth selection via {self.method} [{self.backend}]",
            f"  kernel        : {self.kernel}",
            f"  n             : {self.n_observations}",
            f"  h*            : {self.bandwidth:.6g}",
            f"  CV(h*)        : {self.score:.6g}",
            f"  evaluations   : {self.n_evaluations}",
            f"  wall time (s) : {self.wall_seconds:.4f}",
            f"  converged     : {self.converged}",
        ]
        if self.diagnostics:
            keys = ", ".join(sorted(self.diagnostics))
            lines.append(f"  diagnostics   : {keys}")
        if self.resilience is not None:
            rep = self.resilience
            status = "degraded" if getattr(rep, "degraded", False) else "clean"
            lines.append(
                f"  resilience    : {status} "
                f"({len(getattr(rep, 'faults', []))} faults absorbed, "
                f"{getattr(rep, 'retries', 0)} retries)"
            )
        return "\n".join(lines)
