"""High-level convenience API.

Most users need exactly one call::

    from repro import select_bandwidth
    result = select_bandwidth(x, y)          # fast grid search, Epanechnikov
    result.bandwidth

Power users construct selectors directly from
:mod:`repro.core.selectors`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import ValidationError
from repro.core.grid import BandwidthGrid
from repro.core.result import SelectionResult
from repro.core.selectors import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
)
from repro.obs.tracer import TracerLike, coerce_tracer, current_tracer, use_tracer
from repro.utils.validation import check_paired_samples

if TYPE_CHECKING:  # deferred: serving/resilience import the core back
    from repro.resilience.engine import ResilienceConfig
    from repro.serving.cache import ArtifactCache

__all__ = ["select_bandwidth"]

_METHOD_ALIASES = {
    "grid": "grid",
    "grid-search": "grid",
    "fast-grid": "grid",
    "numeric": "numeric",
    "numerical": "numeric",
    "numerical-optimization": "numeric",
    "np": "numeric",
    "rot": "rule-of-thumb",
    "rule-of-thumb": "rule-of-thumb",
    "bagged": "bagged",
    "bagged-cv": "bagged",
    "bagging": "bagged",
}


def _selection_cache_key(
    x: np.ndarray,
    y: np.ndarray,
    *,
    canonical: str,
    kernel: str,
    n_bandwidths: int,
    grid: BandwidthGrid | None,
    backend: str,
    options: dict[str, Any],
) -> str:
    """Fingerprint of everything that determines this selection's output."""
    from repro.kernels import get_kernel
    from repro.serving.cache import selection_fingerprint

    if canonical in ("grid", "bagged"):
        # The bagged key covers the full-sample grid; (root seed, r, m)
        # arrive through ``options``, normalised by resolve_plan_options
        # before this function runs.
        grid_values = (
            grid.values if grid is not None else BandwidthGrid.for_sample(
                x, n_bandwidths
            ).values
        )
    else:
        grid_values = np.empty(0, dtype=np.float64)
    keyed_options = dict(options)
    keyed_options["n_bandwidths"] = n_bandwidths
    return selection_fingerprint(
        x,
        y,
        grid_values,
        get_kernel(kernel).name,
        method=canonical,
        backend=backend if canonical in ("grid", "bagged") else canonical,
        options=keyed_options,
    )


def select_bandwidth(
    x: np.ndarray,
    y: np.ndarray,
    *,
    method: str = "grid",
    kernel: str = "epanechnikov",
    n_bandwidths: int = 50,
    grid: BandwidthGrid | None = None,
    backend: str = "numpy",
    memory_budget: int | float | str | None = None,
    cache: "ArtifactCache | None" = None,
    resilience: "ResilienceConfig | bool | None" = None,
    resume: str | Path | None = None,
    trace: "bool | TracerLike | None" = None,
    **options: Any,
) -> SelectionResult:
    """Select the LOO-CV-optimal bandwidth for a kernel regression of y on x.

    Parameters
    ----------
    x, y:
        Paired observations (1-D, equal length, n >= 3).
    method:
        ``"grid"`` — the paper's fast sorted grid search (default and
        recommended: deterministic, guaranteed global on the grid);
        ``"bagged"`` — subsampled-CV bagging for huge n (the grid sweep
        on r seeded subsamples of size m, rescaled by the n^(−1/5) rate;
        pass ``subsamples=``/``subsample_size=``/``root_seed=``);
        ``"numeric"`` — R ``np``-style numerical optimisation;
        ``"rule-of-thumb"`` — instant normal-reference baseline.
    kernel:
        Kernel name (see :func:`repro.kernels.list_kernels`).
    n_bandwidths, grid:
        Grid configuration (grid method only).
    backend:
        Execution backend for the grid method (and for each subsample
        sweep of the bagged method): ``"numpy"``, ``"python"``,
        ``"multicore"``, ``"blocked"``, ``"blocked-shm"``, ``"gpusim"``,
        ``"gpusim-tiled"``, ``"distributed"``.
    memory_budget:
        Byte budget for the blockwise out-of-core backends — an int or a
        string like ``"2GB"``/``"512MiB"``.  ``None`` consults
        ``$REPRO_MEM_BUDGET`` and then the 1 GiB default (see
        :mod:`repro.utils.membudget`).  Part of the cache fingerprint,
        though the CV curve itself is bit-for-bit budget-independent.
    cache:
        An :class:`~repro.serving.cache.ArtifactCache`.  The selection is
        keyed by the SHA-256 fingerprint of ``(x, y, grid, kernel,
        method, backend, options)``; on a hit the cached
        :class:`SelectionResult` is returned **without recomputing the
        sweep** — bit-for-bit identical to the cold run, with
        ``diagnostics["cache"] == "hit"``.  On a miss the result (and,
        for the grid method, the CV curve) is stored for next time.
    resilience:
        ``True`` or a :class:`~repro.resilience.engine.ResilienceConfig`
        to run on the resilient execution engine: transient faults are
        retried, device-level failures degrade down the backend fallback
        chain (``gpusim → gpusim-tiled → multicore → blocked → numpy``;
        ``blocked-shm`` joins at ``blocked``), and the result carries a
        ``.resilience`` report.
    resume:
        Checkpoint path (grid method only): completed row blocks are
        persisted there and a re-run with the same path resumes instead
        of recomputing them.  Implies ``resilience=True``.
    trace:
        ``True`` to record a hierarchical trace of this selection into a
        fresh :class:`~repro.obs.Tracer` and attach its JSON-ready
        snapshot as ``diagnostics["trace"]``; or pass a
        :class:`~repro.obs.Tracer` you hold (for the exporters in
        :mod:`repro.obs`); ``False`` forces tracing off even under an
        ambient tracer; ``None`` (default) inherits the ambient tracer
        installed by :func:`repro.obs.use_tracer` (no-op when none is).
        Tracing never changes results: curves are bit-for-bit identical
        with tracing on and off.
    options:
        Forwarded to the selector constructor (``refine_rounds``,
        ``workers``, ``n_restarts``, ``dtype``, ...).

    Returns
    -------
    SelectionResult
        With ``.bandwidth``, ``.score``, the evaluated CV curve and
        diagnostics.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import select_bandwidth
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(0, 1, 200)
    >>> y = 0.5 * x + 10 * x**2 + rng.uniform(0, 0.5, 200)
    >>> res = select_bandwidth(x, y, n_bandwidths=50)
    >>> 0 < res.bandwidth <= 1.0
    True
    """
    canonical = _METHOD_ALIASES.get(method.lower())
    if canonical is None:
        known = ", ".join(sorted(set(_METHOD_ALIASES)))
        raise ValidationError(f"unknown method {method!r}; known: {known}")
    x, y = check_paired_samples(x, y)
    if memory_budget is not None:
        # Into the option dict before the cache key is computed, so the
        # fingerprint distinguishes budgeted configurations.
        options["memory_budget"] = memory_budget
    if canonical == "bagged":
        # Make (root seed, r, m) explicit before the fingerprint is
        # computed, so defaulted and spelled-out plans share a cache key.
        from repro.bagged.plan import resolve_plan_options

        options = resolve_plan_options(int(x.shape[0]), options)
    if canonical != "grid" and resume is not None:
        raise ValidationError(
            "resume= (checkpointing) is only supported by the grid method"
        )

    tracer: TracerLike = current_tracer() if trace is None else coerce_tracer(trace)

    cache_key: str | None = None
    if cache is not None:
        cache_key = _selection_cache_key(
            x,
            y,
            canonical=canonical,
            kernel=kernel,
            n_bandwidths=n_bandwidths,
            grid=grid,
            backend=backend,
            options=options,
        )

    with use_tracer(tracer):
        with tracer.span(
            "select_bandwidth",
            method=canonical,
            kernel=kernel,
            backend=backend if canonical in ("grid", "bagged") else canonical,
            n=int(x.shape[0]),
        ) as root:
            warm = (
                cache.get_selection(cache_key)
                if cache is not None and cache_key is not None
                else None
            )
            if warm is not None:
                tracer.counter("selection_cache.hit")
                root.set(cache="hit", h_opt=warm.bandwidth)
                warm.diagnostics["fingerprint"] = cache_key
                result = warm
            else:
                if cache is not None:
                    tracer.counter("selection_cache.miss")
                selector: Any
                if canonical == "grid":
                    selector = GridSearchSelector(
                        kernel,
                        n_bandwidths=n_bandwidths,
                        grid=grid,
                        backend=backend,
                        cache=cache,
                        resilience=resilience,
                        resume=resume,
                        **options,
                    )
                elif canonical == "bagged":
                    from repro.bagged.selector import BaggedCVSelector

                    selector = BaggedCVSelector(
                        kernel,
                        n_bandwidths=n_bandwidths,
                        grid=grid,
                        backend=backend,
                        cache=cache,
                        resilience=resilience,
                        **options,
                    )
                elif canonical == "numeric":
                    selector = NumericalOptimizationSelector(
                        kernel, resilience=resilience, **options
                    )
                else:
                    if resilience is not None:
                        raise ValidationError(
                            "resilience= is not supported by the rule-of-thumb "
                            "method (it has no failure modes to guard)"
                        )
                    selector = RuleOfThumbSelector(kernel, **options)
                result = selector.select(x, y)
                if cache_key is not None:
                    result.diagnostics["fingerprint"] = cache_key
                if cache is not None and cache_key is not None:
                    cache.put_selection(cache_key, result)
                root.set(h_opt=result.bandwidth, backend_used=result.backend)
                if cache is not None:
                    root.set(cache="miss")

    # Attach the snapshot after the cache write so stored selections stay
    # trace-free (a warm hit records its own, much shorter, trace).
    if tracer.enabled:
        result.diagnostics["trace"] = tracer.to_payload()
    return result
