"""Leave-one-out cross-validation objective for kernel regression.

Implements ``CV_lc(h)`` of paper eq. (1)/(2) (Li & Racine eq. 3.20):

    CV_lc(h) = n⁻¹ Σ_i (Y_i − ĝ₋ᵢ(X_i))² M(X_i)

with ĝ₋ᵢ the leave-one-out Nadaraya–Watson estimator and ``M(X_i)`` the
indicator that its denominator is non-zero.

Three implementations, slowest to fastest:

* :func:`cv_score_reference` — transparently literal triple loop, the
  ground truth for unit tests (use only for tiny n).
* :func:`loo_estimates` / :func:`cv_score` — dense vectorised single-``h``
  evaluation, chunked over rows so the n×n weight matrix never
  materialises whole.  This is the objective the numerical-optimisation
  selector (the R ``np`` analogue) calls repeatedly.
* :func:`cv_scores_dense_grid` — the naive O(k·n²) grid evaluation the
  paper's complexity analysis starts from: an honest baseline for the
  fast-grid ablation, and the only grid path for kernels without a
  polynomial form (Cosine, Gaussian).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import Kernel, get_kernel
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import check_paired_samples, ensure_bandwidths

__all__ = [
    "cv_score_reference",
    "loo_estimates",
    "cv_score",
    "cv_scores_dense_grid",
    "dense_cv_block_stats",
    "dense_cv_block_sums",
]


def cv_score_reference(
    x: np.ndarray,
    y: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
) -> float:
    """Literal scalar-loop evaluation of ``CV_lc(h)`` (testing ground truth).

    O(n²) python loops — intended for n up to a few hundred.
    """
    x, y = check_paired_samples(x, y)
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {h}")
    n = x.shape[0]
    total = 0.0
    for i in range(n):
        num = 0.0
        den = 0.0
        for l in range(n):
            if l == i:
                continue
            w = float(kern(np.array([(x[i] - x[l]) / h]))[0])
            num += y[l] * w
            den += w
        if den > 0.0:
            resid = y[i] - num / den
            total += resid * resid
    return total / n


def loo_estimates(
    x: np.ndarray,
    y: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Leave-one-out estimates ``ĝ₋ᵢ(X_i)`` for one bandwidth.

    Returns ``(g_loo, valid)`` where ``valid`` is the ``M(X_i)`` mask;
    entries of ``g_loo`` with ``valid == False`` are NaN.

    The weight matrix is built in row chunks (views + in-place ops, per the
    optimisation-guide idioms) so memory stays bounded at any n.
    """
    x, y = check_paired_samples(x, y)
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {h}")
    n = x.shape[0]
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=3)
    g_loo = np.full(n, np.nan, dtype=float)
    valid = np.zeros(n, dtype=bool)
    base = np.arange(n, dtype=np.int64)
    for sl in chunk_slices(n, rows):
        u = (x[sl, None] - x[None, :]) / h
        w = kern(u)
        # Zero out the diagonal (the "leave one out"): row i of the chunk
        # corresponds to global observation sl.start + i.
        idx = base[sl]
        w[base[: idx.shape[0]], idx] = 0.0
        den = w.sum(axis=1)
        num = w @ y
        ok = den > 0.0
        g_loo[sl] = np.where(ok, num / np.where(ok, den, 1.0), np.nan)
        valid[sl] = ok
    return g_loo, valid


def cv_score(
    x: np.ndarray,
    y: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> float:
    """``CV_lc(h)`` for a single bandwidth (dense vectorised path)."""
    g_loo, valid = loo_estimates(x, y, h, kernel, chunk_rows=chunk_rows)
    resid = np.where(valid, y - np.where(valid, g_loo, 0.0), 0.0)
    return float(np.dot(resid, resid) / x.shape[0])


def dense_cv_block_stats(
    x: np.ndarray,
    y: np.ndarray,
    h: float,
    kernel_name: str,
    start: int,
    stop: int,
) -> np.ndarray:
    """Like :func:`dense_cv_block_sums` but also counts invalid points.

    Returns ``array([sq_residual_sum, invalid_count])`` for observations
    ``[start, stop)`` — a summable pair, so parallel reducers can add
    block results directly.  The invalid count (observations whose
    leave-one-out window is empty, ``M(X_i) = 0``) lets optimisation-based
    selectors apply the R ``np`` convention of treating an undefined CV
    function as +infinity instead of silently dropping terms.
    """
    kern = get_kernel(kernel_name)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    w = kern((x[start:stop, None] - x[None, :]) / h)
    idx = np.arange(start, stop)
    w[np.arange(idx.shape[0]), idx] = 0.0
    den = w.sum(axis=1)
    num = w @ y
    ok = den > 0.0
    resid = np.where(ok, y[start:stop] - num / np.where(ok, den, 1.0), 0.0)
    return np.array([float(np.dot(resid, resid)), float((~ok).sum())])


def dense_cv_block_sums(
    x: np.ndarray,
    y: np.ndarray,
    h: float,
    kernel_name: str,
    start: int,
    stop: int,
) -> float:
    """Squared-residual sum over observations ``[start, stop)`` for one ``h``.

    The parallel unit of work for the multicore numerical-optimisation
    selector (the paper's "Multicore R" program 2): top-level and picklable
    so a process pool can split the O(n²) objective into row blocks.  The
    full ``CV_lc(h)`` is the sum of these blocks over a partition of
    ``range(n)``, divided by n.
    """
    kern = get_kernel(kernel_name)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    w = kern((x[start:stop, None] - x[None, :]) / h)
    idx = np.arange(start, stop)
    w[np.arange(idx.shape[0]), idx] = 0.0
    den = w.sum(axis=1)
    num = w @ y
    ok = den > 0.0
    resid = np.where(ok, y[start:stop] - num / np.where(ok, den, 1.0), 0.0)
    return float(np.dot(resid, resid))


def cv_scores_dense_grid(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Naive grid evaluation: ``CV_lc(h)`` independently per grid point.

    O(k·n²) work — this is exactly the complexity the paper's sorted
    algorithm removes, kept as (a) the ablation baseline and (b) the grid
    path for non-polynomial kernels.

    To avoid paying the pairwise-difference construction k times, each row
    chunk's difference matrix is formed once and rescaled per bandwidth.
    """
    x, y = check_paired_samples(x, y)
    grid = ensure_bandwidths(bandwidths)
    kern = get_kernel(kernel)
    n = x.shape[0]
    k = grid.shape[0]
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=4)
    sq_sums = np.zeros(k, dtype=float)
    base = np.arange(n, dtype=np.int64)
    for sl in chunk_slices(n, rows):
        diff = x[sl, None] - x[None, :]
        idx = base[sl]
        local = base[: idx.shape[0]]
        for j, h in enumerate(grid):
            w = kern(diff / h)
            w[local, idx] = 0.0
            den = w.sum(axis=1)
            num = w @ y
            ok = den > 0.0
            resid = np.where(ok, y[sl] - num / np.where(ok, den, 1.0), 0.0)
            sq_sums[j] += float(np.dot(resid, resid))
    return sq_sums / n
