"""Bandwidth grids.

The paper's grid convention (§IV): an evenly spaced array of ``k``
candidate bandwidths whose maximum defaults to the *domain* of the
regressor (``max(X) - min(X)``) and whose minimum defaults to that domain
divided by ``k``.  For the paper's ``X ~ U(0,1)`` data that gives the grid
``{1/k, 2/k, ..., 1}``.

§IV-A also describes the refinement workflow for when 2,048 grid points
(the constant-memory cap) are not precise enough: re-run the search on a
progressively narrower range around the incumbent optimum —
:meth:`BandwidthGrid.refine_around` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import BandwidthGridError
from repro.utils.validation import as_float_array, check_positive_int, ensure_bandwidths

__all__ = [
    "BandwidthGrid",
    "default_grid",
    "ensure_bandwidth_grid",
    "MAX_CONSTANT_MEMORY_BANDWIDTHS",
]

#: Paper §IV-A: the typical GPU constant-memory cache working set is 8 KB,
#: which holds 2,048 float32 bandwidths — the hard cap on grid size for the
#: CUDA program.  CPU backends accept larger grids; the GPU backend raises.
MAX_CONSTANT_MEMORY_BANDWIDTHS: int = 2048


@dataclass(frozen=True)
class BandwidthGrid:
    """An increasing array of candidate bandwidths.

    Construct directly from values, or use :meth:`evenly_spaced` /
    :meth:`for_sample` for the paper's conventions.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", ensure_bandwidths(self.values))

    # -- constructors ------------------------------------------------------

    @classmethod
    def evenly_spaced(cls, minimum: float, maximum: float, k: int) -> "BandwidthGrid":
        """``k`` evenly spaced bandwidths from ``minimum`` to ``maximum``."""
        k = check_positive_int(k, name="k")
        if not (0.0 < minimum <= maximum):
            raise BandwidthGridError(
                f"need 0 < minimum <= maximum, got [{minimum}, {maximum}]"
            )
        if k == 1:
            return cls(np.array([maximum], dtype=float))
        if minimum == maximum:
            raise BandwidthGridError(
                "minimum == maximum but k > 1 would duplicate grid points"
            )
        return cls(np.linspace(minimum, maximum, k))

    @classmethod
    def for_sample(cls, x: np.ndarray, k: int) -> "BandwidthGrid":
        """The paper's default grid for a regressor sample.

        Maximum = domain of ``x``; minimum = domain / k; ``k`` points.
        Equivalent to ``{domain·1/k, ..., domain·k/k}``.
        """
        k = check_positive_int(k, name="k")
        x = as_float_array(x, name="x")
        domain = float(x.max() - x.min())
        if domain <= 0.0:
            raise BandwidthGridError(
                "x has zero domain (all values identical); no bandwidth grid exists"
            )
        return cls.evenly_spaced(domain / k, domain, k)

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, index: int) -> float:
        return float(self.values[index])

    @property
    def minimum(self) -> float:
        """Smallest candidate bandwidth."""
        return float(self.values[0])

    @property
    def maximum(self) -> float:
        """Largest candidate bandwidth."""
        return float(self.values[-1])

    @property
    def spacing(self) -> float:
        """Grid step (0 for a single-point grid)."""
        if len(self) < 2:
            return 0.0
        return float(self.values[1] - self.values[0])

    def fits_constant_memory(self) -> bool:
        """Whether this grid fits the 8 KB constant-memory working set."""
        return len(self) <= MAX_CONSTANT_MEMORY_BANDWIDTHS

    def refine_around(self, h: float, *, shrink: float = 10.0) -> "BandwidthGrid":
        """A new grid of the same size, centred on ``h``, ``shrink``× narrower.

        Implements the paper's §IV-A suggestion: "run the optimization code
        multiple times with progressively smaller ranges of possible
        bandwidths" when more precision is wanted than one grid provides.
        The refined range is clipped below at one original spacing over
        ``shrink`` so every grid point stays strictly positive.
        """
        if shrink <= 1.0:
            raise BandwidthGridError(f"shrink must exceed 1, got {shrink}")
        if not self.minimum <= h <= self.maximum:
            raise BandwidthGridError(
                f"h={h} lies outside the current grid [{self.minimum}, {self.maximum}]"
            )
        half = (self.maximum - self.minimum) / (2.0 * shrink)
        if half <= 0.0:
            return BandwidthGrid(np.array([h]))
        lo = max(h - half, self.spacing / shrink if self.spacing else h / shrink)
        hi = h + half
        return BandwidthGrid.evenly_spaced(lo, hi, len(self))


def default_grid(x: np.ndarray, k: int = 50) -> BandwidthGrid:
    """Shorthand for :meth:`BandwidthGrid.for_sample` with the paper's k=50."""
    return BandwidthGrid.for_sample(x, k)


def ensure_bandwidth_grid(bandwidths: "np.ndarray | BandwidthGrid") -> np.ndarray:
    """Validated contiguous float64 grid array from any grid-like input.

    The one entry point for sweep backends taking raw bandwidth input:
    ``ensure_bandwidths`` already returns a contiguous float64 array, so
    no further ``astype`` is needed (or wanted — a same-dtype cast is a
    dead full-array copy, which repro-lint flags as DTY003).
    """
    if isinstance(bandwidths, BandwidthGrid):
        return bandwidths.values
    return ensure_bandwidths(bandwidths)
