"""Core algorithms: CV objective, fast sorted grid search, selectors."""

from repro.core.api import select_bandwidth
from repro.core.backends import get_backend, list_backends, register_backend
from repro.core.fastgrid import (
    cv_scores_fastgrid,
    cv_scores_fastgrid_python,
    fastgrid_block_sums,
)
from repro.core.grid import (
    MAX_CONSTANT_MEMORY_BANDWIDTHS,
    BandwidthGrid,
    default_grid,
)
from repro.core.loocv import (
    cv_score,
    cv_score_reference,
    cv_scores_dense_grid,
    loo_estimates,
)
from repro.core.result import SelectionResult
from repro.core.scale import bandwidth_to_scale, robust_spread, scale_to_bandwidth
from repro.core.selectors import (
    BandwidthSelector,
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
    rule_of_thumb_bandwidth,
)

__all__ = [
    "MAX_CONSTANT_MEMORY_BANDWIDTHS",
    "BandwidthGrid",
    "BandwidthSelector",
    "GridSearchSelector",
    "NumericalOptimizationSelector",
    "RuleOfThumbSelector",
    "SelectionResult",
    "bandwidth_to_scale",
    "cv_score",
    "robust_spread",
    "scale_to_bandwidth",
    "cv_score_reference",
    "cv_scores_dense_grid",
    "cv_scores_fastgrid",
    "cv_scores_fastgrid_python",
    "default_grid",
    "fastgrid_block_sums",
    "get_backend",
    "list_backends",
    "loo_estimates",
    "register_backend",
    "rule_of_thumb_bandwidth",
    "select_bandwidth",
]
