"""Bandwidth selectors — the paper's four programs plus rules of thumb.

=============================  ============================================
Paper program                  Selector here
=============================  ============================================
1) Racine & Hayfield (R np)    :class:`NumericalOptimizationSelector`
2) Multicore R                 :class:`NumericalOptimizationSelector`
                               with ``workers > 1`` (row-parallel objective)
3) Sequential C                :class:`GridSearchSelector(backend="numpy")`
4) CUDA on GPU                 :class:`GridSearchSelector(backend="gpusim")`
(intro: "ad hoc rules")        :class:`RuleOfThumbSelector`
=============================  ============================================

All selectors expose one method, :meth:`BandwidthSelector.select`, and
return a :class:`repro.core.result.SelectionResult`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np
from scipy import optimize

if TYPE_CHECKING:  # deferred: both packages import the core back
    from repro.resilience.engine import ResilienceConfig
    from repro.serving.cache import ArtifactCache

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import get_kernel
from repro.core.backends import get_backend
from repro.core.grid import BandwidthGrid
from repro.core.loocv import cv_score, dense_cv_block_stats, loo_estimates
from repro.core.result import SelectionResult
from repro.obs.tracer import current_tracer
from repro.parallel import WorkerPool
from repro.utils.validation import check_paired_samples, check_positive_int

__all__ = [
    "BandwidthSelector",
    "GridSearchSelector",
    "NumericalOptimizationSelector",
    "RuleOfThumbSelector",
    "rule_of_thumb_bandwidth",
]


class BandwidthSelector(ABC):
    """Common interface: ``select(x, y) -> SelectionResult``."""

    #: Identifier reported in results.
    method: str = "abstract"

    @abstractmethod
    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        """Choose the CV-optimal (or rule-of-thumb) bandwidth for (x, y)."""


def _argmin_with_empty_window_guard(scores: np.ndarray) -> int:
    """Grid argmin that is robust to the h→0 degeneracy of ``CV_lc``.

    As h shrinks, leave-one-out windows empty out, ``M(X_i)`` zeroes every
    term, and the score collapses to exactly 0 — a spurious "perfect"
    minimum.  Validity is monotone in h (a window only grows with the
    bandwidth), so such zeros can only form a *prefix* of the (ascending)
    grid's score array: the guard skips leading zeros before taking the
    argmin.  A zero *after* a positive score is a genuinely perfect fit
    and remains eligible.  If every score is zero (e.g. constant Y, where
    any bandwidth is perfect), the largest bandwidth — maximal validity —
    is returned.
    """
    positive = np.flatnonzero(scores > 0.0)
    if positive.size == 0:
        return int(scores.shape[0] - 1)
    first = int(positive[0])
    return first + int(np.argmin(scores[first:]))


class GridSearchSelector(BandwidthSelector):
    """Grid search over ``CV_lc(h)`` using the fast sorted algorithm.

    Parameters
    ----------
    kernel:
        Kernel name or instance.  Polynomial compact kernels take the fast
        O(n² log n) path; others fall back to the dense O(k·n²) path.
    n_bandwidths:
        Grid size when no explicit grid is given (paper default style:
        grid spans ``[domain/k, domain]``).
    grid:
        Explicit :class:`BandwidthGrid` (overrides ``n_bandwidths``).
    backend:
        ``"numpy"`` (default), ``"python"``, ``"multicore"``, ``"gpusim"``.
    refine_rounds:
        Number of §IV-A refinement passes: after each search the grid is
        re-centred on the incumbent optimum and shrunk 10×, recovering
        precision beyond what one grid (e.g. the 2,048-point
        constant-memory cap) provides.
    backend_options:
        Extra keyword arguments forwarded to the backend (``workers``,
        ``chunk_rows``, ``dtype``, ``device`` ...).
    cache:
        An :class:`~repro.serving.cache.ArtifactCache`.  Each sweep's CV
        curve is looked up by its fingerprint (data + grid + kernel +
        backend + dtype) before computing; a hit skips the O(n² log n)
        sweep and returns the stored float64 curve bit-for-bit.
        Refinement rounds are cached per refined grid too.
    resilience:
        ``True``, a :class:`~repro.resilience.engine.ResilienceConfig`,
        or ``None`` (default).  When enabled, the sweep runs on the
        resilient execution engine: transient faults (worker crashes,
        timeouts, kernel-launch failures, corrupt blocks) are retried,
        structural faults (device OOM) degrade along the backend fallback
        chain, and the :class:`~repro.resilience.degrade.ResilienceReport`
        is attached to the result.
    resume:
        Checkpoint file path: the first sweep records completed row
        blocks there and a re-run with the same path replays them instead
        of recomputing.  Implies ``resilience=True``.
    """

    method = "grid-search"

    def __init__(
        self,
        kernel: str = "epanechnikov",
        *,
        n_bandwidths: int = 50,
        grid: BandwidthGrid | None = None,
        backend: str = "numpy",
        refine_rounds: int = 0,
        cache: "ArtifactCache | None" = None,
        resilience: "ResilienceConfig | bool | None" = None,
        resume: str | Path | None = None,
        **backend_options: Any,
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.n_bandwidths = check_positive_int(n_bandwidths, name="n_bandwidths")
        self.grid = grid
        self.backend_name = backend
        self.cache = cache
        if refine_rounds < 0:
            raise ValidationError(f"refine_rounds must be >= 0, got {refine_rounds}")
        self.refine_rounds = int(refine_rounds)
        if resilience is not None or resume is not None:
            from repro.resilience.engine import ResilienceConfig

            self.resilience = ResilienceConfig.coerce(resilience, resume=resume)
        else:
            self.resilience = None
        self.backend_options = backend_options

    def _grid_for(self, x: np.ndarray) -> BandwidthGrid:
        if self.grid is not None:
            return self.grid
        return BandwidthGrid.for_sample(x, self.n_bandwidths)

    def _with_curve_cache(
        self,
        evaluate: Callable[..., np.ndarray],
        x: np.ndarray,
        y: np.ndarray,
        engine: Any,
    ) -> Callable[..., np.ndarray]:
        """Wrap a sweep so exact-fingerprint curves skip recomputation.

        The curve key covers data, grid values, kernel, backend, and the
        dtype option — everything that determines the float summations —
        so a hit is bit-for-bit the curve the sweep would produce.  When
        the resilient engine degraded to another backend, the curve is
        stored under the backend that actually computed it.
        """
        if self.cache is None:
            return evaluate
        from repro.serving.cache import curve_fingerprint

        cache = self.cache
        dtype = str(self.backend_options.get("dtype", "default"))

        def key_for(values: np.ndarray, backend_name: str) -> str:
            return curve_fingerprint(
                x, y, values, self.kernel.name, backend=backend_name, dtype=dtype
            )

        def cached_evaluate(values: np.ndarray, *, first: bool) -> np.ndarray:
            tracer = current_tracer()
            key = key_for(values, self.backend_name)
            warm = cache.get_curve(key)
            if warm is not None and warm.shape == values.shape:
                tracer.counter("curve_cache.hit")
                return warm
            tracer.counter("curve_cache.miss")
            scores = evaluate(values, first=first)
            used = self.backend_name
            if engine is not None and engine.report.backend_used:
                used = engine.report.backend_used
            cache.put_curve(
                key if used == self.backend_name else key_for(values, used),
                values,
                np.asarray(scores, dtype=np.float64),
            )
            return scores

        return cached_evaluate

    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        x, y = check_paired_samples(x, y)
        grid = self._grid_for(x)
        start = time.perf_counter()

        if self.resilience is not None:
            from repro.resilience.engine import ResilientEngine

            engine = ResilientEngine(self.resilience)

            def evaluate(values: np.ndarray, *, first: bool) -> np.ndarray:
                # Refinement rounds reuse whatever backend the first sweep
                # settled on (no point re-walking a failed chain prefix)
                # and skip the checkpoint (its fingerprint is per-grid).
                target = self.backend_name
                if not first and engine.report.backend_used:
                    target = engine.report.backend_used
                return engine.cv_scores(
                    x,
                    y,
                    values,
                    self.kernel,
                    backend=target,
                    backend_options=self.backend_options,
                    checkpoint_enabled=first,
                )

        else:
            engine = None
            backend = get_backend(self.backend_name)

            def evaluate(values: np.ndarray, *, first: bool) -> np.ndarray:
                return np.asarray(
                    backend(x, y, values, self.kernel, **self.backend_options)
                )

        sweep = self._with_curve_cache(evaluate, x, y, engine)
        tracer = current_tracer()
        refinements: list[dict[str, float]] = []
        with tracer.span(
            "grid-search",
            backend=self.backend_name,
            k=len(grid),
            kernel=self.kernel.name,
            refine_rounds=self.refine_rounds,
        ):
            with tracer.span("evaluate-grid", round=0, k=len(grid)):
                scores = sweep(grid.values, first=True)
            with tracer.span("argmin", k=len(grid)):
                best_j = _argmin_with_empty_window_guard(scores)
            best_h = float(grid.values[best_j])
            best_score = float(scores[best_j])
            n_evals = len(grid)

            current = grid
            for round_idx in range(self.refine_rounds):
                current = current.refine_around(best_h)
                with tracer.span("refine", round=round_idx + 1, k=len(current)):
                    finer = sweep(current.values, first=False)
                    j = _argmin_with_empty_window_guard(finer)
                if finer[j] <= best_score:
                    best_h = float(current.values[j])
                    best_score = float(finer[j])
                n_evals += len(current)
                refinements.append(
                    {"round": round_idx + 1, "h": best_h, "score": best_score}
                )

        wall = time.perf_counter() - start
        diagnostics: dict[str, Any] = {"grid_minimum": grid.minimum,
                                       "grid_maximum": grid.maximum}
        if refinements:
            diagnostics["refinements"] = refinements
        backend_used = self.backend_name
        if engine is not None and engine.report.backend_used:
            backend_used = engine.report.backend_used
        return SelectionResult(
            bandwidth=best_h,
            score=best_score,
            method=self.method,
            backend=backend_used,
            kernel=self.kernel.name,
            n_observations=int(x.shape[0]),
            bandwidths=grid.values.copy(),
            scores=scores,
            n_evaluations=n_evals,
            wall_seconds=wall,
            converged=True,
            diagnostics=diagnostics,
            resilience=engine.report if engine is not None else None,
        )


class NumericalOptimizationSelector(BandwidthSelector):
    """Derivative-free numerical minimisation of ``CV_lc(h)``.

    This is the R ``np`` (``npregbw``) analogue — paper program 1 — and,
    with ``workers > 1``, the "Multicore R" program 2 whose objective is
    evaluated row-parallel across a process pool.

    The objective is not concave (paper §III), so like ``npregbw`` the
    selector supports multiple restarts from random initial bandwidths;
    distinct restarts can and do land in distinct local minima, which is
    the instability the grid search removes.

    Parameters
    ----------
    kernel:
        Kernel name or instance.
    method:
        ``"nelder-mead"`` (npregbw's default simplex search, run on
        ``log h`` to keep iterates positive) or ``"brent"``
        (bounded scalar minimisation).
    n_restarts:
        Number of optimisation starts (``nmulti`` in npregbw).
    bounds:
        ``(h_min, h_max)``; defaults to ``[domain/1000, domain]``.
    workers:
        Process count for the parallel objective (1 = serial).
    seed:
        Seed for the restart initial values.
    maxiter:
        Iteration cap per restart.
    resilience:
        ``True``, a :class:`~repro.resilience.engine.ResilienceConfig`,
        or ``None``.  With ``workers > 1``, each parallel objective
        evaluation is retried (with pool rebuild) on worker crashes and
        timeouts; a work unit that keeps failing degrades that evaluation
        to the serial path instead of aborting the optimisation.
    """

    method = "numerical-optimization"

    def __init__(
        self,
        kernel: str = "epanechnikov",
        *,
        method: str = "nelder-mead",
        n_restarts: int = 3,
        bounds: tuple[float, float] | None = None,
        workers: int = 1,
        seed: int | None = 0,
        maxiter: int = 200,
        resilience: "ResilienceConfig | bool | None" = None,
    ) -> None:
        self.kernel = get_kernel(kernel)
        if method not in ("nelder-mead", "brent"):
            raise ValidationError(
                f"method must be 'nelder-mead' or 'brent', got {method!r}"
            )
        self.opt_method = method
        self.n_restarts = check_positive_int(n_restarts, name="n_restarts")
        self.bounds = bounds
        self.workers = check_positive_int(workers, name="workers")
        self.seed = seed
        self.maxiter = check_positive_int(maxiter, name="maxiter")
        if resilience is not None:
            from repro.resilience.engine import ResilienceConfig

            self.resilience = ResilienceConfig.coerce(resilience)
        else:
            self.resilience = None

    # -- objective ---------------------------------------------------------

    def _objective(
        self,
        x: np.ndarray,
        y: np.ndarray,
        pool: WorkerPool | None,
        trace: list[tuple[float, float]],
        guard: Any = None,
    ) -> Callable[[float], float]:
        n = x.shape[0]
        kern_name = self.kernel.name

        # R np convention: a bandwidth at which any leave-one-out
        # denominator vanishes makes the CV function undefined, and the
        # objective returns a huge penalty (np uses DBL_MAX).  Without
        # this, CV_lc collapses to 0 as h -> 0 (all windows empty) and
        # the optimiser runs to a degenerate bandwidth.
        penalty = np.finfo(np.float64).max / 1e6

        def serial_value(h: float) -> float:
            g_loo, valid = loo_estimates(x, y, h, self.kernel)
            if not valid.all():
                return penalty
            resid = y - g_loo
            return float(np.dot(resid, resid)) / n

        def parallel_stats(h: float) -> Any:
            assert pool is not None
            shared = (x, y, h, kern_name)
            if guard is None:
                return pool.sum_over_blocks(
                    dense_cv_block_stats, n, shared_args=shared
                )
            from repro.resilience.engine import resilient_parallel_sum
            from repro.resilience.policy import RetryBudgetExceeded

            try:
                return resilient_parallel_sum(
                    pool,
                    dense_cv_block_stats,
                    n,
                    shared_args=shared,
                    policy=guard.policy,
                    report=guard.report,
                    sleep=guard.sleep,
                    rng=guard.rng,
                )
            except RetryBudgetExceeded as exc:
                # This evaluation degrades to the serial path rather than
                # aborting the whole optimisation.
                guard.report.record_fault("objective:serial-fallback", exc)
                return None

        def cv(h: float) -> float:
            if h <= 0.0 or not np.isfinite(h):
                return penalty
            value: float | None = None
            if pool is not None:
                stats = parallel_stats(float(h))
                if stats is not None:
                    sq_sum, invalid = float(stats[0]), float(stats[1])
                    value = penalty if invalid > 0 else sq_sum / n
            if value is None:
                value = serial_value(float(h))
            trace.append((float(h), value))
            return value

        return cv

    def _bounds_for(self, x: np.ndarray) -> tuple[float, float]:
        if self.bounds is not None:
            lo, hi = self.bounds
            if not (0.0 < lo < hi):
                raise ValidationError(f"invalid bounds {self.bounds}")
            return float(lo), float(hi)
        domain = float(x.max() - x.min())
        if domain <= 0.0:
            raise SelectionError("x has zero domain; no bandwidth exists")
        return domain / 1000.0, domain

    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        x, y = check_paired_samples(x, y)
        lo, hi = self._bounds_for(x)
        rng = np.random.default_rng(self.seed)
        start_time = time.perf_counter()

        trace: list[tuple[float, float]] = []
        pool = WorkerPool(self.workers) if self.workers > 1 else None
        guard: Any = None
        report: Any = None
        if self.resilience is not None:
            from types import SimpleNamespace

            from repro.resilience.degrade import ResilienceReport

            report = ResilienceReport()
            report.backend_requested = "multicore" if pool is not None else "scipy"
            report.backend_used = report.backend_requested
            if pool is not None:
                guard = SimpleNamespace(
                    policy=self.resilience.policy,
                    report=report,
                    sleep=self.resilience.sleep,
                    rng=self.resilience.policy.jitter_rng(),
                )
        best_h = np.nan
        best_score = np.inf
        all_converged = True
        restart_results: list[dict[str, float]] = []
        tracer = current_tracer()
        try:
            if pool is not None:
                pool.open()
            cv = self._objective(x, y, pool, trace, guard)
            inits = np.exp(rng.uniform(np.log(lo), np.log(hi), size=self.n_restarts))
            with tracer.span(
                "numerical-optimization",
                optimizer=self.opt_method,
                restarts=self.n_restarts,
                workers=self.workers,
            ):
                for restart_idx, h0 in enumerate(inits):
                    with tracer.span("restart", index=restart_idx, h0=float(h0)):
                        if self.opt_method == "brent":
                            res = optimize.minimize_scalar(
                                cv,
                                bounds=(lo, hi),
                                method="bounded",
                                options={"maxiter": self.maxiter},
                            )
                            h_opt = float(res.x)
                            score = float(res.fun)
                            ok = bool(res.success)
                        else:
                            res = optimize.minimize(
                                lambda params: cv(float(np.exp(params[0]))),
                                x0=np.array([np.log(h0)]),
                                method="Nelder-Mead",
                                options={
                                    "maxiter": self.maxiter,
                                    "xatol": 1e-4,
                                    "fatol": 1e-10,
                                },
                            )
                            h_opt = float(np.exp(res.x[0]))
                            score = float(res.fun)
                            ok = bool(res.success)
                    restart_results.append(
                        {"h0": float(h0), "h": h_opt, "score": score}
                    )
                    all_converged = all_converged and ok
                    if score < best_score:
                        best_score = score
                        best_h = h_opt
        finally:
            if pool is not None:
                pool.close()

        if not np.isfinite(best_h):
            raise SelectionError("numerical optimisation produced no finite optimum")
        wall = time.perf_counter() - start_time
        evaluated = np.array(trace)
        return SelectionResult(
            bandwidth=float(np.clip(best_h, lo, hi)),
            score=best_score,
            method=self.method,
            backend="multicore" if self.workers > 1 else "scipy",
            kernel=self.kernel.name,
            n_observations=int(x.shape[0]),
            bandwidths=evaluated[:, 0]
            if evaluated.size
            else np.empty(0, dtype=np.float64),
            scores=evaluated[:, 1]
            if evaluated.size
            else np.empty(0, dtype=np.float64),
            n_evaluations=len(trace),
            wall_seconds=wall,
            converged=all_converged,
            diagnostics={
                "restarts": restart_results,
                "bounds": (lo, hi),
                "optimizer": self.opt_method,
                "workers": self.workers,
            },
            resilience=report,
        )


def rule_of_thumb_bandwidth(
    x: np.ndarray,
    kernel: str = "epanechnikov",
    *,
    constant: float = 1.06,
) -> float:
    """Normal-reference rule-of-thumb bandwidth (``bw.nrd`` style).

    ``h = C · min(σ̂, IQR/1.349) · n^{-1/5}``, rescaled from the Gaussian
    to the requested kernel through the canonical-bandwidth ratio.  This is
    the "ad hoc rule of thumb" the paper's introduction says practitioners
    substitute for the optimal bandwidth — kept as the zero-cost baseline.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValidationError("rule of thumb needs a 1-D sample of size >= 2")
    kern = get_kernel(kernel)
    sd = float(np.std(x, ddof=1))
    q75, q25 = np.percentile(x, [75.0, 25.0])
    iqr = float(q75 - q25) / 1.349
    spread = min(s for s in (sd, iqr) if s > 0.0) if max(sd, iqr) > 0.0 else 0.0
    if spread <= 0.0:
        raise SelectionError("sample has zero spread; no rule-of-thumb bandwidth")
    h_gauss = constant * spread * x.size ** (-0.2)
    from repro.kernels import GaussianKernel

    scale = kern.canonical_bandwidth / GaussianKernel().canonical_bandwidth
    return h_gauss * scale


class RuleOfThumbSelector(BandwidthSelector):
    """Zero-cost normal-reference baseline (no cross-validation).

    The reported ``score`` is the CV value *at* the rule-of-thumb
    bandwidth, so rule-of-thumb and CV selectors are directly comparable.
    """

    method = "rule-of-thumb"

    def __init__(
        self, kernel: str = "epanechnikov", *, constant: float = 1.06
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.constant = float(constant)

    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        x, y = check_paired_samples(x, y)
        start = time.perf_counter()
        with current_tracer().span("rule-of-thumb", kernel=self.kernel.name):
            h = rule_of_thumb_bandwidth(x, self.kernel, constant=self.constant)
            score = cv_score(x, y, h, self.kernel)
        wall = time.perf_counter() - start
        return SelectionResult(
            bandwidth=h,
            score=score,
            method=self.method,
            backend="numpy",
            kernel=self.kernel.name,
            n_observations=int(x.shape[0]),
            bandwidths=np.array([h]),
            scores=np.array([score]),
            n_evaluations=1,
            wall_seconds=wall,
            converged=True,
            diagnostics={"constant": self.constant},
        )
