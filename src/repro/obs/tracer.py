"""Hierarchical in-process tracing: spans, counters, context propagation.

The tracer is deliberately zero-dependency and pay-for-what-you-use:

* ``NULL_TRACER`` (the default everywhere) satisfies the same interface
  with constant-time no-ops, so instrumented code costs one attribute
  check when tracing is off.
* An active :class:`Tracer` records completed spans into a bounded
  ring buffer (old spans are dropped, never an unbounded list) and
  aggregates named counters / running maxima under a lock.
* Span nesting is propagated through :mod:`contextvars`, which follows
  both threads and asyncio tasks; forked pool workers call
  :func:`reset_worker_context` so child processes never inherit the
  parent's active span.

Timestamps come from an injectable monotonic ``clock`` (default
:func:`time.perf_counter`) so golden-trace tests can be deterministic.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Iterator, Mapping, Sequence, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "TracerLike",
    "coerce_tracer",
    "current_tracer",
    "reset_worker_context",
    "use_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named, timed phase with nesting and attributes."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float
    thread: str
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds between span entry and exit."""
        return self.end - self.start


class _SpanHandle:
    """Live span context manager; records a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start", "attributes", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: int | None,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self.start = 0.0
        self._token: Any = None

    def set(self, **attributes: Any) -> "_SpanHandle":
        """Attach (or overwrite) attributes on the live span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._token = _ACTIVE_SPAN.set(self)
        self.start = self._tracer.clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = self._tracer.clock()
        _ACTIVE_SPAN.reset(self._token)
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._record(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self.start,
                end=end,
                thread=threading.current_thread().name,
                attributes=self.attributes,
            )
        )


class _NullSpan:
    """Shared no-op span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        """Ignore attributes (no-op)."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op.

    Instrumentation sites guard data gathering behind ``tracer.enabled``
    so the only unconditional cost of tracing-off is returning the
    shared ``_NULL_SPAN`` singleton.
    """

    __slots__ = ()

    enabled: bool = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Discard the increment."""

    def record_max(self, name: str, value: float) -> None:
        """Discard the sample."""

    def spans(self) -> list[SpanRecord]:
        """No spans are ever recorded."""
        return []

    def counters(self) -> dict[str, float]:
        """No counters are ever recorded."""
        return {}

    def maxima(self) -> dict[str, float]:
        """No maxima are ever recorded."""
        return {}

    @property
    def dropped(self) -> int:
        """No spans are ever recorded, so none are ever dropped."""
        return 0


NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe in-process tracer with bounded ring-buffer storage.

    Parameters
    ----------
    max_events:
        Ring-buffer capacity; when full, the *oldest* spans are dropped
        and counted in ``dropped``.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    enabled: bool = True

    def __init__(
        self,
        max_events: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.clock = clock
        self._lock = threading.Lock()
        self._events: deque[SpanRecord] = deque(maxlen=max_events)
        self._counters: dict[str, float] = {}
        self._maxima: dict[str, float] = {}
        self._ids = itertools.count(1)
        self._dropped = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a span context manager nested under the active span (if any).

        The parent is taken from the ambient context variable only when
        the active span belongs to *this* tracer, so independent tracers
        never cross-link their trees.
        """
        active = _ACTIVE_SPAN.get(None)
        parent_id = None
        if isinstance(active, _SpanHandle) and active._tracer is self:
            parent_id = active.span_id
        return _SpanHandle(self, name, parent_id, dict(attributes))

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def record_max(self, name: str, value: float) -> None:
        """Keep the running maximum of a named gauge (e.g. float drift)."""
        with self._lock:
            prev = self._maxima.get(name)
            if prev is None or value > prev:
                self._maxima[name] = value

    def adopt(
        self,
        records: Sequence[Mapping[str, Any]],
        parent_id: int | None = None,
    ) -> None:
        """Graft spans recorded in another process into this tracer.

        ``records`` is the portable form produced by
        :meth:`export_spans` in a worker (fork-started workers share the
        parent's ``CLOCK_MONOTONIC`` origin, so timestamps align).  Span
        ids are re-issued from this tracer's sequence and the remote
        tree's roots are re-parented under ``parent_id``.
        """
        # Two passes: ring-buffer order is completion order (children close
        # before parents), so all remote ids must be mapped before any
        # parent link is rewritten.
        id_map: dict[int, int] = {
            int(rec["span_id"]): self._next_span_id() for rec in records
        }
        for rec in records:
            new_id = id_map[int(rec["span_id"])]
            old_parent = rec.get("parent_id")
            if old_parent is None:
                new_parent: int | None = parent_id
            else:
                new_parent = id_map.get(int(old_parent), parent_id)
            self._record(
                SpanRecord(
                    name=str(rec["name"]),
                    span_id=new_id,
                    parent_id=new_parent,
                    start=float(rec["start"]),
                    end=float(rec["end"]),
                    thread=str(rec.get("thread", "worker")),
                    attributes=dict(rec.get("attributes", {})),
                )
            )

    def merge_counters(self, counters: Mapping[str, float], maxima: Mapping[str, float]) -> None:
        """Fold counters/maxima exported from a worker into this tracer."""
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + amount
            for name, value in maxima.items():
                prev = self._maxima.get(name)
                if prev is None or value > prev:
                    self._maxima[name] = value

    # -- reading -----------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Snapshot of recorded spans, oldest first."""
        with self._lock:
            return list(self._events)

    def counters(self) -> dict[str, float]:
        """Snapshot of the counter table."""
        with self._lock:
            return dict(self._counters)

    def maxima(self) -> dict[str, float]:
        """Snapshot of the running-maximum table."""
        with self._lock:
            return dict(self._maxima)

    @property
    def dropped(self) -> int:
        """Number of spans evicted from the ring buffer so far."""
        with self._lock:
            return self._dropped

    def export_spans(self) -> list[dict[str, Any]]:
        """Spans as JSON-ready dicts (the portable form ``adopt`` accepts)."""
        return [
            {
                "name": rec.name,
                "span_id": rec.span_id,
                "parent_id": rec.parent_id,
                "start": rec.start,
                "end": rec.end,
                "thread": rec.thread,
                "attributes": dict(rec.attributes),
            }
            for rec in self.spans()
        ]

    def to_payload(self) -> dict[str, Any]:
        """Full JSON-ready snapshot: spans + counters + maxima + drop count."""
        return {
            "spans": self.export_spans(),
            "counters": self.counters(),
            "maxima": self.maxima(),
            "dropped": self.dropped,
        }

    # -- internals ---------------------------------------------------------

    def _next_span_id(self) -> int:
        return next(self._ids)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._events) == self.max_events:
                self._dropped += 1
            self._events.append(record)


TracerLike = Union[Tracer, NullTracer]

_ACTIVE_TRACER: ContextVar[TracerLike | None] = ContextVar("repro_obs_tracer", default=None)
_ACTIVE_SPAN: ContextVar[Any] = ContextVar("repro_obs_span", default=None)


def current_tracer() -> TracerLike:
    """The tracer installed in the current context (``NULL_TRACER`` if none)."""
    tracer = _ACTIVE_TRACER.get(None)
    return tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: TracerLike) -> Iterator[TracerLike]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def coerce_tracer(value: Union[bool, TracerLike, None]) -> TracerLike:
    """Normalize the public ``trace=`` argument into a tracer instance.

    ``True`` builds a fresh :class:`Tracer`; ``None``/``False`` mean
    disabled; a :class:`Tracer`/:class:`NullTracer` passes through.
    """
    if value is None or value is False:
        return NULL_TRACER
    if value is True:
        return Tracer()
    if isinstance(value, (Tracer, NullTracer)):
        return value
    raise TypeError(
        f"trace must be a bool, Tracer, NullTracer, or None, got {type(value).__name__}"
    )


def reset_worker_context() -> None:
    """Clear inherited tracer/span context in a forked pool worker.

    ``fork`` copies the parent's context variables; a worker that kept
    them would try to record into a tracer object it only holds a dead
    copy of.  Pool initializers call this so workers start traced-off.
    """
    _ACTIVE_TRACER.set(None)
    _ACTIVE_SPAN.set(None)
