"""Observability: hierarchical tracing through the sweep pipeline.

Zero-dependency spans, counters, and exporters.  The paper's headline
claims are about *where time goes* — per-observation sort vs. sweep
vs. reduction — and this package attributes wall-clock and numerical
behaviour to those phases end to end: ``select_bandwidth`` → selector →
backend → ``fastgrid`` blocks → resilience waves → serving requests.

Quick use::

    from repro import select_bandwidth
    from repro.obs import render_tree

    result = select_bandwidth(x, y, trace=True)
    trace = result.diagnostics["trace"]          # JSON-ready payload
    # or hold the tracer yourself:
    from repro.obs import Tracer, write_chrome_trace
    tracer = Tracer()
    select_bandwidth(x, y, trace=tracer)
    print(render_tree(tracer))
    write_chrome_trace("trace.json", tracer)     # chrome://tracing
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    render_tree,
    span_tree,
    trace_metrics_lines,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    TracerLike,
    coerce_tracer,
    current_tracer,
    reset_worker_context,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "TracerLike",
    "chrome_trace",
    "coerce_tracer",
    "current_tracer",
    "render_tree",
    "reset_worker_context",
    "span_tree",
    "trace_metrics_lines",
    "use_tracer",
    "write_chrome_trace",
]
