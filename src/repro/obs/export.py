"""Exporters for recorded traces.

Three consumers, three formats:

* :func:`chrome_trace` — the Chrome trace-event JSON object format,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev (complete
  ``"X"`` duration events plus ``"C"`` counter events).
* :func:`render_tree` — a plain-text phase tree with durations, for
  terminals and the ``repro trace`` subcommand.
* :func:`trace_metrics_lines` — flat ``repro_trace_*`` exposition lines
  merged into the serving ``/metrics`` endpoint.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Union

from repro.obs.tracer import SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "render_tree",
    "span_tree",
    "trace_metrics_lines",
    "write_chrome_trace",
]


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict[str, Any]:
    """Convert a tracer snapshot into a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest recorded span,
    so the viewer timeline starts at zero.  Counters are emitted as a
    single ``"C"`` event stamped at the trace end.
    """
    spans = tracer.spans()
    origin = min((rec.start for rec in spans), default=0.0)
    tids = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for rec in spans:
        tid = tids.setdefault(rec.thread, len(tids) + 1)
        args = {k: _json_value(v) for k, v in rec.attributes.items()}
        args["span_id"] = rec.span_id
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        events.append(
            {
                "name": rec.name,
                "cat": "repro",
                "ph": "X",
                "ts": (rec.start - origin) * 1e6,
                "dur": rec.duration * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    counters = tracer.counters()
    maxima = tracer.maxima()
    if counters or maxima:
        end = max((rec.end for rec in spans), default=origin)
        samples = dict(counters)
        samples.update({f"max:{k}": v for k, v in maxima.items()})
        events.append(
            {
                "name": "repro.counters",
                "cat": "repro",
                "ph": "C",
                "ts": (end - origin) * 1e6,
                "pid": 1,
                "tid": 0,
                "args": {k: float(v) for k, v in sorted(samples.items())},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": tracer.dropped},
    }


def write_chrome_trace(
    path: Union[str, Path],
    tracer: Tracer,
    process_name: str = "repro",
) -> Path:
    """Serialize :func:`chrome_trace` output to ``path``; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(chrome_trace(tracer, process_name), indent=2))
    return out


def span_tree(tracer: Tracer) -> list[tuple[SpanRecord, int]]:
    """Flatten spans into depth-first ``(record, depth)`` pairs.

    Children are ordered by start time under their parent; spans whose
    parent was evicted from the ring buffer surface as roots.
    """
    spans = sorted(tracer.spans(), key=lambda rec: (rec.start, rec.span_id))
    present = {rec.span_id for rec in spans}
    children: dict[int | None, list[SpanRecord]] = {}
    for rec in spans:
        parent = rec.parent_id if rec.parent_id in present else None
        children.setdefault(parent, []).append(rec)

    out: list[tuple[SpanRecord, int]] = []

    def visit(parent: int | None, depth: int) -> None:
        for rec in children.get(parent, []):
            out.append((rec, depth))
            visit(rec.span_id, depth + 1)

    visit(None, 0)
    return out


def render_tree(tracer: Tracer, attribute_limit: int = 4) -> str:
    """Render the span tree as indented text with millisecond durations."""
    lines = []
    for rec, depth in span_tree(tracer):
        attrs = ""
        if rec.attributes:
            shown = list(rec.attributes.items())[:attribute_limit]
            body = ", ".join(f"{k}={_short(v)}" for k, v in shown)
            extra = len(rec.attributes) - len(shown)
            if extra > 0:
                body += f", +{extra} more"
            attrs = f"  [{body}]"
        lines.append(f"{'  ' * depth}{rec.name}  {rec.duration * 1e3:.3f} ms{attrs}")
    counters = tracer.counters()
    maxima = tracer.maxima()
    if counters or maxima:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value:g}")
        for name, value in sorted(maxima.items()):
            lines.append(f"  max {name} = {value:.6g}")
    if tracer.dropped:
        lines.append(f"(dropped {tracer.dropped} spans: ring buffer full)")
    return "\n".join(lines)


_METRIC_SAFE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    return _METRIC_SAFE.sub("_", name).strip("_").lower()


def trace_metrics_lines(tracer: Tracer, prefix: str = "repro_trace") -> list[str]:
    """Aggregate spans into flat exposition lines for ``/metrics``.

    Per span name: total seconds and completion count.  Counters and
    maxima are emitted verbatim (sanitized), plus the drop counter.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for rec in tracer.spans():
        key = _metric_name(rec.name)
        totals[key] = totals.get(key, 0.0) + rec.duration
        counts[key] = counts.get(key, 0) + 1
    lines = []
    for key in sorted(totals):
        lines.append(f"{prefix}_span_{key}_seconds_total {totals[key]:.9g}")
        lines.append(f"{prefix}_span_{key}_count {counts[key]}")
    for name, value in sorted(tracer.counters().items()):
        lines.append(f"{prefix}_counter_{_metric_name(name)} {value:.9g}")
    for name, value in sorted(tracer.maxima().items()):
        lines.append(f"{prefix}_max_{_metric_name(name)} {value:.9g}")
    lines.append(f"{prefix}_spans_dropped {tracer.dropped}")
    return lines


def _json_value(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _short(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return text if len(text) <= 24 else text[:21] + "..."
