"""SM occupancy model — why the paper picks 512 threads per block.

§IV-B: "Because this main kernel does not use shared memory or
coordination across threads, the block size and grid size were selected
to minimize the run-time.  The total number of threads in the grid was
set equal to the number of observations in the data.  The fastest
performance was found with threads per block set to 512, the maximum
possible on the GPU being used."

This module reproduces that reasoning quantitatively with the classic
CUDA occupancy calculation for CC 1.x hardware: how many blocks fit on
one SM simultaneously, limited by

* the per-SM thread cap (1,024 on CC 1.3),
* the per-SM block cap (8),
* warp granularity (threads round up to 32-lane warps),
* per-block shared memory (16 KB per SM on CC 1.3),
* registers (modelled per-thread; 16,384 per SM on CC 1.3).

For a kernel with no shared memory and a modest register count, 512
threads/block hits 100 % occupancy while larger *grids of small blocks*
bottleneck on the 8-block cap — exactly the paper's finding, asserted in
``tests/gpusim/test_occupancy.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LaunchConfigurationError, ValidationError
from repro.gpusim.device import DeviceSpec, get_device

__all__ = ["OccupancyReport", "occupancy", "best_block_size"]

#: CC 1.3 per-SM limits (CUDA occupancy calculator values).
_MAX_THREADS_PER_SM = 1024
_MAX_BLOCKS_PER_SM = 8
_REGISTERS_PER_SM = 16384


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy of one launch configuration on one SM."""

    block_dim: int
    warps_per_block: int
    blocks_per_sm: int
    active_threads: int
    occupancy: float
    limiter: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.block_dim} threads/block -> {self.blocks_per_sm} "
            f"block(s)/SM, {self.active_threads} active threads "
            f"({self.occupancy:.0%}, limited by {self.limiter})"
        )


def occupancy(
    block_dim: int,
    *,
    device: str | DeviceSpec | None = None,
    registers_per_thread: int = 16,
    shared_bytes_per_block: int = 0,
) -> OccupancyReport:
    """Occupancy of a launch with ``block_dim`` threads per block.

    ``registers_per_thread`` defaults to a typical value for a kernel of
    the main kernel's complexity on CC 1.x.
    """
    spec = get_device(device)
    if block_dim <= 0:
        raise LaunchConfigurationError(f"block_dim must be positive, got {block_dim}")
    if block_dim > spec.max_threads_per_block:
        raise LaunchConfigurationError(
            f"block_dim {block_dim} exceeds device limit "
            f"{spec.max_threads_per_block}"
        )
    if registers_per_thread <= 0:
        raise ValidationError("registers_per_thread must be positive")
    if shared_bytes_per_block < 0:
        raise ValidationError("shared_bytes_per_block must be >= 0")

    warp = spec.warp_size
    warps_per_block = -(-block_dim // warp)
    threads_rounded = warps_per_block * warp

    limits = {
        "threads": _MAX_THREADS_PER_SM // threads_rounded,
        "blocks": _MAX_BLOCKS_PER_SM,
        "registers": _REGISTERS_PER_SM // (registers_per_thread * threads_rounded),
    }
    if shared_bytes_per_block > 0:
        limits["shared-memory"] = (
            spec.shared_memory_per_block_bytes // shared_bytes_per_block
        )
    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(limits[limiter], 0)
    active = blocks * threads_rounded
    return OccupancyReport(
        block_dim=block_dim,
        warps_per_block=warps_per_block,
        blocks_per_sm=blocks,
        active_threads=min(active, _MAX_THREADS_PER_SM),
        occupancy=min(active, _MAX_THREADS_PER_SM) / _MAX_THREADS_PER_SM,
        limiter=limiter,
    )


def best_block_size(
    *,
    device: str | DeviceSpec | None = None,
    registers_per_thread: int = 16,
    shared_bytes_per_block: int = 0,
    candidates: tuple[int, ...] = (32, 64, 128, 256, 512),
) -> tuple[int, list[OccupancyReport]]:
    """The occupancy-maximising block size among ``candidates``.

    Ties break toward the *largest* block (fewer blocks → less per-block
    launch overhead), matching the paper's empirical preference for the
    512-thread maximum.
    """
    spec = get_device(device)
    reports = [
        occupancy(
            c,
            device=spec,
            registers_per_thread=registers_per_thread,
            shared_bytes_per_block=shared_bytes_per_block,
        )
        for c in candidates
        if c <= spec.max_threads_per_block
    ]
    if not reports:
        raise ValidationError("no candidate block size fits the device")
    best = max(reports, key=lambda r: (r.occupancy, r.block_dim))
    return best.block_dim, reports
