"""Iterative dual-array quicksort (the paper's device sort).

§IV-B: "An iterative variant of QuickSort is used, modified from [12]
(Finley) to sort floating point numbers and to also sort an auxiliary
variable.  This iterative QuickSort improves upon the recursive version
by eliminating the need for a tree of recursive subcalls ... using the
iterative version helps to maintain compatibility with earlier GPUs, as
earlier versions of CUDA do not allow functions to contain recursive
sub-calls."

This is that sort: an explicit-stack quicksort over a key array that
carries one auxiliary (payload) array through the same permutation.  Each
simulated GPU thread runs its own private instance to order its row of
``|X_i − X_j|`` values together with the matching ``Y`` values.

The explicit stack bound (2·⌈log₂ n⌉ frames when the smaller partition is
pushed first — here, as in Finley's original, the stack simply holds both
sides, bounded by ``MAX_LEVELS``) mirrors the fixed-size array a CC 1.x
device function must declare.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import KernelExecutionError, ValidationError

__all__ = ["iterative_quicksort", "quicksort_ops_estimate", "MAX_LEVELS"]

#: Fixed explicit-stack depth, as a device function would declare it.
#: 64 levels cover any input a 64-bit index can address.
MAX_LEVELS: int = 64


def iterative_quicksort(
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    *,
    count_ops: bool = False,
) -> int:
    """Sort ``keys`` ascending in place, permuting ``payload`` alongside.

    A faithful port of Finley's non-recursive quicksort: pivot = first
    element of the segment, two inward-moving cursors, explicit
    ``beg``/``end`` stacks.  Degenerate (already-sorted) inputs hit the
    classic O(n²) worst case, exactly as the paper's device code would —
    callers who care should not feed sorted data (the bandwidth program
    sorts *distances of randomly ordered observations*, where this is a
    non-issue).

    Returns the number of key comparisons+moves when ``count_ops`` is
    true (0 otherwise) so the timing model can be validated against the
    instrumented count.
    """
    if keys.ndim != 1:
        raise ValidationError(f"keys must be 1-D, got shape {keys.shape}")
    if payload is not None and payload.shape != keys.shape:
        raise ValidationError(
            f"payload shape {payload.shape} != keys shape {keys.shape}"
        )
    n = keys.shape[0]
    if n < 2:
        return 0

    beg = [0] * MAX_LEVELS
    end = [0] * MAX_LEVELS
    beg[0], end[0] = 0, n
    top = 0
    ops = 0

    while top >= 0:
        lo, hi = beg[top], end[top]
        if hi - lo < 2:
            top -= 1
            continue
        # Pivot: first element of the segment (Finley's choice).
        pivot_key = keys[lo]
        pivot_payload = payload[lo] if payload is not None else None
        left, right = lo, hi - 1
        while left < right:
            while keys[right] >= pivot_key and left < right:
                right -= 1
                ops += 1
            if left < right:
                keys[left] = keys[right]
                if payload is not None:
                    payload[left] = payload[right]
                left += 1
                ops += 1
            while keys[left] <= pivot_key and left < right:
                left += 1
                ops += 1
            if left < right:
                keys[right] = keys[left]
                if payload is not None:
                    payload[right] = payload[left]
                right -= 1
                ops += 1
        keys[left] = pivot_key
        if payload is not None:
            payload[left] = pivot_payload
        # Keep the larger segment in the current frame and push the
        # smaller on top (processed first): bounds the explicit stack at
        # ⌈log₂ n⌉ frames even on sorted input — the one modification to
        # Finley's frame ordering needed to honour a fixed-size stack.
        left_seg = (lo, left)
        right_seg = (left + 1, hi)
        if left_seg[1] - left_seg[0] >= right_seg[1] - right_seg[0]:
            larger, smaller = left_seg, right_seg
        else:
            larger, smaller = right_seg, left_seg
        beg[top], end[top] = larger
        top += 1
        if top >= MAX_LEVELS:
            raise KernelExecutionError(
                "quicksort explicit stack overflow (MAX_LEVELS exceeded)"
            )
        beg[top], end[top] = smaller
    return ops if count_ops else 0


def quicksort_ops_estimate(n: int) -> float:
    """Expected comparison count for random input, ``≈ 1.39·n·log₂ n``.

    The timing model uses this analytic form; the instrumented
    ``count_ops`` path exists to validate it (see the gpusim tests).
    """
    if n < 2:
        return 0.0
    return 1.39 * n * np.log2(n)
