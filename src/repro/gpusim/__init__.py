"""A CUDA-like GPU simulator.

This package substitutes for the paper's NVIDIA Tesla S1070 (no physical
GPU is available in this environment).  It reproduces the CUDA
*programming and resource model* the paper's program is written against:

* :mod:`~repro.gpusim.device` — device specs (SMs, warps, clocks, the
  paper's Tesla profile and a modern profile);
* :mod:`~repro.gpusim.memory` — capacity-enforced global memory (the
  4 GB OOM wall at n > 20,000), the 8 KB constant-memory working set
  (k <= 2,048 bandwidths), and per-block shared memory;
* :mod:`~repro.gpusim.kernel` — SPMD kernel launches with
  ``__syncthreads`` barriers (generator-based cooperative scheduling);
* :mod:`~repro.gpusim.sort` — the iterative dual-array quicksort each
  thread runs (paper §IV-B, after Finley);
* :mod:`~repro.gpusim.reduction` — Harris-style shared-memory tree
  reductions (sum and argmin);
* :mod:`~repro.gpusim.timing` — the analytical roofline timing model
  calibrated to the paper's hardware.
"""

from repro.gpusim.device import (
    DEVICE_REGISTRY,
    MODERN_GPU,
    TESLA_S1070,
    DeviceSpec,
    get_device,
    register_device,
)
from repro.gpusim.kernel import LaunchStats, ThreadContext, launch_kernel
from repro.gpusim.memory import (
    ConstantMemory,
    DeviceBuffer,
    GlobalMemory,
    SharedMemory,
)
from repro.gpusim.occupancy import OccupancyReport, best_block_size, occupancy
from repro.gpusim.reduction import (
    argmin_reduction_kernel,
    device_argmin,
    device_sum,
    sum_reduction_kernel,
)
from repro.gpusim.sort import MAX_LEVELS, iterative_quicksort, quicksort_ops_estimate
from repro.gpusim.timing import PhaseTime, SimulatedRuntime, TimingModel

__all__ = [
    "DEVICE_REGISTRY",
    "MAX_LEVELS",
    "MODERN_GPU",
    "TESLA_S1070",
    "ConstantMemory",
    "DeviceBuffer",
    "DeviceSpec",
    "GlobalMemory",
    "LaunchStats",
    "OccupancyReport",
    "PhaseTime",
    "SharedMemory",
    "best_block_size",
    "occupancy",
    "SimulatedRuntime",
    "ThreadContext",
    "TimingModel",
    "argmin_reduction_kernel",
    "device_argmin",
    "device_sum",
    "get_device",
    "iterative_quicksort",
    "launch_kernel",
    "quicksort_ops_estimate",
    "register_device",
    "sum_reduction_kernel",
]
