"""Device models for the GPU simulator.

The paper's test machine carried "two Tesla S10 GPUs, each with 240
streaming cores and 4 GB of device-specific GPU memory" — i.e. one module
of a Tesla S1070 (GT200, compute capability 1.3): 30 streaming
multiprocessors × 8 scalar cores, 512-thread blocks, 16 KB shared memory
per block, no device-side recursion and no device-side ``malloc``.  Those
last two constraints are why the paper uses an *iterative* quicksort and
pre-allocates every intermediate matrix from the host (§IV-A/B).

:data:`TESLA_S1070` is the default device everywhere.  A modern profile
(:data:`MODERN_GPU`) is included for the "later versions of this study
will ... make use of more recent compute capability GPUs" direction —
it lifts the recursion/malloc restrictions and grows memory, which moves
the OOM wall far beyond n = 20,000.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.exceptions import ValidationError

__all__ = [
    "DeviceSpec",
    "TESLA_S1070",
    "MODERN_GPU",
    "DEVICE_REGISTRY",
    "get_device",
    "register_device",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA device."""

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    global_memory_bytes: int
    memory_bandwidth_gbs: float
    constant_cache_bytes: int = 8 * 1024
    shared_memory_per_block_bytes: int = 16 * 1024
    max_threads_per_block: int = 512
    warp_size: int = 32
    compute_capability: tuple[int, int] = (1, 3)
    supports_recursion: bool = False
    supports_device_malloc: bool = False
    #: Fixed per-program overhead (driver init, context, PCIe transfers of
    #: the small arrays) — the ~0.09 s floor of Table I's CUDA column.
    launch_overhead_seconds: float = 0.09
    #: Average simulated clock cycles per scalar device operation; > 1
    #: because GT200-era scalar pipelines do not retire one useful op per
    #: cycle per core once divergence and addressing are accounted for.
    cycles_per_op: float = 4.0

    def __post_init__(self) -> None:
        for attr in (
            "sm_count",
            "cores_per_sm",
            "global_memory_bytes",
            "constant_cache_bytes",
            "shared_memory_per_block_bytes",
            "max_threads_per_block",
            "warp_size",
        ):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"DeviceSpec.{attr} must be positive")
        if self.clock_ghz <= 0 or self.memory_bandwidth_gbs <= 0:
            raise ValidationError("clock and bandwidth must be positive")
        if self.max_threads_per_block % self.warp_size != 0:
            raise ValidationError(
                "max_threads_per_block must be a multiple of the warp size"
            )

    @property
    def total_cores(self) -> int:
        """Scalar cores across all SMs (240 on the Tesla S1070 module)."""
        return self.sm_count * self.cores_per_sm

    @property
    def ops_per_second(self) -> float:
        """Aggregate scalar-op throughput under the cycles-per-op model."""
        return self.total_cores * self.clock_ghz * 1e9 / self.cycles_per_op

    @property
    def bytes_per_second(self) -> float:
        """Global-memory streaming throughput."""
        return self.memory_bandwidth_gbs * 1e9

    def max_constant_floats(self, itemsize: int = 4) -> int:
        """Values fitting the constant-memory cache working set.

        8 KB / 4 B = 2,048 float32 — the paper's hard cap on grid size.
        """
        return self.constant_cache_bytes // itemsize

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with some fields replaced (for what-if experiments)."""
        return replace(self, **kwargs)


TESLA_S1070 = DeviceSpec(
    name="tesla-s1070",
    sm_count=30,
    cores_per_sm=8,
    clock_ghz=1.296,
    global_memory_bytes=4 * 1024**3,
    memory_bandwidth_gbs=102.0,
)

MODERN_GPU = DeviceSpec(
    name="modern-gpu",
    sm_count=80,
    cores_per_sm=64,
    clock_ghz=1.5,
    global_memory_bytes=24 * 1024**3,
    memory_bandwidth_gbs=700.0,
    constant_cache_bytes=8 * 1024,
    shared_memory_per_block_bytes=48 * 1024,
    max_threads_per_block=1024,
    compute_capability=(8, 6),
    supports_recursion=True,
    supports_device_malloc=True,
    launch_overhead_seconds=0.02,
    cycles_per_op=1.5,
)

DEVICE_REGISTRY: Dict[str, DeviceSpec] = {
    TESLA_S1070.name: TESLA_S1070,
    MODERN_GPU.name: MODERN_GPU,
}


def register_device(spec: DeviceSpec, *, overwrite: bool = False) -> DeviceSpec:
    """Add a device model to the registry."""
    if spec.name in DEVICE_REGISTRY and not overwrite:
        raise ValidationError(f"device {spec.name!r} is already registered")
    DEVICE_REGISTRY[spec.name] = spec
    return spec


def get_device(device: str | DeviceSpec | None = None) -> DeviceSpec:
    """Resolve a device by name/instance; default is the paper's Tesla."""
    if device is None:
        return TESLA_S1070
    if isinstance(device, DeviceSpec):
        return device
    try:
        return DEVICE_REGISTRY[device]
    except KeyError:
        known = ", ".join(sorted(DEVICE_REGISTRY))
        raise ValidationError(f"unknown device {device!r}; known: {known}") from None
