"""SPMD kernel execution for the GPU simulator.

A *device kernel* is a Python callable ``fn(ctx, *args)`` executed once
per thread, exactly the CUDA programming model:

* ``ctx.thread_idx`` / ``ctx.block_idx`` / ``ctx.block_dim`` /
  ``ctx.grid_dim`` mirror ``threadIdx.x`` etc.
* ``ctx.global_id`` is ``blockIdx.x * blockDim.x + threadIdx.x``.
* ``ctx.shared`` is the block's :class:`~repro.gpusim.memory.SharedMemory`.
* ``__syncthreads()``: kernels that synchronise are written as
  *generator functions* and ``yield`` at each barrier; the scheduler runs
  every thread of a block up to its next ``yield`` before any thread
  proceeds — a faithful cooperative simulation of the barrier (deadlock
  detection included: a thread returning early while others still wait is
  exactly the divergent-``__syncthreads`` bug class real CUDA leaves
  undefined, and the simulator reports it instead).

Blocks are independent (no inter-block sync primitive — true to CUDA),
so the scheduler runs them one after another.

Every launch validates its configuration against the device limits and
returns a :class:`LaunchStats` with instrumented per-thread operation
tallies, which the timing model can consume.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import (
    KernelExecutionError,
    LaunchConfigurationError,
)
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.memory import SharedMemory
from repro.resilience import faults

__all__ = ["ThreadContext", "LaunchStats", "launch_kernel"]


@dataclass
class LaunchStats:
    """Aggregate accounting for one kernel launch."""

    kernel_name: str
    grid_dim: int
    block_dim: int
    threads: int
    ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    barriers: int = 0

    def merge_thread(self, ops: int, bytes_read: int, bytes_written: int) -> None:
        """Fold one thread's tallies into the launch totals."""
        self.ops += ops
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written


class ThreadContext:
    """Per-thread view of the execution configuration (CUDA built-ins)."""

    __slots__ = (
        "thread_idx",
        "block_idx",
        "block_dim",
        "grid_dim",
        "shared",
        "_ops",
        "_bytes_read",
        "_bytes_written",
    )

    def __init__(
        self,
        thread_idx: int,
        block_idx: int,
        block_dim: int,
        grid_dim: int,
        shared: SharedMemory,
    ):
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.shared = shared
        self._ops = 0
        self._bytes_read = 0
        self._bytes_written = 0

    @property
    def global_id(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.block_idx * self.block_dim + self.thread_idx

    def tally(self, ops: int = 0, bytes_read: int = 0, bytes_written: int = 0) -> None:
        """Record work done by this thread (feeds the timing model)."""
        self._ops += ops
        self._bytes_read += bytes_read
        self._bytes_written += bytes_written


def launch_kernel(
    kernel_fn: Callable[..., Any],
    *,
    grid_dim: int,
    block_dim: int,
    args: tuple = (),
    device: str | DeviceSpec | None = None,
    shared_factory: Callable[[], SharedMemory] | None = None,
) -> LaunchStats:
    """Execute ``kernel_fn`` over ``grid_dim × block_dim`` threads.

    ``kernel_fn`` may be a plain function (no synchronisation) or a
    generator function whose ``yield`` statements are ``__syncthreads()``
    barriers.

    Raises
    ------
    LaunchConfigurationError
        Bad grid/block dimensions (mirrors
        ``cudaErrorInvalidConfiguration``).
    KernelExecutionError
        An exception escaped a device thread; the original is chained.
    """
    spec = get_device(device)
    if grid_dim <= 0 or block_dim <= 0:
        raise LaunchConfigurationError(
            f"grid_dim and block_dim must be positive, got {grid_dim}x{block_dim}"
        )
    if block_dim > spec.max_threads_per_block:
        raise LaunchConfigurationError(
            f"block_dim {block_dim} exceeds device limit "
            f"{spec.max_threads_per_block}"
        )

    # Chaos hook: an active fault plan can fail this launch.
    faults.fire(
        "gpusim.launch", getattr(kernel_fn, "__name__", "<kernel>")
    )
    stats = LaunchStats(
        kernel_name=getattr(kernel_fn, "__name__", "<kernel>"),
        grid_dim=grid_dim,
        block_dim=block_dim,
        threads=grid_dim * block_dim,
    )
    is_cooperative = inspect.isgeneratorfunction(kernel_fn)

    for block_idx in range(grid_dim):
        shared = shared_factory() if shared_factory is not None else SharedMemory(spec)
        contexts = [
            ThreadContext(t, block_idx, block_dim, grid_dim, shared)
            for t in range(block_dim)
        ]
        if is_cooperative:
            _run_cooperative_block(kernel_fn, contexts, args, stats)
        else:
            for ctx in contexts:
                try:
                    kernel_fn(ctx, *args)
                except Exception as exc:  # noqa: BLE001 - re-raise typed
                    raise KernelExecutionError(
                        f"thread ({block_idx},{ctx.thread_idx}) of "
                        f"{stats.kernel_name} failed: {exc}"
                    ) from exc
        for ctx in contexts:
            stats.merge_thread(ctx._ops, ctx._bytes_read, ctx._bytes_written)
    return stats


def _run_cooperative_block(
    kernel_fn: Callable,
    contexts: list[ThreadContext],
    args: tuple,
    stats: LaunchStats,
) -> None:
    """Drive one block of generator threads barrier-round by barrier-round."""
    generators = []
    for ctx in contexts:
        gen = kernel_fn(ctx, *args)
        generators.append(gen)
    active = [True] * len(generators)

    while any(active):
        progressed = 0
        finished_this_round = 0
        for i, gen in enumerate(generators):
            if not active[i]:
                continue
            try:
                next(gen)
                progressed += 1
            except StopIteration:
                active[i] = False
                finished_this_round += 1
            except Exception as exc:  # noqa: BLE001 - re-raise typed
                raise KernelExecutionError(
                    f"thread ({contexts[i].block_idx},{contexts[i].thread_idx}) "
                    f"of {stats.kernel_name} failed: {exc}"
                ) from exc
        if progressed:
            stats.barriers += 1
        # Divergent barrier: some threads hit __syncthreads() while others
        # already returned in the same round.  Real CUDA: undefined
        # behaviour / hang.  Simulator: explicit error.
        if progressed and finished_this_round and any(active):
            raise KernelExecutionError(
                f"divergent __syncthreads() in {stats.kernel_name}: "
                f"{finished_this_round} thread(s) exited while "
                f"{progressed} thread(s) reached a barrier"
            )
