"""Simulated device memory: global, constant, and shared.

The allocator reproduces the resource constraints the paper designs
around:

* **Global memory** is capacity-checked against the device's 4 GB.  The
  paper's program allocates two n×n float32 matrices plus several n×k
  ones; above n = 20,000 that no longer fits and ``cudaMalloc`` fails —
  :class:`GlobalMemory` raises :class:`~repro.exceptions.DeviceMemoryError`
  at exactly the same point (see ``tests/gpusim/test_memory.py``).
* **Constant memory** models the 8 KB *cached working set* (§IV-A): a
  bandwidth array larger than 2,048 float32 values is rejected.
* **Shared memory** is per-block and capped at the SM limit (16 KB on the
  Tesla); the argmin reduction's 2·T floats must fit it.

Allocations are rounded up to 256-byte granularity like the CUDA
allocator, and the pool tracks live/peak bytes so benches can report the
memory profile of each run.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.exceptions import (
    ConstantMemoryError,
    DeviceMemoryError,
    DeviceStateError,
    SharedMemoryError,
    ValidationError,
)
from repro.gpusim.device import DeviceSpec, get_device
from repro.resilience import faults

__all__ = ["DeviceBuffer", "GlobalMemory", "ConstantMemory", "SharedMemory"]

#: CUDA-like allocation granularity.
ALLOCATION_ALIGNMENT = 256


def _aligned(nbytes: int) -> int:
    return ((nbytes + ALLOCATION_ALIGNMENT - 1) // ALLOCATION_ALIGNMENT) * ALLOCATION_ALIGNMENT


@dataclass(eq=False)
class DeviceBuffer:
    """A device-resident array handle (the ``cudaMalloc`` result).

    Host code moves data with :meth:`copy_from_host` / :meth:`copy_to_host`
    (the ``cudaMemcpy`` analogue); device kernels index :attr:`array`
    directly.  Using a buffer after :meth:`GlobalMemory.free` raises.

    Buffers created with :meth:`GlobalMemory.reserve` are *account-only*:
    the device bytes are charged against capacity (so OOM behaviour is
    identical) but no host array backs them — the fast device executor
    uses them for the big n×n intermediates it streams through in chunks.
    """

    array: np.ndarray | None
    nbytes_reserved: int
    label: str = ""
    freed: bool = False

    def _check_alive(self) -> None:
        if self.freed:
            raise DeviceStateError(f"use of freed device buffer {self.label!r}")
        if self.array is None:
            raise DeviceStateError(
                f"device buffer {self.label!r} is account-only (reserved, "
                "not materialised); its contents cannot be accessed"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        self._check_alive()
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        self._check_alive()
        return self.array.dtype

    def copy_from_host(self, host: np.ndarray) -> None:
        """``cudaMemcpy(..., HostToDevice)``: shape/dtype-checked copy in."""
        self._check_alive()
        host = np.asarray(host)
        if host.shape != self.array.shape:
            raise ValidationError(
                f"host shape {host.shape} != device shape {self.array.shape}"
            )
        self.array[...] = host.astype(self.array.dtype, copy=False)

    def copy_to_host(self) -> np.ndarray:
        """``cudaMemcpy(..., DeviceToHost)``: returns a host-owned copy."""
        self._check_alive()
        return self.array.copy()

    def fill(self, value: float) -> None:
        """``cudaMemset``-style fill."""
        self._check_alive()
        self.array.fill(value)


class GlobalMemory:
    """Capacity-tracked global-memory pool for one device."""

    def __init__(self, device: str | DeviceSpec | None = None):
        self.device = get_device(device)
        self.capacity = int(self.device.global_memory_bytes)
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self._live: list[DeviceBuffer] = []

    def _admit(
        self,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type,
        label: str,
        *,
        materialize: bool,
    ) -> DeviceBuffer:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        if any(int(s) < 0 for s in shape):
            raise ValidationError(f"negative dimension in shape {shape}")
        np_dtype = np.dtype(dtype)
        nbytes = _aligned(int(np.prod(shape, dtype=np.int64)) * np_dtype.itemsize)
        # Chaos hook: an active fault plan can fail this cudaMalloc.
        faults.fire(
            "gpusim.malloc", f"cudaMalloc({label or shape}) on {self.device.name}"
        )
        if self.bytes_allocated + nbytes > self.capacity:
            raise DeviceMemoryError(
                f"device {self.device.name}: cannot allocate "
                f"{nbytes / 1e9:.3f} GB for {label or shape} — "
                f"{self.bytes_allocated / 1e9:.3f} GB of "
                f"{self.capacity / 1e9:.3f} GB already in use"
            )
        buf = DeviceBuffer(
            array=np.zeros(shape, dtype=np_dtype) if materialize else None,
            nbytes_reserved=nbytes,
            label=label,
        )
        self.bytes_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_allocated)
        self._live.append(buf)
        return buf

    def malloc(
        self,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        *,
        label: str = "",
    ) -> DeviceBuffer:
        """Allocate and zero a device array, enforcing capacity.

        Raises
        ------
        DeviceMemoryError
            When the (aligned) request would exceed device capacity —
            the ``cudaErrorMemoryAllocation`` the paper hits past
            n = 20,000.
        """
        return self._admit(shape, dtype, label, materialize=True)

    def reserve(
        self,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        *,
        label: str = "",
    ) -> DeviceBuffer:
        """Account-only allocation: charged against capacity, no host array.

        Capacity checks (and :class:`DeviceMemoryError`) are identical to
        :meth:`malloc`; only the host-side backing store is skipped.  The
        fast device executor reserves the paper's n×n intermediates this
        way, since it streams through them in chunks rather than holding
        them whole.
        """
        return self._admit(shape, dtype, label, materialize=False)

    def free(self, buffer: DeviceBuffer) -> None:
        """Release a buffer (double-free raises)."""
        if buffer.freed:
            raise DeviceStateError(f"double free of device buffer {buffer.label!r}")
        buffer.freed = True
        self.bytes_allocated -= buffer.nbytes_reserved
        self._live.remove(buffer)

    def free_all(self) -> None:
        """Release everything still live (``cudaDeviceReset`` analogue)."""
        for buf in list(self._live):
            self.free(buf)

    @property
    def live_buffers(self) -> list[DeviceBuffer]:
        """Currently allocated buffers (for leak assertions in tests)."""
        return list(self._live)

    def report(self) -> dict[str, float]:
        """Snapshot of the pool for bench diagnostics."""
        return {
            "device": self.device.name,
            "capacity_gb": self.capacity / 1e9,
            "allocated_gb": self.bytes_allocated / 1e9,
            "peak_gb": self.peak_bytes / 1e9,
            "live_buffers": len(self._live),
        }


class ConstantMemory:
    """The constant-memory store with its 8 KB cached working set.

    §IV-A: "Because the typical GPU's cache working set for constant
    memory is only 8 KB, no more than 2,048 bandwidth values can be
    considered in the optimization."
    """

    def __init__(self, device: str | DeviceSpec | None = None):
        self.device = get_device(device)
        self._data: np.ndarray | None = None

    def store(self, values: np.ndarray, *, dtype: np.dtype | type = np.float32) -> None:
        """Upload an array, enforcing the cached-working-set bound."""
        arr = np.ascontiguousarray(values, dtype=dtype)
        if arr.nbytes > self.device.constant_cache_bytes:
            limit = self.device.max_constant_floats(arr.itemsize)
            raise ConstantMemoryError(
                f"{arr.size} values ({arr.nbytes} B) exceed the "
                f"{self.device.constant_cache_bytes} B constant-memory "
                f"working set (max {limit} values of this dtype)"
            )
        self._data = arr

    def read(self) -> np.ndarray:
        """Device-side read of the stored array."""
        if self._data is None:
            raise DeviceStateError("constant memory has not been written")
        return self._data

    @property
    def occupied_bytes(self) -> int:
        """Bytes currently stored (0 when empty)."""
        return 0 if self._data is None else int(self._data.nbytes)


class SharedMemory:
    """Per-block scratch memory, capacity-checked against the SM limit."""

    def __init__(self, device: str | DeviceSpec | None = None):
        self.device = get_device(device)
        self.bytes_allocated = 0
        self._arrays: list[np.ndarray] = []

    def alloc(
        self, count: int, dtype: np.dtype | type = np.float32, *, label: str = ""
    ) -> np.ndarray:
        """Allocate a shared array visible to every thread in the block."""
        if count < 0:
            raise ValidationError(f"negative shared allocation {count}")
        np_dtype = np.dtype(dtype)
        nbytes = int(count) * np_dtype.itemsize
        limit = self.device.shared_memory_per_block_bytes
        if self.bytes_allocated + nbytes > limit:
            raise SharedMemoryError(
                f"block shared memory exhausted: {label or count} needs "
                f"{nbytes} B on top of {self.bytes_allocated} B "
                f"(limit {limit} B)"
            )
        arr = np.zeros(count, dtype=np_dtype)
        self.bytes_allocated += nbytes
        self._arrays.append(arr)
        return arr

    def reset(self) -> None:
        """Release all shared arrays (between block executions)."""
        self.bytes_allocated = 0
        self._arrays.clear()
