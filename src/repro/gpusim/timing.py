"""Analytical GPU timing model.

The functional simulator executes the paper's program *correctly* at any
size the host can afford, but a Python interpreter cannot reproduce GPU
*wall-clock* at n = 20,000 (4·10⁸ pairwise operations per grid sweep).
Run time is therefore modelled analytically, in the style of a
roofline/little's-law estimate, and calibrated so the Tesla-S1070 profile
reproduces the shape of the paper's Tables I–II (see EXPERIMENTS.md for
paper-vs-model numbers).

Model per execution phase::

    compute_seconds = ops · cycles_per_op / (active_cores · clock)
    memory_seconds  = transactions · transaction_bytes / bandwidth
    phase_seconds   = max(compute, memory)        # perfect overlap

with two GT200-specific realities baked in:

* **Uncoalesced access.**  The paper's main kernel has each thread
  quicksort its own row of an n×n matrix in *global memory*; neighbouring
  threads touch addresses n elements apart, so every 4-byte access costs
  a full memory transaction (128 B segments on CC 1.3, no cache).  That —
  not arithmetic — dominates the program, which is why the speedup over
  sequential C is ~2.5× rather than ~240×.
* **Divergence penalty.**  Data-dependent branch patterns (quicksort
  partitions, window sweeps) serialise warps; a scalar multiplier
  calibrated once against Table I covers it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceSpec, get_device
from repro.utils.calibration import host_bytes_per_second as _resolve_host_bandwidth

__all__ = ["PhaseTime", "SimulatedRuntime", "TimingModel"]

#: CC 1.x global-memory transaction size for scattered 4-byte accesses.
UNCOALESCED_TRANSACTION_BYTES = 128

#: Per-kernel-launch driver overhead (seconds).
LAUNCH_OVERHEAD_SECONDS = 5e-6


@dataclass(frozen=True)
class PhaseTime:
    """Modelled time of one phase of a device program."""

    name: str
    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        """Phase time under perfect compute/memory overlap."""
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def bound(self) -> str:
        """Which resource limits the phase: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


@dataclass(frozen=True)
class SimulatedRuntime:
    """Total modelled run time with a per-phase breakdown."""

    phases: tuple[PhaseTime, ...]
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        """Overhead plus the sum of all phase times."""
        return self.overhead_seconds + sum(p.seconds for p in self.phases)

    def phase(self, name: str) -> PhaseTime:
        """Look up a phase by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise ValidationError(f"no phase named {name!r}")

    def breakdown(self) -> str:
        """Human-readable table of the phase times."""
        lines = [f"{'phase':<18} {'seconds':>10} {'bound':>8}"]
        lines.append(f"{'(overhead)':<18} {self.overhead_seconds:>10.4f} {'-':>8}")
        for p in self.phases:
            lines.append(f"{p.name:<18} {p.seconds:>10.4f} {p.bound:>8}")
        lines.append(f"{'TOTAL':<18} {self.total_seconds:>10.4f}")
        return "\n".join(lines)


class TimingModel:
    """Roofline-style time estimates for a :class:`DeviceSpec`.

    Parameters
    ----------
    device:
        Device model (defaults to the paper's Tesla S1070).
    divergence_penalty:
        Scalar multiplier on both compute and memory terms covering warp
        divergence and partition-camping effects; 1.5 reproduces Table I
        on the Tesla profile.
    transaction_bytes:
        Memory transaction size charged per *uncoalesced* scalar access.
    host_bytes_per_second:
        Host-side streaming bandwidth used for the staging side of
        H2D/D2H transfers.  ``None`` resolves through the shared
        calibration source (:mod:`repro.utils.calibration`): a measured
        ``BENCH_roofline.json`` peak when present, else the conservative
        builtin default — the same figure the membudget planner's sweep
        estimate uses, so the two models can never disagree.
    """

    def __init__(
        self,
        device: str | DeviceSpec | None = None,
        *,
        divergence_penalty: float = 1.5,
        transaction_bytes: int = UNCOALESCED_TRANSACTION_BYTES,
        host_bytes_per_second: float | None = None,
    ):
        self.device = get_device(device)
        if divergence_penalty < 1.0:
            raise ValidationError("divergence_penalty must be >= 1")
        self.divergence_penalty = float(divergence_penalty)
        if transaction_bytes <= 0:
            raise ValidationError("transaction_bytes must be positive")
        self.transaction_bytes = int(transaction_bytes)
        self.host_bytes_per_second = _resolve_host_bandwidth(host_bytes_per_second)

    # -- primitive costs ----------------------------------------------------

    def compute_seconds(self, ops: float, *, threads: int | None = None) -> float:
        """Time to retire ``ops`` scalar operations across the device.

        When fewer threads than cores are resident, only ``threads`` cores
        contribute (SPMD occupancy below saturation) — this is what makes
        the GPU *slower* than sequential C at small n in Table I.
        """
        if ops < 0:
            raise ValidationError("ops must be non-negative")
        cores = self.device.total_cores
        if threads is not None:
            # Round threads up to whole warps: a 10-thread launch still
            # occupies one 32-lane warp.
            warps = -(-max(threads, 1) // self.device.warp_size)
            cores = min(cores, warps * self.device.warp_size)
        rate = cores * self.device.clock_ghz * 1e9 / self.device.cycles_per_op
        return self.divergence_penalty * ops / rate

    def memory_seconds_coalesced(self, nbytes: float) -> float:
        """Streaming time for ``nbytes`` of fully coalesced traffic."""
        if nbytes < 0:
            raise ValidationError("nbytes must be non-negative")
        return self.divergence_penalty * nbytes / self.device.bytes_per_second

    def memory_seconds_uncoalesced(self, accesses: float) -> float:
        """Time for scattered scalar accesses: one transaction each."""
        if accesses < 0:
            raise ValidationError("accesses must be non-negative")
        return self.memory_seconds_coalesced(accesses * self.transaction_bytes)

    def host_transfer_seconds(self, nbytes: float) -> float:
        """Host-side staging time for an H2D source / D2H sink.

        Charged at the *calibrated* host streaming bandwidth (not the
        device's), since on the paper's PCIe-attached S1070 the host copy
        into pinned staging buffers is what bounds transfer setup.
        """
        if nbytes < 0:
            raise ValidationError("nbytes must be non-negative")
        return nbytes / self.host_bytes_per_second

    # -- phase assembly ------------------------------------------------------

    def phase(
        self,
        name: str,
        *,
        ops: float = 0.0,
        threads: int | None = None,
        coalesced_bytes: float = 0.0,
        uncoalesced_accesses: float = 0.0,
    ) -> PhaseTime:
        """Build a :class:`PhaseTime` from raw work counts."""
        return PhaseTime(
            name=name,
            compute_seconds=self.compute_seconds(ops, threads=threads),
            memory_seconds=(
                self.memory_seconds_coalesced(coalesced_bytes)
                + self.memory_seconds_uncoalesced(uncoalesced_accesses)
            ),
        )

    def launch_overhead(self, launches: int) -> float:
        """Driver overhead for ``launches`` kernel launches."""
        if launches < 0:
            raise ValidationError("launches must be non-negative")
        return launches * LAUNCH_OVERHEAD_SECONDS
