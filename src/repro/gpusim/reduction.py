"""Shared-memory tree reductions (Harris, "Optimizing Parallel Reduction
in CUDA" — the paper's reference [17]).

Two device kernels, both written as cooperative generator kernels whose
``yield`` statements are ``__syncthreads()`` barriers, exactly following
the paper's §IV-B description:

* :func:`sum_reduction_kernel` — "a single block is called, and T
  elements are stored in shared memory.  Each thread t first adds
  together the values ... for the observations j for which j equals t
  modulus T.  Then, the threads synchronize, and each thread with
  t < T/2 adds to its sum the sum from the thread t+T/2.  The process
  repeats with T/4, T/8, and so on until thread zero contains the full
  sum."
* :func:`argmin_reduction_kernel` — "it is necessary to store 2·T
  elements in shared memory.  The first T contain the cross-validation
  scores, and the next T contain the bandwidths to which they
  correspond" — each pairwise min carries its bandwidth along, and
  element T of shared memory ends up holding the optimal bandwidth.

Host-side wrappers :func:`device_sum` and :func:`device_argmin` handle
the launch and result copy-back.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LaunchConfigurationError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.kernel import LaunchStats, launch_kernel
from repro.gpusim.memory import SharedMemory

__all__ = [
    "sum_reduction_kernel",
    "argmin_reduction_kernel",
    "device_sum",
    "device_argmin",
]


def _check_power_of_two(block_dim: int) -> None:
    if block_dim & (block_dim - 1):
        raise LaunchConfigurationError(
            f"tree reduction needs a power-of-two block, got {block_dim}"
        )


def sum_reduction_kernel(ctx, data: np.ndarray, n: int, out: np.ndarray, out_idx: int):
    """Single-block tree sum of ``data[:n]`` into ``out[out_idx]``."""
    t = ctx.thread_idx
    T = ctx.block_dim
    if t == 0:
        ctx.shared.alloc(T, np.float32, label="partial-sums")
    yield  # barrier: shared memory allocated before anyone writes it
    partial = ctx.shared._arrays[0]

    # Grid-stride accumulation: thread t owns elements j ≡ t (mod T).
    acc = np.float32(0.0)
    j = t
    while j < n:
        acc += np.float32(data[j])
        j += T
    partial[t] = acc
    ctx.tally(ops=max(1, (n + T - 1) // T), bytes_read=4 * max(1, (n + T - 1) // T))
    yield  # __syncthreads()

    stride = T // 2
    while stride >= 1:
        if t < stride:
            partial[t] += partial[t + stride]
            ctx.tally(ops=1)
        stride //= 2
        yield  # __syncthreads()

    if t == 0:
        out[out_idx] = partial[0]
        ctx.tally(bytes_written=4)


def argmin_reduction_kernel(
    ctx, scores: np.ndarray, values: np.ndarray, k: int, out: np.ndarray
):
    """Single-block argmin: ``out[0] = min score``, ``out[1] = its value``.

    ``values`` are the bandwidths tied to each score.  Entries beyond
    ``k`` and non-finite scores (bandwidths whose denominator was always
    zero) are treated as +inf so they never win.
    """
    t = ctx.thread_idx
    T = ctx.block_dim
    if t == 0:
        # 2*T floats: T scores followed by T bandwidths (paper §IV-B).
        ctx.shared.alloc(2 * T, np.float32, label="score-and-bandwidth")
    yield
    shared = ctx.shared._arrays[0]

    best = np.float32(np.inf)
    best_value = np.float32(0.0)
    j = t
    while j < k:
        s = np.float32(scores[j])
        if np.isfinite(s) and s < best:
            best = s
            best_value = np.float32(values[j])
        j += T
        ctx.tally(ops=1, bytes_read=8)
    shared[t] = best
    shared[t + T] = best_value
    yield

    stride = T // 2
    while stride >= 1:
        if t < stride and shared[t + stride] < shared[t]:
            shared[t] = shared[t + stride]
            shared[t + T] = shared[t + stride + T]
            ctx.tally(ops=1)
        stride //= 2
        yield

    if t == 0:
        out[0] = shared[0]
        out[1] = shared[T]
        ctx.tally(bytes_written=8)


def device_sum(
    data: np.ndarray,
    *,
    n: int | None = None,
    device: str | DeviceSpec | None = None,
    block_dim: int | None = None,
) -> tuple[float, LaunchStats]:
    """Launch the sum reduction; returns ``(sum, launch stats)``."""
    spec = get_device(device)
    T = block_dim or spec.max_threads_per_block
    _check_power_of_two(T)
    count = data.shape[0] if n is None else int(n)
    out = np.zeros(1, dtype=np.float32)
    stats = launch_kernel(
        sum_reduction_kernel,
        grid_dim=1,
        block_dim=T,
        args=(data, count, out, 0),
        device=spec,
        shared_factory=lambda: SharedMemory(spec),
    )
    return float(out[0]), stats


def device_argmin(
    scores: np.ndarray,
    values: np.ndarray,
    *,
    device: str | DeviceSpec | None = None,
    block_dim: int | None = None,
) -> tuple[float, float, LaunchStats]:
    """Launch the argmin reduction; returns ``(min score, value, stats)``."""
    spec = get_device(device)
    T = block_dim or spec.max_threads_per_block
    _check_power_of_two(T)
    if scores.shape != values.shape:
        raise LaunchConfigurationError(
            f"scores shape {scores.shape} != values shape {values.shape}"
        )
    out = np.zeros(2, dtype=np.float32)
    stats = launch_kernel(
        argmin_reduction_kernel,
        grid_dim=1,
        block_dim=T,
        args=(scores, values, scores.shape[0], out),
        device=spec,
        shared_factory=lambda: SharedMemory(spec),
    )
    return float(out[0]), float(out[1]), stats
