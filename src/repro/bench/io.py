"""Persistence for bench results: CSV and JSON writers.

The paper reports its sweeps as static tables; downstream users want the
raw rows.  These writers serialise the Table I / Table II structures and
the shape report so a bench run leaves machine-readable artifacts next
to the printed output (``python -m repro table1 --output results/``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.bench.tables import Table1Result, Table2Result

__all__ = [
    "table1_rows",
    "table2_rows",
    "write_table1_csv",
    "write_table2_csv",
    "write_results_json",
]


def table1_rows(table: Table1Result) -> list[dict[str, Any]]:
    """Flatten a Table I result to one row per (n, program)."""
    rows = []
    for n in table.sizes:
        for prog in table.programs:
            row: dict[str, Any] = {
                "n": n,
                "program": prog,
                "k": table.k,
                "measured_seconds": table.measured.get(n, {}).get(prog),
                "modeled_paper_machine_seconds": table.modeled.get(n, {}).get(prog),
            }
            run = table.runs.get((n, prog))
            if run is not None:
                row["selected_bandwidth"] = run.result.bandwidth
                row["cv_score"] = run.result.score
            rows.append(row)
    return rows


def table2_rows(table: Table2Result) -> list[dict[str, Any]]:
    """Flatten a Table II result to one row per (k, n) with both panels."""
    rows = []
    for kk in table.bandwidth_counts:
        for n in table.sizes:
            rows.append(
                {
                    "bandwidths": kk,
                    "n": n,
                    "sequential_seconds": table.sequential.get(kk, {}).get(n),
                    "cuda_simulated_seconds": table.cuda.get(kk, {}).get(n),
                }
            )
    return rows


def _write_csv(path: Path, rows: list[dict[str, Any]]) -> Path:
    if not rows:
        raise ValueError("no rows to write")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_table1_csv(table: Table1Result, path: str | Path) -> Path:
    """Write the Table I sweep as CSV; returns the path written."""
    return _write_csv(Path(path), table1_rows(table))


def write_table2_csv(table: Table2Result, path: str | Path) -> Path:
    """Write the Table II sweep as CSV; returns the path written."""
    return _write_csv(Path(path), table2_rows(table))


def write_results_json(
    path: str | Path,
    *,
    table1: Table1Result | None = None,
    table2: Table2Result | None = None,
    shape_report: str | None = None,
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Bundle any combination of bench artifacts into one JSON file.

    Machine metadata (:func:`repro.bench.sysinfo.machine_info`) is
    embedded automatically so every results file states where its
    measured numbers came from.
    """
    from repro.bench.sysinfo import machine_info

    payload: dict[str, Any] = {
        "metadata": {**machine_info(), **(metadata or {})}
    }
    if table1 is not None:
        payload["table1"] = table1_rows(table1)
    if table2 is not None:
        payload["table2"] = table2_rows(table2)
    if shape_report is not None:
        payload["shape_report"] = shape_report
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, default=float))
    return out
