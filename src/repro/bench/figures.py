"""Regeneration of the paper's Figure 1 (run times by program and n).

Figure 1 plots the four programs' run times against the sample size on a
log-scale horizontal axis.  The harness reuses the Table I sweep and
renders the same series as (a) machine-readable rows and (b) an ASCII
log–log chart, so the figure can be regenerated and eyeballed without a
plotting stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bench.paper_data import PAPER_PROGRAMS
from repro.bench.tables import Table1Result, run_table1

__all__ = ["Figure1Result", "run_figure1", "ascii_chart"]

_MARKERS = {"racine-hayfield": "R", "multicore-r": "M", "sequential-c": "C", "cuda-gpu": "G",
            "rule-of-thumb": "T"}


@dataclass
class Figure1Result:
    """Figure 1 series: per-program run-time curves over n."""

    table: Table1Result

    def _series_from(
        self, rows: dict[int, dict[str, float]]
    ) -> dict[str, list[tuple[int, float]]]:
        out: dict[str, list[tuple[int, float]]] = {}
        for prog in self.table.programs:
            pts = [
                (n, rows[n][prog])
                for n in self.table.sizes
                if prog in rows.get(n, {})
            ]
            if pts:
                out[prog] = pts
        return out

    @property
    def series(self) -> dict[str, list[tuple[int, float]]]:
        """Paper-machine (modeled) curves — the Figure 1 comparable."""
        return self._series_from(self.table.modeled or self.table.measured)

    @property
    def measured_series(self) -> dict[str, list[tuple[int, float]]]:
        """Wall-clock curves measured on this machine."""
        return self._series_from(self.table.measured)

    def to_text(self, *, width: int = 72, height: int = 20) -> str:
        """Series listing plus ASCII log–log renderings of both sweeps."""
        lines = ["FIG. 1.  RUN TIMES BY PROGRAM AND SAMPLE SIZE", ""]
        lines.append("(a) modeled on the paper's machine:")
        for prog, pts in self.series.items():
            marker = _MARKERS.get(prog, "?")
            listing = ", ".join(f"({n}, {t:.3f}s)" for n, t in pts)
            lines.append(f"  [{marker}] {prog}: {listing}")
        lines.append("")
        lines.append(ascii_chart(self.series, width=width, height=height))
        lines.append("")
        lines.append("(b) measured on this machine:")
        for prog, pts in self.measured_series.items():
            marker = _MARKERS.get(prog, "?")
            listing = ", ".join(f"({n}, {t:.3f}s)" for n, t in pts)
            lines.append(f"  [{marker}] {prog}: {listing}")
        lines.append("")
        lines.append(ascii_chart(self.measured_series, width=width, height=height))
        return "\n".join(lines)


def run_figure1(
    *,
    sizes: Sequence[int] | None = None,
    programs: Sequence[str] = PAPER_PROGRAMS,
    k: int = 50,
    repetitions: int = 1,
    seed: int = 0,
) -> Figure1Result:
    """Run the Figure 1 sweep (same data as Table I)."""
    return Figure1Result(
        table=run_table1(
            sizes=sizes, programs=programs, k=k, repetitions=repetitions, seed=seed
        )
    )


def ascii_chart(
    series: dict[str, list[tuple[int, float]]],
    *,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render run-time-vs-n curves on log–log axes in plain text.

    Each program is drawn with its single-letter marker; collisions keep
    the first-drawn marker (draw order = dict order).
    """
    points: list[tuple[float, float, str]] = []
    for prog, pts in series.items():
        marker = _MARKERS.get(prog, "?")
        for n, t in pts:
            if n > 0 and t > 0:
                points.append((math.log10(n), math.log10(t), marker))
    if not points:
        return "(no positive data to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y_hi - y) / y_span * (height - 1)))
        if canvas[row][col] == " ":
            canvas[row][col] = marker

    lines = []
    for i, row in enumerate(canvas):
        y_val = y_hi - i * y_span / (height - 1) if height > 1 else y_hi
        label = f"{10 ** y_val:9.2f}s |" if i % 4 == 0 else f"{'':9} |"
        lines.append(label + "".join(row))
    lines.append(f"{'':9} +" + "-" * width)
    lines.append(
        f"{'':11}n = {10 ** x_lo:,.0f}"
        + " " * max(1, width - 30)
        + f"n = {10 ** x_hi:,.0f}  (log-log)"
    )
    return "\n".join(lines)
