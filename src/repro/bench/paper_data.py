"""The paper's published measurements, transcribed for comparison.

Table I gives run times in seconds by program and sample size (all C
programs at k = 50 bandwidths); Table II gives run times by number of
bandwidths for the sequential C program (panel A) and the CUDA program
(panel B).  The bench harness prints these next to our measurements, and
EXPERIMENTS.md records the shape comparison.

Transcription note: the printed Table I has a row labelled "2,000" whose
values (16.71 / 13.59 / 4.89 / 1.83) are identical to Table II's
n = 5,000 column for the two C programs — and Table I otherwise skips
n = 5,000 even though §IV-C lists it among the tested sizes.  We
therefore record that row under n = 5,000 (a label typo in the paper).
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2_SEQUENTIAL",
    "PAPER_TABLE2_CUDA",
    "PAPER_PROGRAMS",
    "PAPER_HEADLINE_SPEEDUP",
    "paper_speedup",
]

#: Program display order, as in the paper.
PAPER_PROGRAMS: tuple[str, ...] = (
    "racine-hayfield",
    "multicore-r",
    "sequential-c",
    "cuda-gpu",
)

#: Table I — run times (seconds) by program and sample size, k = 50.
PAPER_TABLE1: Mapping[int, Mapping[str, float]] = {
    50: {"racine-hayfield": 0.04, "multicore-r": 1.16, "sequential-c": 0.00, "cuda-gpu": 0.09},
    100: {"racine-hayfield": 0.05, "multicore-r": 1.43, "sequential-c": 0.01, "cuda-gpu": 0.09},
    500: {"racine-hayfield": 0.38, "multicore-r": 1.46, "sequential-c": 0.07, "cuda-gpu": 0.15},
    1000: {"racine-hayfield": 1.12, "multicore-r": 1.49, "sequential-c": 0.27, "cuda-gpu": 0.24},
    # printed as "2,000" in the paper; see transcription note above.
    5000: {"racine-hayfield": 16.71, "multicore-r": 13.59, "sequential-c": 4.89, "cuda-gpu": 1.83},
    10000: {"racine-hayfield": 68.69, "multicore-r": 32.08, "sequential-c": 19.24, "cuda-gpu": 7.10},
    20000: {"racine-hayfield": 232.51, "multicore-r": 124.70, "sequential-c": 80.92, "cuda-gpu": 32.49},
}

#: Table II panel A — sequential C run times (s) by (bandwidth count, n).
#: ``None`` marks the cells the paper leaves blank (k > n).
PAPER_TABLE2_SEQUENTIAL: Mapping[int, Mapping[int, float | None]] = {
    5: {50: 0.00, 100: 0.00, 500: 0.06, 1000: 0.24, 5000: 4.83, 10000: 19.09, 20000: 80.24},
    10: {50: 0.02, 100: 0.01, 500: 0.06, 1000: 0.27, 5000: 4.93, 10000: 19.43, 20000: 80.43},
    50: {50: 0.04, 100: 0.01, 500: 0.07, 1000: 0.27, 5000: 4.89, 10000: 19.24, 20000: 80.92},
    100: {50: None, 100: 0.01, 500: 0.07, 1000: 0.28, 5000: 4.86, 10000: 19.26, 20000: 80.77},
    500: {50: None, 100: None, 500: 0.10, 1000: 0.34, 5000: 5.04, 10000: 19.81, 20000: 81.80},
    1000: {50: None, 100: None, 500: None, 1000: 0.41, 5000: 5.32, 10000: 20.06, 20000: 82.48},
    2000: {50: None, 100: None, 500: None, 1000: None, 5000: 5.66, 10000: 21.05, 20000: 84.11},
}

#: Table II panel B — CUDA run times (s) by (bandwidth count, n).
PAPER_TABLE2_CUDA: Mapping[int, Mapping[int, float | None]] = {
    5: {50: 0.09, 100: 0.09, 500: 0.15, 1000: 0.24, 5000: 1.80, 10000: 6.94, 20000: 31.83},
    10: {50: 0.09, 100: 0.09, 500: 0.15, 1000: 0.24, 5000: 1.82, 10000: 7.00, 20000: 32.08},
    50: {50: 0.09, 100: 0.09, 500: 0.15, 1000: 0.24, 5000: 1.83, 10000: 7.10, 20000: 32.49},
    100: {50: None, 100: 0.09, 500: 0.15, 1000: 0.25, 5000: 1.84, 10000: 7.11, 20000: 32.56},
    500: {50: None, 100: None, 500: 0.16, 1000: 0.26, 5000: 1.86, 10000: 7.13, 20000: 32.55},
    1000: {50: None, 100: None, 500: None, 1000: 0.26, 5000: 1.92, 10000: 7.32, 20000: 33.13},
    2000: {50: None, 100: None, 500: None, 1000: None, 5000: 2.05, 10000: 7.68, 20000: 34.21},
}

#: Headline claim: ~7× over the R np benchmark at n = 20,000.
PAPER_HEADLINE_SPEEDUP: float = 232.51 / 32.49


def paper_speedup(n: int, slow: str = "racine-hayfield", fast: str = "cuda-gpu") -> float:
    """Paper's speedup of ``fast`` over ``slow`` at sample size ``n``."""
    row = PAPER_TABLE1[n]
    return row[slow] / row[fast]
