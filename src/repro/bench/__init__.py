"""Benchmark harness regenerating the paper's tables and figures."""

from repro.bench.figures import Figure1Result, ascii_chart, run_figure1
from repro.bench.paper_data import (
    PAPER_HEADLINE_SPEEDUP,
    PAPER_PROGRAMS,
    PAPER_TABLE1,
    PAPER_TABLE2_CUDA,
    PAPER_TABLE2_SEQUENTIAL,
    paper_speedup,
)
from repro.bench.io import (
    table1_rows,
    table2_rows,
    write_results_json,
    write_table1_csv,
    write_table2_csv,
)
from repro.bench.machine_model import (
    MODELED_PROGRAMS,
    model_cuda_gpu,
    model_multicore_r,
    model_program,
    model_racine_hayfield,
    model_sequential_c,
)
from repro.bench.programs import PROGRAMS, ProgramRun, ProgramSpec, run_program
from repro.bench.sysinfo import machine_info
from repro.bench.report import (
    ShapeCheck,
    check_large_n_ordering,
    find_crossover,
    headline_speedup,
    k_growth_ratio,
    shape_report,
)
from repro.bench.tables import (
    PAPER_BANDWIDTH_COUNTS,
    PAPER_SIZES,
    Table1Result,
    Table2Result,
    default_sizes,
    run_table1,
    run_table2,
)

__all__ = [
    "MODELED_PROGRAMS",
    "model_cuda_gpu",
    "model_multicore_r",
    "model_program",
    "model_racine_hayfield",
    "model_sequential_c",
    "PAPER_BANDWIDTH_COUNTS",
    "PAPER_HEADLINE_SPEEDUP",
    "PAPER_PROGRAMS",
    "PAPER_SIZES",
    "PAPER_TABLE1",
    "PAPER_TABLE2_CUDA",
    "PAPER_TABLE2_SEQUENTIAL",
    "PROGRAMS",
    "Figure1Result",
    "ProgramRun",
    "ProgramSpec",
    "ShapeCheck",
    "Table1Result",
    "Table2Result",
    "ascii_chart",
    "check_large_n_ordering",
    "default_sizes",
    "find_crossover",
    "headline_speedup",
    "k_growth_ratio",
    "machine_info",
    "paper_speedup",
    "run_figure1",
    "run_program",
    "run_table1",
    "run_table2",
    "shape_report",
    "table1_rows",
    "table2_rows",
    "write_results_json",
    "write_table1_csv",
    "write_table2_csv",
]
