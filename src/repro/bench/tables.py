"""Regeneration of the paper's Tables I and II.

Each runner sweeps the paper's (program × n) or (k × n) combinations on
the paper's DGP, returns structured rows, and can render itself in the
paper's layout next to the published numbers.

Sizes default to a laptop-friendly subset; pass the paper's full lists
(or set ``REPRO_BENCH_FULL=1`` through the CLI) to sweep up to
n = 20,000 exactly as printed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.data import paper_dgp
from repro.bench.paper_data import (
    PAPER_PROGRAMS,
    PAPER_TABLE1,
    PAPER_TABLE2_CUDA,
    PAPER_TABLE2_SEQUENTIAL,
)
from repro.bench.programs import ProgramRun, run_program
from repro.utils.timer import time_callable

__all__ = [
    "Table1Result",
    "Table2Result",
    "run_table1",
    "run_table2",
    "default_sizes",
    "PAPER_SIZES",
    "PAPER_BANDWIDTH_COUNTS",
]

#: Sample sizes of Table I / Figure 1 (with the paper's "2,000" row
#: corrected to 5,000 — see repro.bench.paper_data).
PAPER_SIZES: tuple[int, ...] = (50, 100, 500, 1000, 5000, 10000, 20000)

#: Bandwidth-grid sizes of Table II.
PAPER_BANDWIDTH_COUNTS: tuple[int, ...] = (5, 10, 50, 100, 500, 1000, 2000)

#: Default (quick) subset used when no sizes are requested.
QUICK_SIZES: tuple[int, ...] = (50, 100, 500, 1000, 2000)


def default_sizes(full: bool | None = None) -> tuple[int, ...]:
    """Paper sizes when ``full`` (or ``REPRO_BENCH_FULL=1``), else quick."""
    if full is None:
        full = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
    return PAPER_SIZES if full else QUICK_SIZES


@dataclass
class Table1Result:
    """Run times by program and sample size (Table I / Figure 1 data).

    Two row groups, kept deliberately separate (see DESIGN.md §2):

    * :attr:`measured` — wall-clock seconds of our implementations on
      *this* machine (the CUDA program's measured row is the host wall
      time of its fast device-executor run);
    * :attr:`modeled` — seconds on the *paper's* machine from the
      calibrated models of :mod:`repro.bench.machine_model` (the
      Tesla-S1070 timing model for the CUDA program, Xeon/R models for
      the CPU programs).  These are the rows comparable to the published
      Table I.
    """

    sizes: tuple[int, ...]
    programs: tuple[str, ...]
    #: measured[n][program] -> wall seconds on this machine.
    measured: dict[int, dict[str, float]] = field(default_factory=dict)
    #: modeled[n][program] -> modelled paper-machine seconds.
    modeled: dict[int, dict[str, float]] = field(default_factory=dict)
    #: full ProgramRun objects for diagnostics.
    runs: dict[tuple[int, str], ProgramRun] = field(default_factory=dict)
    k: int = 50
    repetitions: int = 1

    def speedup(
        self,
        n: int,
        slow: str = "racine-hayfield",
        fast: str = "cuda-gpu",
        *,
        which: str = "measured",
    ) -> float:
        """Speedup of ``fast`` over ``slow`` at sample size n."""
        rows = self.measured if which == "measured" else self.modeled
        return rows[n][slow] / max(rows[n][fast], 1e-12)

    def _block(
        self,
        title: str,
        rows: Mapping[int, Mapping[str, float]],
        *,
        with_paper: bool,
    ) -> str:
        headers = ["n"] + list(self.programs)
        if with_paper:
            headers += [f"paper:{p}" for p in self.programs if p in PAPER_PROGRAMS]
        lines = [title, "  ".join(f"{h:>18}" for h in headers)]
        for n in self.sizes:
            cells = [f"{n:>18d}"]
            for p in self.programs:
                v = rows.get(n, {}).get(p)
                cells.append(f"{v:>18.3f}" if v is not None else f"{'-':>18}")
            if with_paper:
                for p in self.programs:
                    if p in PAPER_PROGRAMS:
                        ref = PAPER_TABLE1.get(n, {}).get(p)
                        cells.append(
                            f"{ref:>18.2f}" if ref is not None else f"{'-':>18}"
                        )
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def to_text(self, *, with_paper: bool = True) -> str:
        """Render both row groups in the paper's Table I layout."""
        blocks = [
            self._block(
                "TABLE I (a).  MEASURED RUN TIMES ON THIS MACHINE (seconds)",
                self.measured,
                with_paper=False,
            )
        ]
        if self.modeled:
            blocks.append(
                self._block(
                    "TABLE I (b).  MODELED RUN TIMES ON THE PAPER'S MACHINE (seconds)",
                    self.modeled,
                    with_paper=with_paper,
                )
            )
        return "\n\n".join(blocks)


def run_table1(
    *,
    sizes: Sequence[int] | None = None,
    programs: Sequence[str] = PAPER_PROGRAMS,
    k: int = 50,
    repetitions: int = 1,
    seed: int = 0,
    **program_opts: Any,
) -> Table1Result:
    """Sweep (program × n) on the paper DGP; k = 50 grid as in Table I.

    ``repetitions`` follows the paper's protocol of timing each
    combination several times back to back (it reports per-run means).
    """
    from repro.bench.machine_model import MODELED_PROGRAMS, model_program

    sizes = tuple(sizes) if sizes is not None else default_sizes()
    result = Table1Result(
        sizes=sizes, programs=tuple(programs), k=k, repetitions=repetitions
    )
    for n in sizes:
        sample = paper_dgp(n, seed=seed)
        for prog in programs:
            grid_k = min(k, n)  # "never exceeding the number of observations"

            def once() -> ProgramRun:
                return run_program(prog, sample.x, sample.y, k=grid_k, **program_opts)

            run, record = time_callable(once, repetitions=repetitions)
            result.measured.setdefault(n, {})[prog] = record.per_call
            if prog in MODELED_PROGRAMS:
                result.modeled.setdefault(n, {})[prog] = model_program(
                    prog, n, grid_k
                )
            result.runs[(n, prog)] = run
    return result


@dataclass
class Table2Result:
    """Run times by bandwidth count and sample size (Table II)."""

    bandwidth_counts: tuple[int, ...]
    sizes: tuple[int, ...]
    #: rows[k][n] -> seconds; None where k > n (left blank in the paper).
    sequential: dict[int, dict[int, float | None]] = field(default_factory=dict)
    cuda: dict[int, dict[int, float | None]] = field(default_factory=dict)

    def _panel_text(
        self,
        title: str,
        rows: Mapping[int, Mapping[int, float | None]],
        paper: Mapping[int, Mapping[int, float | None]],
        *,
        with_paper: bool,
    ) -> str:
        lines = [title]
        header = ["bandwidths"] + [f"n={n}" for n in self.sizes]
        lines.append("  ".join(f"{h:>12}" for h in header))
        for kk in self.bandwidth_counts:
            cells = [f"{kk:>12d}"]
            for n in self.sizes:
                v = rows.get(kk, {}).get(n)
                cells.append(f"{v:>12.3f}" if v is not None else f"{'':>12}")
            lines.append("  ".join(cells))
            if with_paper and kk in paper:
                ref_cells = [f"{'(paper)':>12}"]
                for n in self.sizes:
                    ref = paper[kk].get(n)
                    ref_cells.append(
                        f"{ref:>12.2f}" if ref is not None else f"{'':>12}"
                    )
                lines.append("  ".join(ref_cells))
        return "\n".join(lines)

    def to_text(self, *, with_paper: bool = True) -> str:
        """Render both panels in the paper's Table II layout."""
        a = self._panel_text(
            "TABLE II, PANEL A: SEQUENTIAL FAST-GRID PROGRAM (seconds)",
            self.sequential,
            PAPER_TABLE2_SEQUENTIAL,
            with_paper=with_paper,
        )
        b = self._panel_text(
            "TABLE II, PANEL B: CUDA PROGRAM ON (SIMULATED) GPU (seconds)",
            self.cuda,
            PAPER_TABLE2_CUDA,
            with_paper=with_paper,
        )
        return a + "\n\n" + b


def run_table2(
    *,
    bandwidth_counts: Sequence[int] = PAPER_BANDWIDTH_COUNTS,
    sizes: Sequence[int] | None = None,
    repetitions: int = 1,
    seed: int = 0,
) -> Table2Result:
    """Sweep (k × n) for the sequential and CUDA programs (Table II).

    Cells with k > n are skipped, as in the paper ("the number of
    bandwidths never exceeding the number of observations").  Panel B
    reports the modelled GPU time; panel A reports measured wall time of
    the sequential fast-grid program.
    """
    from repro.cuda_port import estimate_program_runtime

    sizes = tuple(sizes) if sizes is not None else default_sizes()
    result = Table2Result(bandwidth_counts=tuple(bandwidth_counts), sizes=sizes)
    for n in sizes:
        sample = paper_dgp(n, seed=seed)
        for kk in bandwidth_counts:
            if kk > n:
                result.sequential.setdefault(kk, {})[n] = None
                result.cuda.setdefault(kk, {})[n] = None
                continue
            _, rec = time_callable(
                lambda: run_program("sequential-c", sample.x, sample.y, k=kk),
                repetitions=repetitions,
            )
            result.sequential.setdefault(kk, {})[n] = rec.per_call
            # Panel B reports the modelled Tesla time, which is a
            # deterministic function of (n, k) — no need to re-execute
            # the device program per cell (its numerical agreement with
            # the sequential program is covered by tests/cuda_port).
            result.cuda.setdefault(kk, {})[n] = estimate_program_runtime(
                n, kk
            ).total_seconds
    return result
