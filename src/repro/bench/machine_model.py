"""Calibrated run-time models of the paper's four programs on the
paper's machine (16× 2.53 GHz Xeon + Tesla S1070).

Our wall-clock numbers are measured on *this* machine (numpy standing in
for compiled C, scipy for R's optimiser), so they cannot land on the
paper's absolute seconds.  To compare all four programs on equal footing
at paper scale, this module models each program on the paper's hardware,
the same way :mod:`repro.cuda_port.timing_model` models the CUDA program
on the Tesla:

* **sequential-c** — operation count of the sorted fast-grid algorithm
  (per-observation quicksort + sweep) at a calibrated per-op cost of a
  single 2.53 GHz Xeon core (~23 cycles/op: cache-unfriendly pointer
  chasing over an n-element row per observation).  Calibrated to Table II
  panel A.
* **racine-hayfield** — E ≈ 40 objective evaluations (multi-started
  simplex) × an O(n²) dense CV evaluation at an R-interpreter per-pair
  cost, plus R session overhead.  Calibrated to Table I.
* **multicore-r** — the same evaluations fanned over 16 cores with the
  paper's observed parallel efficiency (the program "appears to be less
  efficient in its computations but makes up for that inefficiency with
  its use of 16 cores": measured ratio 0.53 of the np time, not 1/16),
  plus the ~1.4 s pool/session floor visible at small n in Table I.
* **cuda-gpu** — delegates to
  :func:`repro.cuda_port.timing_model.estimate_program_runtime`.

These are *models of published numbers*, used (a) to regenerate
Figure 1 / Table I at paper scale without the paper's hardware and
(b) to sanity-check that our complexity accounting explains the paper's
measurements.  The measured-on-this-machine sweep is always reported
alongside; EXPERIMENTS.md keeps the two clearly separated.
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError

__all__ = [
    "model_sequential_c",
    "model_racine_hayfield",
    "model_multicore_r",
    "model_cuda_gpu",
    "model_program",
    "MODELED_PROGRAMS",
]

#: Seconds per scalar op for the sequential C fast-grid program
#: (≈ 23 cycles at 2.53 GHz), calibrated to Table II panel A.
_SEQ_C_SECONDS_PER_OP = 9.25e-9

#: Fixed process cost of the C programs (binary start, data generation —
#: included in the paper's `time`-based measurements).
_SEQ_C_OVERHEAD = 0.05

#: Objective evaluations used by the np-style optimiser (multi-started
#: Nelder–Mead; npregbw's default regime).
_NP_EVALUATIONS = 40.0

#: Seconds per (pair, evaluation) for the R np objective, calibrated to
#: Table I at n = 20,000.
_R_SECONDS_PER_PAIR = 1.45e-8

#: R session / interpreter startup floor.
_R_OVERHEAD = 0.4

#: Multicore-R: measured ratio to the np program at large n (Table I:
#: 124.7 / 232.5) — 16 cores at ~12 % parallel efficiency.
_MULTICORE_RATIO = 0.53

#: Pool start-up floor (Table I: ~1.4 s at n <= 1,000).
_MULTICORE_OVERHEAD = 1.4


def _check(n: int, k: int) -> None:
    if n < 2 or k < 1:
        raise ValidationError(f"need n >= 2, k >= 1; got n={n}, k={k}")


def model_sequential_c(n: int, k: int = 50) -> float:
    """Modelled paper-machine time of program 3 (sequential fast grid)."""
    _check(n, k)
    log_n = math.log2(max(n, 2))
    ops = n * (1.39 * n * log_n + 2.0 * n) + 10.0 * n * k
    return _SEQ_C_OVERHEAD + _SEQ_C_SECONDS_PER_OP * ops


def model_racine_hayfield(n: int, k: int = 50) -> float:
    """Modelled paper-machine time of program 1 (R np optimiser).

    k does not enter: the numerical optimiser evaluates single
    bandwidths, not grids.
    """
    _check(n, k)
    return _R_OVERHEAD + _NP_EVALUATIONS * _R_SECONDS_PER_PAIR * float(n) * float(n)


def model_multicore_r(n: int, k: int = 50) -> float:
    """Modelled paper-machine time of program 2 (multicore R)."""
    _check(n, k)
    return _MULTICORE_OVERHEAD + _MULTICORE_RATIO * (
        model_racine_hayfield(n, k) - _R_OVERHEAD
    )


def model_cuda_gpu(n: int, k: int = 50) -> float:
    """Modelled Tesla-S1070 time of program 4 (the CUDA program)."""
    _check(n, k)
    from repro.cuda_port import estimate_program_runtime

    return estimate_program_runtime(n, k).total_seconds


MODELED_PROGRAMS = {
    "racine-hayfield": model_racine_hayfield,
    "multicore-r": model_multicore_r,
    "sequential-c": model_sequential_c,
    "cuda-gpu": model_cuda_gpu,
}


def model_program(name: str, n: int, k: int = 50) -> float:
    """Modelled paper-machine run time for any of the four programs."""
    try:
        fn = MODELED_PROGRAMS[name]
    except KeyError:
        known = ", ".join(sorted(MODELED_PROGRAMS))
        raise ValidationError(f"no machine model for {name!r}; known: {known}") from None
    return fn(n, k)
