"""Machine metadata capture for bench artifacts.

The paper pins its numbers to named hardware ("16 2.53 GHz Intel Xeon
CPU cores, 16 GB of main memory, and two Tesla S10 GPUs"); reproduction
artifacts should carry the same context.  :func:`machine_info` collects
what the standard library and numpy expose, and the JSON writer embeds
it so every results file is self-describing.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any

import numpy as np
import scipy

__all__ = ["machine_info"]


def machine_info() -> dict[str, Any]:
    """Snapshot of the executing machine and software stack."""
    info: dict[str, Any] = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or "unknown",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemTotal"):
                    info["mem_total_kb"] = int(line.split()[1])
                    break
    except OSError:
        pass
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    info["cpu_model"] = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return info
