"""The paper's four evaluation programs as uniform runnable units.

Each :class:`ProgramSpec` builds a selector configured the way §IV-C
describes the corresponding program, so the tables/figures harness can
treat them interchangeably.  The mapping (see DESIGN.md §2 for why each
substitution preserves the measured behaviour):

1. **racine-hayfield** — R ``np``'s ``npregbw``: derivative-free numerical
   minimisation of the same CV objective, multi-started because the
   objective is not concave.
2. **multicore-r** — the author's parallel R program: the same numerical
   optimisation with the O(n²) objective split across worker processes.
3. **sequential-c** — the sorted fast-grid search, single core (numpy
   standing in for compiled C).
4. **cuda-gpu** — the CUDA program on the GPU simulator; wall time is the
   host's, and the result also carries the modelled Tesla-S1070 time.

``rule-of-thumb`` is included as the zero-cost baseline the paper's
introduction says practitioners actually use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.core.result import SelectionResult
from repro.core.selectors import (
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
)
from repro.parallel import available_workers

__all__ = ["ProgramSpec", "PROGRAMS", "run_program", "ProgramRun"]


@dataclass(frozen=True)
class ProgramRun:
    """One timed program execution."""

    program: str
    n: int
    k: int
    seconds: float
    result: SelectionResult
    simulated_seconds: float | None = None

    @property
    def reported_seconds(self) -> float:
        """The Table-I-style number: modelled GPU time when available
        (program 4's run time was measured on the Tesla, which the
        simulator models), wall time otherwise."""
        return self.simulated_seconds if self.simulated_seconds is not None else self.seconds


@dataclass(frozen=True)
class ProgramSpec:
    """A named, parameterised bandwidth-selection program."""

    name: str
    description: str
    build: Callable[[int, dict[str, Any]], Any]
    uses_grid: bool = True


def _build_racine_hayfield(k: int, opts: dict[str, Any]):
    return NumericalOptimizationSelector(
        opts.get("kernel", "epanechnikov"),
        method=opts.get("opt_method", "nelder-mead"),
        n_restarts=opts.get("n_restarts", 3),
        seed=opts.get("seed", 0),
        maxiter=opts.get("maxiter", 100),
    )


def _build_multicore_r(k: int, opts: dict[str, Any]):
    return NumericalOptimizationSelector(
        opts.get("kernel", "epanechnikov"),
        method=opts.get("opt_method", "nelder-mead"),
        n_restarts=opts.get("n_restarts", 3),
        seed=opts.get("seed", 0),
        maxiter=opts.get("maxiter", 100),
        workers=opts.get("workers") or available_workers(),
    )


def _build_sequential_c(k: int, opts: dict[str, Any]):
    return GridSearchSelector(
        opts.get("kernel", "epanechnikov"),
        n_bandwidths=k,
        backend="numpy",
    )


def _build_cuda_gpu(k: int, opts: dict[str, Any]):
    return GridSearchSelector(
        opts.get("kernel", "epanechnikov"),
        n_bandwidths=k,
        backend="gpusim",
        mode=opts.get("mode", "fast"),
        device=opts.get("device"),
    )


def _build_rule_of_thumb(k: int, opts: dict[str, Any]):
    return RuleOfThumbSelector(opts.get("kernel", "epanechnikov"))


PROGRAMS: dict[str, ProgramSpec] = {
    "racine-hayfield": ProgramSpec(
        name="racine-hayfield",
        description="R np-style numerical optimisation of CV_lc (program 1)",
        build=_build_racine_hayfield,
        uses_grid=False,
    ),
    "multicore-r": ProgramSpec(
        name="multicore-r",
        description="multicore numerical optimisation (program 2)",
        build=_build_multicore_r,
        uses_grid=False,
    ),
    "sequential-c": ProgramSpec(
        name="sequential-c",
        description="sequential sorted fast-grid search (program 3)",
        build=_build_sequential_c,
    ),
    "cuda-gpu": ProgramSpec(
        name="cuda-gpu",
        description="CUDA program on the GPU simulator (program 4)",
        build=_build_cuda_gpu,
    ),
    "rule-of-thumb": ProgramSpec(
        name="rule-of-thumb",
        description="normal-reference rule of thumb (intro baseline)",
        build=_build_rule_of_thumb,
        uses_grid=False,
    ),
}


def run_program(
    name: str,
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 50,
    **opts: Any,
) -> ProgramRun:
    """Run one program on (x, y) with a k-point grid; wall-clock timed.

    Follows the paper's measurement conventions: data generation is *not*
    part of the timed region for any program (§IV-C notes the O(n) data
    generation inside the C timings "should have relatively little effect
    on the results"; excluding it everywhere keeps the comparison clean).
    """
    try:
        spec = PROGRAMS[name]
    except KeyError:
        known = ", ".join(sorted(PROGRAMS))
        raise ValidationError(f"unknown program {name!r}; known: {known}") from None
    selector = spec.build(k, opts)
    start = time.perf_counter()
    result = selector.select(x, y)
    seconds = time.perf_counter() - start

    simulated = None
    if name == "cuda-gpu":
        from repro.cuda_port import estimate_program_runtime

        simulated = estimate_program_runtime(
            int(x.shape[0]), k, device=opts.get("device")
        ).total_seconds
    return ProgramRun(
        program=name,
        n=int(np.asarray(x).shape[0]),
        k=k,
        seconds=seconds,
        result=result,
        simulated_seconds=simulated,
    )
