"""Shape analysis of bench results against the paper's claims.

The reproduction standard is *shape*, not absolute seconds (§IV's Tesla
and 16-core Xeon are not this machine): who wins, by roughly what factor,
and where crossovers fall.  Claims are verified against the row group
they belong to:

* **measured** (this machine) — algorithm-level claims that do not
  depend on 2008 hardware: the fast grid search beats numerical
  optimisation and naive grids; the multicore objective overtakes the
  serial one at large n; run time is near-flat in k.
* **modeled** (paper machine) — hardware-relative claims: the full
  Table I ordering including the GPU, the ~7× headline speedup, the
  sequential/CUDA crossover near n ≈ 1,000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bench.paper_data import PAPER_HEADLINE_SPEEDUP
from repro.bench.tables import Table1Result, Table2Result

__all__ = [
    "ShapeCheck",
    "check_large_n_ordering",
    "find_crossover",
    "headline_speedup",
    "k_growth_ratio",
    "shape_report",
]


@dataclass(frozen=True)
class ShapeCheck:
    """One verified (or failed) shape claim."""

    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim}: {self.detail}"


def _rows(table: Table1Result, which: str) -> Mapping[int, Mapping[str, float]]:
    return table.measured if which == "measured" else table.modeled


def check_large_n_ordering(
    table: Table1Result,
    *,
    order: Sequence[str] = (
        "racine-hayfield",
        "multicore-r",
        "sequential-c",
        "cuda-gpu",
    ),
    which: str = "modeled",
) -> ShapeCheck:
    """At the largest measured n, programs must rank slowest → fastest."""
    rows = _rows(table, which)
    n = max(table.sizes)
    avail = [p for p in order if p in rows.get(n, {})]
    times = [rows[n][p] for p in avail]
    passed = len(avail) >= 2 and all(a >= b for a, b in zip(times, times[1:]))
    detail = ", ".join(f"{p}={t:.3f}s" for p, t in zip(avail, times)) + f" at n={n}"
    return ShapeCheck(
        claim=f"large-n ordering [{which}]: " + " > ".join(avail),
        passed=passed,
        detail=detail,
    )


def find_crossover(
    table: Table1Result,
    slow_small: str,
    fast_large: str,
    *,
    which: str = "modeled",
) -> tuple[int | None, ShapeCheck]:
    """Smallest n where ``fast_large`` beats ``slow_small``.

    The paper: "the run times for the sequential and parallelized
    programs are roughly equal around n = 1,000, and for n values greater
    than 1,000, the parallelized code is considerably faster."
    """
    rows = _rows(table, which)
    crossover = None
    for n in sorted(table.sizes):
        row = rows.get(n, {})
        if fast_large in row and slow_small in row and row[fast_large] < row[slow_small]:
            crossover = n
            break
    passed = crossover is not None and crossover <= 10_000
    detail = (
        f"{fast_large} first beats {slow_small} at n={crossover}"
        if crossover is not None
        else f"{fast_large} never beats {slow_small} in this sweep"
    )
    return crossover, ShapeCheck(
        claim=f"crossover [{which}]: {fast_large} overtakes {slow_small}",
        passed=passed,
        detail=detail,
    )


def headline_speedup(
    table: Table1Result,
    *,
    slow: str = "racine-hayfield",
    fast: str = "cuda-gpu",
    which: str = "modeled",
) -> tuple[float, ShapeCheck]:
    """Speedup of the GPU program over the np analogue at the largest n.

    Pass criterion: same direction and at least 2× — the paper's factor
    (7.2× at n = 20,000) grows with n, and quick sweeps stop earlier.
    """
    rows = _rows(table, which)
    n = max(table.sizes)
    row = rows.get(n, {})
    if slow not in row or fast not in row:
        return float("nan"), ShapeCheck(
            claim=f"headline speedup [{which}]",
            passed=False,
            detail=f"{slow} or {fast} missing from the sweep",
        )
    factor = row[slow] / max(row[fast], 1e-12)
    passed = factor >= 2.0
    return factor, ShapeCheck(
        claim=(
            f"headline speedup [{which}] at n={n} "
            f"(paper: {PAPER_HEADLINE_SPEEDUP:.1f}x at 20,000)"
        ),
        passed=passed,
        detail=f"{slow}/{fast} = {factor:.1f}x",
    )


def k_growth_ratio(
    table2: Table2Result, *, panel: str = "sequential"
) -> tuple[float, ShapeCheck]:
    """Run-time growth from the smallest to the largest k at the largest n.

    Paper: < 5 % growth from k=5 to k=2,000 at n = 20,000 for the
    sequential program; "no appreciable slowdowns" for the CUDA program.
    Pass criterion: < 2× growth (a naive grid would grow ~400× over that
    k range).
    """
    rows = table2.sequential if panel == "sequential" else table2.cuda
    n = max(table2.sizes)
    ks = [kk for kk in table2.bandwidth_counts if rows.get(kk, {}).get(n) is not None]
    if len(ks) < 2:
        return float("nan"), ShapeCheck(
            claim=f"{panel} near-flat in k", passed=False, detail="not enough cells"
        )
    lo, hi = rows[min(ks)][n], rows[max(ks)][n]
    ratio = hi / max(lo, 1e-12)
    passed = ratio < 2.0
    return ratio, ShapeCheck(
        claim=f"{panel} program near-flat in k (Table II)",
        passed=passed,
        detail=f"t(k={max(ks)}) / t(k={min(ks)}) = {ratio:.2f} at n={n}",
    )


def shape_report(table1: Table1Result, table2: Table2Result | None = None) -> str:
    """Run every shape check applicable to the programs actually swept."""
    checks: list[ShapeCheck] = []
    present = set(table1.programs)

    # Measured, hardware-independent claims.
    if {"racine-hayfield", "sequential-c"} <= present:
        checks.append(
            check_large_n_ordering(
                table1,
                order=("racine-hayfield", "sequential-c"),
                which="measured",
            )
        )
    if {"racine-hayfield", "multicore-r"} <= present:
        _, c = find_crossover(
            table1, "racine-hayfield", "multicore-r", which="measured"
        )
        checks.append(c)

    # Modeled, paper-machine claims.
    if table1.modeled:
        checks.append(check_large_n_ordering(table1, which="modeled"))
        if {"sequential-c", "cuda-gpu"} <= present:
            _, c = find_crossover(table1, "sequential-c", "cuda-gpu", which="modeled")
            checks.append(c)
        if {"racine-hayfield", "cuda-gpu"} <= present:
            _, c = headline_speedup(table1, which="modeled")
            checks.append(c)

    if table2 is not None:
        for panel in ("sequential", "cuda"):
            _, c = k_growth_ratio(table2, panel=panel)
            checks.append(c)

    passed = sum(c.passed for c in checks)
    lines = [f"SHAPE REPORT ({passed}/{len(checks)} claims reproduced)"]
    lines += [f"  {c}" for c in checks]
    return "\n".join(lines)
