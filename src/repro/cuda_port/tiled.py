"""Tiled variant of the CUDA program — the paper's stated future work.

§IV-A / §V: "Future work will address this issue by eliminating the
reliance on storing n-by-n matrices in the GPU's device memory" and
"swapping matrices out to the host memory or to disk as necessary".

This module implements that: instead of two n×n matrices, the device
holds two *t×n* tile buffers (``t = tile_rows``) and the host loops over
⌈n/t⌉ tiles, launching the main kernel once per tile.  Each launch
processes observations ``[tile_start, tile_start + t)`` — their fill,
sort, sweep and recombination are unchanged — and accumulates the
per-bandwidth squared-residual sums.  The n×k window-sum matrices also
shrink to t×k, so device memory becomes O(t·n) and the OOM wall moves
from n ≈ 20,000 out to wherever ``2·t·n`` floats stop fitting — far
beyond any practical sample on the same 4 GB Tesla.

The cost: ⌈n/t⌉ kernel launches and re-reading ``x``/``y`` per tile —
asymptotically nothing (the per-thread sort already dominates), which is
why the paper expected this fix to be cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel
from repro.core.fastgrid import fastgrid_block_sums, require_fast_grid_kernel
from repro.cuda_port.host import CudaProgramResult
from repro.obs.tracer import current_tracer
from repro.cuda_port.timing_model import estimate_program_runtime
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.kernel import LaunchStats
from repro.gpusim.memory import ConstantMemory, GlobalMemory
from repro.gpusim.reduction import device_argmin
from repro.gpusim.timing import SimulatedRuntime, TimingModel
from repro.utils.validation import check_paired_samples, ensure_bandwidths

__all__ = ["TiledCudaBandwidthProgram", "estimate_tiled_runtime", "default_tile_rows"]


def default_tile_rows(n: int, device: str | DeviceSpec | None = None) -> int:
    """Largest tile that keeps the §IV-A buffers within half the device.

    Half, not all: leaves headroom for x, y, the t×k sums, the k×n...
    — all the small allocations — plus the paper's own observation that
    fragmentation bites well before the nominal capacity.

    Sized by the same :func:`~repro.utils.membudget.rows_for_budget`
    arithmetic as the host-side blockwise planner, so device tiles and
    host blocks answer "how many rows fit this budget?" identically.
    """
    from repro.utils.membudget import rows_for_budget

    spec = get_device(device)
    budget = spec.global_memory_bytes // 2
    per_row = 2 * n * 4  # the two float32 tile buffers
    return rows_for_budget(budget, per_row, minimum=1, maximum=n)


def estimate_tiled_runtime(
    n: int,
    k: int,
    *,
    tile_rows: int | None = None,
    device: str | DeviceSpec | None = None,
    poly_power_count: int = 2,
    threads_per_block: int = 512,
) -> SimulatedRuntime:
    """Modelled run time of the tiled program.

    Identical work terms to the monolithic model — the tiling changes
    *where* intermediate rows live, not how many operations touch them —
    plus one launch overhead per tile and the repeated x/y streaming.
    """
    spec = get_device(device)
    t = tile_rows or default_tile_rows(n, spec)
    base = estimate_program_runtime(
        n,
        k,
        device=spec,
        poly_power_count=poly_power_count,
        threads_per_block=threads_per_block,
    )
    tiles = -(-n // t)
    tm = TimingModel(spec)
    extra_overhead = tm.launch_overhead(tiles) + tm.memory_seconds_coalesced(
        tiles * 2 * n * 4  # x and y re-read per tile
    )
    return SimulatedRuntime(
        phases=base.phases,
        overhead_seconds=base.overhead_seconds + extra_overhead,
    )


@dataclass(frozen=True)
class TileReport:
    """Per-tile execution record."""

    tile_index: int
    start: int
    stop: int
    peak_gb: float


class TiledCudaBandwidthProgram:
    """The out-of-core (tiled) bandwidth program.

    Same inputs and outputs as
    :class:`repro.cuda_port.host.CudaBandwidthProgram`, without the n×n
    allocations — and therefore without the n = 20,000 ceiling.  Runs in
    the fast device-executor mode (the functional thread-by-thread mode
    exists on the monolithic program; the tiled variant targets exactly
    the sizes where functional execution is off the table).
    """

    def __init__(
        self,
        *,
        device: str | DeviceSpec | None = None,
        kernel: str | Kernel = "epanechnikov",
        threads_per_block: int | None = None,
        tile_rows: int | None = None,
    ):
        self.device = get_device(device)
        self.kernel = require_fast_grid_kernel(kernel)
        self.threads_per_block = threads_per_block or self.device.max_threads_per_block
        if tile_rows is not None and tile_rows <= 0:
            raise ValidationError(f"tile_rows must be positive, got {tile_rows}")
        self.tile_rows = tile_rows

    def run(
        self, x: np.ndarray, y: np.ndarray, bandwidths: np.ndarray
    ) -> CudaProgramResult:
        """Execute the tiled program; returns the standard program result."""
        x64, y64 = check_paired_samples(x, y)
        grid = ensure_bandwidths(bandwidths)
        n = x64.shape[0]
        k = grid.shape[0]
        t = self.tile_rows or default_tile_rows(n, self.device)
        x32 = x64.astype(np.float32)
        y32 = y64.astype(np.float32)
        P = len(self.kernel.poly_terms)

        tracer = current_tracer()
        start = time.perf_counter()  # repro-lint: disable=GPU001 - host wall clock
        with tracer.span(
            "cuda-program-tiled", device=self.device.name, n=n, k=k, tile_rows=t
        ):
            constant = ConstantMemory(self.device)
            constant.store(grid.astype(np.float32))

            gmem = GlobalMemory(self.device)
            stats: list[LaunchStats] = []
            try:
                with tracer.span("upload", n=n, k=k):
                    d_x = gmem.malloc(n, np.float32, label="x")
                    d_y = gmem.malloc(n, np.float32, label="y")
                    d_scores = gmem.malloc(k, np.float32, label="cv-scores")
                    d_x.copy_from_host(x32)
                    d_y.copy_from_host(y32)

                    # Persistent tile buffers — THE difference from §IV-A:
                    # t×n instead of n×n (account-only; executor streams).
                    gmem.reserve((t, n), np.float32, label="absdiff-tile")
                    gmem.reserve((t, n), np.float32, label="y-tile")
                    for p in range(P):
                        gmem.reserve((t, k), np.float32, label=f"sum-d^p[{p}]")
                        gmem.reserve(
                            (t, k), np.float32, label=f"sum-yd^p[{p}]"
                        )
                    gmem.reserve((k, t), np.float32, label="sq-residuals-tile")

                grid64 = constant.read().astype(np.float64)
                x_as64 = x32.astype(np.float64)
                y_as64 = y32.astype(np.float64)
                sums = np.zeros(k, dtype=np.float64)
                tile_index = 0
                with tracer.span("main-kernel", tiles=-(-n // t)):
                    for lo in range(0, n, t):
                        hi = min(lo + t, n)
                        sums += fastgrid_block_sums(
                            x_as64, y_as64, grid64, self.kernel.name, lo, hi,
                            "float32",
                        )
                        tile_index += 1
                d_scores.copy_from_host(sums.astype(np.float32))

                scores32 = d_scores.copy_to_host()
                with tracer.span("device-argmin", k=k):
                    _, _, argmin_stats = device_argmin(
                        scores32,
                        constant.read(),
                        device=self.device,
                        block_dim=self.threads_per_block,
                    )
                stats.append(argmin_stats)
                memory_report = gmem.report()
                memory_report["tiles"] = tile_index
                memory_report["tile_rows"] = t
            finally:
                gmem.free_all()

        wall = time.perf_counter() - start  # repro-lint: disable=GPU001 - host wall clock
        scores = scores32.astype(np.float64) / n
        best_j = int(np.argmin(scores))
        return CudaProgramResult(
            bandwidth=float(grid[best_j]),
            score=float(scores[best_j]),
            scores=scores,
            mode="fast-tiled",
            device=self.device.name,
            wall_seconds=wall,
            simulated=estimate_tiled_runtime(
                n,
                k,
                tile_rows=t,
                device=self.device,
                poly_power_count=P,
                threads_per_block=self.threads_per_block,
            ),
            memory_report=memory_report,
            launch_stats=tuple(stats),
        )
