"""Port of the paper's CUDA optimal-bandwidth program to the GPU simulator.

Importing this package registers the ``"gpusim"`` grid backend, so
``select_bandwidth(x, y, backend="gpusim")`` runs the paper's program 4.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import BACKEND_REGISTRY, register_backend
from repro.cuda_port.host import CudaBandwidthProgram, CudaProgramResult
from repro.obs.tracer import current_tracer
from repro.cuda_port.main_kernel import bandwidth_main_kernel
from repro.cuda_port.multi_gpu import (
    MultiGpuBandwidthProgram,
    estimate_multi_gpu_runtime,
)
from repro.cuda_port.tiled import (
    TiledCudaBandwidthProgram,
    default_tile_rows,
    estimate_tiled_runtime,
)
from repro.cuda_port.timing_model import estimate_program_runtime

__all__ = [
    "CudaBandwidthProgram",
    "CudaProgramResult",
    "MultiGpuBandwidthProgram",
    "TiledCudaBandwidthProgram",
    "bandwidth_main_kernel",
    "default_tile_rows",
    "estimate_multi_gpu_runtime",
    "estimate_program_runtime",
    "estimate_tiled_runtime",
]


def _gpusim_tiled_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str = "epanechnikov",
    *,
    device: str | None = None,
    threads_per_block: int | None = None,
    tile_rows: int | None = None,
    **_: object,
) -> np.ndarray:
    """Grid backend running the out-of-core tiled program (no n×n ceiling)."""
    with current_tracer().span(
        "backend:gpusim-tiled",
        n=int(np.asarray(x).shape[0]),
        k=len(bandwidths),
    ):
        program = TiledCudaBandwidthProgram(
            device=device,
            kernel=kernel,
            threads_per_block=threads_per_block,
            tile_rows=tile_rows,
        )
        return program.run(x, y, bandwidths).scores


def _gpusim_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str = "epanechnikov",
    *,
    device: str | None = None,
    mode: str = "auto",
    threads_per_block: int | None = None,
    **_: object,
) -> np.ndarray:
    """Grid backend running the CUDA program on the simulator."""
    with current_tracer().span(
        "backend:gpusim",
        n=int(np.asarray(x).shape[0]),
        k=len(bandwidths),
        mode=mode,
    ):
        program = CudaBandwidthProgram(
            device=device,
            kernel=kernel,
            mode=mode,
            threads_per_block=threads_per_block,
        )
        return program.run(x, y, bandwidths).scores


if "gpusim" not in BACKEND_REGISTRY:
    register_backend("gpusim", _gpusim_backend)
if "gpusim-tiled" not in BACKEND_REGISTRY:
    register_backend("gpusim-tiled", _gpusim_tiled_backend)
