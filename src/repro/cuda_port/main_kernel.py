"""The paper's main device kernel (§IV-B), one thread per observation.

Each thread ``j`` (``global_id``):

1. fills its rows of the two n×n matrices — ``|X_i − X_j|`` and a private
   copy of ``Y`` — in device global memory;
2. sorts both rows together with the iterative dual-array quicksort
   (key = distance, payload = Y);
3. sweeps the sorted row once, bandwidth by bandwidth (smallest first),
   rolling the per-power running sums forward and storing each
   bandwidth's snapshot into the n×k window-sum matrices;
4. loops over the k bandwidths recombining the sums into the
   leave-one-out estimate — dividing by ``h^p`` and applying the kernel
   coefficients (for the Epanechnikov: "divided by the square of the
   bandwidths and ... multiplied by 0.75"), excluding observation j's own
   contribution, applying the ``M(X_j)`` indicator — and writes the
   squared residual with **switched indices** (``sqresid[jb, j]``) so the
   later per-bandwidth sum reductions read coalesced memory.

Deviation note: §IV-B describes two n×k sum matrices, but the
Epanechnikov leave-one-out estimator needs four running sums (count,
ΣY, Σd², ΣY·d²) — the paper's own §III lists three of them.  This port
keeps one pair of n×k matrices *per polynomial power* (2·P matrices;
P = 2 for the Epanechnikov), which is what the arithmetic requires and
which also generalises the kernel beyond the Epanechnikov exactly as the
paper's footnote 1 anticipates.

All arithmetic is float32, matching the paper's single-precision
constraint (§IV-A).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.kernel import ThreadContext
from repro.gpusim.sort import iterative_quicksort

__all__ = ["bandwidth_main_kernel"]


def bandwidth_main_kernel(
    ctx: ThreadContext,
    x: np.ndarray,
    y: np.ndarray,
    absdiff: np.ndarray,
    ymat: np.ndarray,
    sums_d: tuple[np.ndarray, ...],
    sums_yd: tuple[np.ndarray, ...],
    sqresid: np.ndarray,
    bandwidths: np.ndarray,
    powers: tuple[int, ...],
    coefficients: tuple[float, ...],
    support_radius: float,
) -> None:
    """Device kernel body — see module docstring.

    ``sums_d[p_idx]`` / ``sums_yd[p_idx]`` are the (n, k) window-sum
    matrices for ``powers[p_idx]``; ``sqresid`` is (k, n) — switched
    indices per §IV-B.
    """
    j = ctx.global_id
    n = x.shape[0]
    if j >= n:  # tail threads of the last block idle, as in CUDA
        return
    k = bandwidths.shape[0]

    # -- 1. fill this thread's rows of the n×n matrices --------------------
    row_d = absdiff[j]
    row_y = ymat[j]
    np.abs(x - x[j], out=row_d)
    row_y[:] = y
    ctx.tally(ops=2 * n, bytes_written=8 * n)

    # -- 2. per-thread iterative quicksort (key + payload) ------------------
    moves = iterative_quicksort(row_d, row_y, count_ops=True)
    ctx.tally(ops=moves, bytes_read=4 * moves, bytes_written=4 * moves)

    # -- 3. single sweep populating the n×k window-sum matrices -------------
    n_terms = len(powers)
    run_d = [np.float32(0.0)] * n_terms
    run_yd = [np.float32(0.0)] * n_terms
    ptr = 0
    for jb in range(k):
        cutoff = support_radius * bandwidths[jb]
        while ptr < n and row_d[ptr] <= cutoff:
            d = row_d[ptr]
            yv = row_y[ptr]
            for t in range(n_terms):
                dp = np.float32(d ** powers[t]) if powers[t] else np.float32(1.0)
                run_d[t] = np.float32(run_d[t] + dp)
                run_yd[t] = np.float32(run_yd[t] + yv * dp)
            ptr += 1
        for t in range(n_terms):
            sums_d[t][j, jb] = run_d[t]
            sums_yd[t][j, jb] = run_yd[t]
    ctx.tally(ops=2 * n_terms * (n + k), bytes_read=8 * n, bytes_written=8 * n_terms * k)

    # -- 4. recombine per bandwidth; squared residual with index switch -----
    yj = np.float32(y[j])
    for jb in range(k):
        h = bandwidths[jb]
        num = np.float32(0.0)
        den = np.float32(0.0)
        for t in range(n_terms):
            p = powers[t]
            hp = np.float32(h**p) if p else np.float32(1.0)
            c = np.float32(coefficients[t])
            s_d = sums_d[t][j, jb]
            s_yd = sums_yd[t][j, jb]
            if p == 0:
                # Leave-one-out: thread j's own observation sits at
                # distance 0 and touches only the power-0 sums.
                s_d = np.float32(s_d - 1.0)
                s_yd = np.float32(s_yd - yj)
            num = np.float32(num + c * s_yd / hp)
            den = np.float32(den + c * s_d / hp)
        if den > np.float32(0.0):  # M(X_j) indicator
            r = np.float32(yj - num / den)
            sqresid[jb, j] = np.float32(r * r)
        else:
            sqresid[jb, j] = np.float32(0.0)
    ctx.tally(
        ops=(4 * n_terms + 6) * k,
        bytes_read=8 * n_terms * k,
        bytes_written=4 * k,
    )
