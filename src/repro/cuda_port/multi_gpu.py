"""Dual-GPU variant: using both halves of the paper's Tesla S1070.

§IV-C: the test machine carried "two Tesla S10 GPUs, each with 240
streaming cores and 4 GB of device-specific GPU memory" — the paper's
program uses one.  Because the leave-one-out work is independent per
observation (the same SPMD property the paper exploits within one GPU),
the observation rows split cleanly across devices:

* each device holds its own copy of ``x``, ``y`` and the bandwidth grid
  (constant memory) plus the §IV-A intermediates sized to *its share* of
  the rows — so per-device memory halves and the n = 20,000 OOM wall
  moves to n ≈ √2·20,000 ≈ 28,000 with the monolithic allocation, or
  combines with the tiled layout for no wall at all;
* each device reduces its share to a k-vector of partial
  squared-residual sums;
* the host adds the k-vectors (a k-sized transfer per device — trivial)
  and one device runs the final argmin reduction.

Modelled time: the main-kernel phases halve (perfect row split); the
reductions and overheads do not — Amdahl keeps the end-to-end speedup
just under 2×.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel
from repro.core.fastgrid import fastgrid_block_sums, require_fast_grid_kernel
from repro.cuda_port.host import CudaProgramResult
from repro.cuda_port.timing_model import estimate_program_runtime
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.kernel import LaunchStats
from repro.gpusim.memory import ConstantMemory, GlobalMemory
from repro.gpusim.reduction import device_argmin
from repro.gpusim.timing import PhaseTime, SimulatedRuntime
from repro.parallel import balanced_blocks
from repro.utils.validation import check_paired_samples, ensure_bandwidths

__all__ = ["MultiGpuBandwidthProgram", "estimate_multi_gpu_runtime"]

#: Phases whose work is split evenly across devices (per-row SPMD work).
_SPLITTABLE_PHASES = frozenset({"fill", "sort", "sweep", "combine"})


def estimate_multi_gpu_runtime(
    n: int,
    k: int,
    *,
    n_devices: int = 2,
    device: str | DeviceSpec | None = None,
    poly_power_count: int = 2,
    threads_per_block: int = 512,
) -> SimulatedRuntime:
    """Modelled run time with the rows split over ``n_devices`` GPUs.

    Row-parallel phases divide by the device count; the per-bandwidth
    reductions, argmin, and fixed overheads do not (they run once, after
    a k-sized gather) — the Amdahl term that caps the speedup below the
    device count.
    """
    if n_devices < 1:
        raise ValidationError(f"n_devices must be >= 1, got {n_devices}")
    base = estimate_program_runtime(
        n,
        k,
        device=device,
        poly_power_count=poly_power_count,
        threads_per_block=threads_per_block,
    )
    phases = tuple(
        PhaseTime(
            name=p.name,
            compute_seconds=(
                p.compute_seconds / n_devices
                if p.name in _SPLITTABLE_PHASES
                else p.compute_seconds
            ),
            memory_seconds=(
                p.memory_seconds / n_devices
                if p.name in _SPLITTABLE_PHASES
                else p.memory_seconds
            ),
        )
        for p in base.phases
    )
    # Per-device context/setup overhead plus the k-vector gathers.
    spec = get_device(device)
    overhead = base.overhead_seconds + (n_devices - 1) * (
        spec.launch_overhead_seconds + k * 4 / spec.bytes_per_second
    )
    return SimulatedRuntime(phases=phases, overhead_seconds=overhead)


class MultiGpuBandwidthProgram:
    """The bandwidth program with observations split across GPUs."""

    def __init__(
        self,
        *,
        devices: Sequence[str | DeviceSpec] | None = None,
        kernel: str | Kernel = "epanechnikov",
        threads_per_block: int | None = None,
    ):
        if devices is None:
            devices = [None, None]  # the paper machine's two Tesla modules
        if len(devices) == 0:
            raise ValidationError("need at least one device")
        specs = [get_device(d) for d in devices]
        self.devices = specs
        self.kernel = require_fast_grid_kernel(kernel)
        self.threads_per_block = (
            threads_per_block or specs[0].max_threads_per_block
        )

    def run(
        self, x: np.ndarray, y: np.ndarray, bandwidths: np.ndarray
    ) -> CudaProgramResult:
        """Execute with the row range split evenly across the devices."""
        x64, y64 = check_paired_samples(x, y)
        grid = ensure_bandwidths(bandwidths)
        n = x64.shape[0]
        k = grid.shape[0]
        x32 = x64.astype(np.float32)
        y32 = y64.astype(np.float32)
        P = len(self.kernel.poly_terms)
        blocks = balanced_blocks(n, len(self.devices))

        start = time.perf_counter()  # repro-lint: disable=GPU001 - host wall clock
        stats: list[LaunchStats] = []
        partials = np.zeros(k, dtype=np.float64)
        reports = []
        for (lo, hi), spec in zip(blocks, self.devices):
            share = hi - lo
            constant = ConstantMemory(spec)
            constant.store(grid.astype(np.float32))
            gmem = GlobalMemory(spec)
            try:
                # Per-device §IV-A allocations, sized to the row share.
                d_x = gmem.malloc(n, np.float32, label="x")
                d_y = gmem.malloc(n, np.float32, label="y")
                d_x.copy_from_host(x32)
                d_y.copy_from_host(y32)
                gmem.reserve((share, n), np.float32, label="absdiff-share")
                gmem.reserve((share, n), np.float32, label="y-share")
                for p in range(P):
                    gmem.reserve((share, k), np.float32, label=f"sum-d^p[{p}]")
                    gmem.reserve((share, k), np.float32, label=f"sum-yd^p[{p}]")
                gmem.reserve((k, share), np.float32, label="sq-residuals")

                partials += fastgrid_block_sums(
                    x32.astype(np.float64),
                    y32.astype(np.float64),
                    constant.read().astype(np.float64),
                    self.kernel.name,
                    lo,
                    hi,
                    "float32",
                )
                reports.append(gmem.report())
            finally:
                gmem.free_all()

        # Final argmin on the first device.
        scores32 = partials.astype(np.float32)
        _, _, argmin_stats = device_argmin(
            scores32,
            grid.astype(np.float32),
            device=self.devices[0],
            block_dim=self.threads_per_block,
        )
        stats.append(argmin_stats)

        wall = time.perf_counter() - start  # repro-lint: disable=GPU001 - host wall clock
        scores = scores32.astype(np.float64) / n
        best_j = int(np.argmin(scores))
        memory_report = {
            "devices": [r["device"] for r in reports],
            "per_device_peak_gb": [r["peak_gb"] for r in reports],
            "row_split": blocks,
        }
        return CudaProgramResult(
            bandwidth=float(grid[best_j]),
            score=float(scores[best_j]),
            scores=scores,
            mode=f"fast-multi-gpu-{len(self.devices)}",
            device="+".join(s.name for s in self.devices),
            wall_seconds=wall,
            simulated=estimate_multi_gpu_runtime(
                n,
                k,
                n_devices=len(self.devices),
                device=self.devices[0],
                poly_power_count=P,
                threads_per_block=self.threads_per_block,
            ),
            memory_report=memory_report,
            launch_stats=tuple(stats),
        )
