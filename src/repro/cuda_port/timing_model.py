"""Analytical run-time model of the paper's CUDA program.

Assembles the phase costs of §IV-A/B on a
:class:`~repro.gpusim.timing.TimingModel`:

===============  ==========================================================
Phase            Work charged
===============  ==========================================================
alloc+h2d        zeroing all device allocations (streamed) + the small
                 host→device copies of x, y, bandwidths
fill             each of the n threads writes its n-element rows of the
                 |X_i−X_j| and Y matrices → 2n² scattered stores
sort             per-thread iterative quicksort over a global-memory row:
                 ≈ 1.39·n·log₂n moves/thread, 2 scattered accesses each
sweep            one pass over each sorted row (2n² scattered reads) plus
                 2·P·n·k window-sum stores (P = polynomial power count)
combine          per (thread, bandwidth) recombination: 2·P·n·k scattered
                 reads of the sum matrices, n·k *coalesced* residual
                 stores (the §IV-B index switch makes consecutive threads
                 write consecutive addresses)
reduce           k sum-reduction launches streaming k·n residuals
                 (coalesced, thanks to the index switch) + the argmin
===============  ==========================================================

Every phase takes ``max(compute, memory)``; on the Tesla profile the sort
phase's uncoalesced traffic dominates, which is exactly why the measured
GPU speedup over sequential C in Table I is ~2.5× rather than
(240 cores) ×240.  Calibration against Table I/II is recorded in
EXPERIMENTS.md; the shape (growth in n, near-flatness in k, crossover
versus CPU programs near n ≈ 1,000) is the reproduced claim.
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.timing import SimulatedRuntime, TimingModel

__all__ = ["estimate_program_runtime"]


def estimate_program_runtime(
    n: int,
    k: int,
    *,
    device: str | DeviceSpec | None = None,
    poly_power_count: int = 2,
    threads_per_block: int = 512,
    model: TimingModel | None = None,
) -> SimulatedRuntime:
    """Modelled run time of the CUDA bandwidth program for (n, k).

    ``poly_power_count`` is the number of distinct polynomial powers the
    kernel tracks (2 for the Epanechnikov: powers 0 and 2).
    """
    if n < 1 or k < 1:
        raise ValidationError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
    spec = get_device(device)
    tm = model or TimingModel(spec)
    P = int(poly_power_count)
    nf, kf = float(n), float(k)
    log_n = math.log2(max(nf, 2.0))
    sort_moves = 1.39 * nf * log_n  # per thread

    alloc_bytes = (
        2 * nf * nf * 4  # |X_i − X_j| and Y matrices
        + 2 * P * nf * kf * 4  # window-sum matrices
        + nf * kf * 4  # squared-residual matrix
        + (2 * nf + 2 * kf) * 4  # x, y, scores, bandwidths
    )

    phases = (
        tm.phase(
            "alloc+h2d",
            ops=0.0,
            coalesced_bytes=alloc_bytes + (2 * nf + kf) * 4,
        ),
        tm.phase(
            "fill",
            ops=2.0 * nf * nf,
            threads=n,
            uncoalesced_accesses=2.0 * nf * nf,
        ),
        tm.phase(
            "sort",
            ops=nf * sort_moves,
            threads=n,
            uncoalesced_accesses=2.0 * nf * sort_moves,
        ),
        tm.phase(
            "sweep",
            ops=(2.0 + 2.0 * P) * nf * nf,
            threads=n,
            uncoalesced_accesses=2.0 * nf * nf + 2.0 * P * nf * kf,
        ),
        tm.phase(
            "combine",
            ops=(4.0 * P + 6.0) * nf * kf,
            threads=n,
            uncoalesced_accesses=2.0 * P * nf * kf,
            coalesced_bytes=4.0 * nf * kf,
        ),
        tm.phase(
            "reduce",
            ops=nf * kf / threads_per_block + kf * math.log2(threads_per_block),
            threads=threads_per_block,
            coalesced_bytes=4.0 * nf * kf,
        ),
    )
    overhead = spec.launch_overhead_seconds + tm.launch_overhead(int(kf) + 2)
    return SimulatedRuntime(phases=phases, overhead_seconds=overhead)
