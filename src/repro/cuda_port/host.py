"""Host driver for the CUDA bandwidth program (the paper's program 4).

:class:`CudaBandwidthProgram` performs, in order, exactly the host-side
sequence of §IV-A/B:

1. validate inputs, cast to float32 (single precision per §IV-A);
2. upload the bandwidth grid to **constant memory** (which enforces the
   8 KB / 2,048-value cap);
3. ``cudaMalloc`` every intermediate: x, y, the two n×n matrices, the
   2·P n×k window-sum matrices, the k×n squared-residual matrix and the
   k-vector of CV scores — the capacity check here is what stops the
   program above n = 20,000 on the 4 GB Tesla;
4. launch the main kernel over ⌈n/T⌉ blocks of T = 512 threads;
5. launch k sum reductions (one per bandwidth) and one argmin reduction;
6. copy the optimum back and free the device memory.

Two execution modes share this driver:

* ``"functional"`` — every device kernel actually runs on the simulator,
  thread by thread.  Exact but interpreter-bound: O(n²·log n) python
  work, intended for n up to a few hundred (tests, demos).
* ``"fast"`` — the *device executor* shortcut: allocation, constant
  memory, limits and the argmin reduction behave identically, but the
  main kernel's arithmetic is carried out by the vectorised float32
  equivalent of the same summations, and the big intermediates are
  account-only reservations.  Numerically agrees with functional mode to
  float32 round-off; used for large n.
* ``"auto"`` (default) — functional up to :attr:`functional_limit`
  observations, fast beyond.

Either way the result carries the analytically modelled GPU run time
(:mod:`repro.cuda_port.timing_model`) next to the measured wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel
from repro.core.fastgrid import fastgrid_block_sums, require_fast_grid_kernel
from repro.obs.tracer import current_tracer
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.kernel import LaunchStats, launch_kernel
from repro.gpusim.memory import ConstantMemory, GlobalMemory
from repro.gpusim.reduction import device_argmin, device_sum
from repro.gpusim.timing import SimulatedRuntime
from repro.cuda_port.main_kernel import bandwidth_main_kernel
from repro.cuda_port.timing_model import estimate_program_runtime
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import check_paired_samples, ensure_bandwidths

__all__ = ["CudaBandwidthProgram", "CudaProgramResult"]


@dataclass(frozen=True)
class CudaProgramResult:
    """Output of one program run."""

    bandwidth: float
    score: float
    scores: np.ndarray
    mode: str
    device: str
    wall_seconds: float
    simulated: SimulatedRuntime
    memory_report: dict[str, Any]
    launch_stats: tuple[LaunchStats, ...] = ()

    @property
    def simulated_seconds(self) -> float:
        """Modelled GPU run time (the Table I/II quantity)."""
        return self.simulated.total_seconds


class CudaBandwidthProgram:
    """The paper's CUDA optimal-bandwidth program on the GPU simulator."""

    def __init__(
        self,
        *,
        device: str | DeviceSpec | None = None,
        kernel: str | Kernel = "epanechnikov",
        threads_per_block: int | None = None,
        mode: str = "auto",
        functional_limit: int = 256,
    ):
        self.device = get_device(device)
        self.kernel = require_fast_grid_kernel(kernel)
        self.threads_per_block = threads_per_block or self.device.max_threads_per_block
        if self.threads_per_block & (self.threads_per_block - 1):
            raise ValidationError(
                f"threads_per_block must be a power of two, got "
                f"{self.threads_per_block}"
            )
        if mode not in ("auto", "functional", "fast"):
            raise ValidationError(f"mode must be auto/functional/fast, got {mode!r}")
        self.mode = mode
        self.functional_limit = int(functional_limit)

    # -- public API ----------------------------------------------------------

    def run(
        self, x: np.ndarray, y: np.ndarray, bandwidths: np.ndarray
    ) -> CudaProgramResult:
        """Execute the program; returns scores, optimum, and timings."""
        x64, y64 = check_paired_samples(x, y)
        grid = ensure_bandwidths(bandwidths)
        n = x64.shape[0]
        k = grid.shape[0]
        mode = self.mode
        if mode == "auto":
            mode = "functional" if n <= self.functional_limit else "fast"

        x32 = x64.astype(np.float32)
        y32 = y64.astype(np.float32)
        bw32 = grid.astype(np.float32)
        powers = tuple(t.power for t in self.kernel.poly_terms)
        coeffs = tuple(t.coefficient for t in self.kernel.poly_terms)
        P = len(powers)

        tracer = current_tracer()
        start = time.perf_counter()  # repro-lint: disable=GPU001 - host wall clock
        with tracer.span(
            "cuda-program", mode=mode, device=self.device.name, n=n, k=k
        ):
            constant = ConstantMemory(self.device)
            constant.store(bw32)  # enforces the 2,048-bandwidth cap

            gmem = GlobalMemory(self.device)
            stats: list[LaunchStats] = []
            try:
                with tracer.span("upload", n=n, k=k):
                    d_x = gmem.malloc(n, np.float32, label="x")
                    d_y = gmem.malloc(n, np.float32, label="y")
                    d_scores = gmem.malloc(k, np.float32, label="cv-scores")
                    d_x.copy_from_host(x32)
                    d_y.copy_from_host(y32)

                with tracer.span("main-kernel", mode=mode):
                    if mode == "functional":
                        scores32 = self._run_functional(
                            gmem, constant, d_x, d_y, d_scores, n, k, P,
                            powers, coeffs, stats,
                        )
                    else:
                        scores32 = self._run_fast(
                            gmem, constant, x32, y32, d_scores, n, k, P, stats
                        )

                # Final argmin reduction (always executed on the simulator —
                # k <= 2,048, so it is cheap even at full size).
                with tracer.span("device-argmin", k=k):
                    _, best_h, argmin_stats = device_argmin(
                        scores32,
                        constant.read(),
                        device=self.device,
                        block_dim=self.threads_per_block,
                    )
                stats.append(argmin_stats)
                memory_report = gmem.report()
            finally:
                gmem.free_all()

        wall = time.perf_counter() - start  # repro-lint: disable=GPU001 - host wall clock
        scores = scores32.astype(np.float64) / n  # CV_lc normalisation
        best_j = int(np.argmin(scores))
        # float32 argmin from the device should agree with the host argmin;
        # prefer the exact grid value for downstream float64 use.
        best_bandwidth = float(grid[best_j])
        if not np.isclose(best_bandwidth, float(best_h), rtol=1e-5, atol=1e-7):
            # Tolerate exact ties in float32; otherwise surface the bug.
            tied = np.isclose(scores32, scores32.min(), rtol=0.0, atol=0.0)
            if not tied.sum() > 1:
                raise ValidationError(
                    f"device argmin {best_h} disagrees with host argmin "
                    f"{best_bandwidth}"
                )
        simulated = estimate_program_runtime(
            n,
            k,
            device=self.device,
            poly_power_count=P,
            threads_per_block=self.threads_per_block,
        )
        return CudaProgramResult(
            bandwidth=best_bandwidth,
            score=float(scores[best_j]),
            scores=scores,
            mode=mode,
            device=self.device.name,
            wall_seconds=wall,
            simulated=simulated,
            memory_report=memory_report,
            launch_stats=tuple(stats),
        )

    # -- execution modes -------------------------------------------------------

    def _alloc_intermediates(
        self, gmem: GlobalMemory, n: int, k: int, P: int, *, materialize: bool
    ):
        """§IV-A allocation sequence for the big intermediates."""
        alloc = gmem.malloc if materialize else gmem.reserve
        absdiff = alloc((n, n), np.float32, label="absdiff-matrix")
        ymat = alloc((n, n), np.float32, label="y-matrix")
        sums_d = tuple(
            alloc((n, k), np.float32, label=f"sum-d^p[{t}]") for t in range(P)
        )
        sums_yd = tuple(
            alloc((n, k), np.float32, label=f"sum-yd^p[{t}]") for t in range(P)
        )
        sqresid = alloc((k, n), np.float32, label="sq-residuals")
        return absdiff, ymat, sums_d, sums_yd, sqresid

    def _run_functional(
        self,
        gmem: GlobalMemory,
        constant: ConstantMemory,
        d_x,
        d_y,
        d_scores,
        n: int,
        k: int,
        P: int,
        powers: tuple[int, ...],
        coeffs: tuple[float, ...],
        stats: list[LaunchStats],
    ) -> np.ndarray:
        absdiff, ymat, sums_d, sums_yd, sqresid = self._alloc_intermediates(
            gmem, n, k, P, materialize=True
        )
        T = self.threads_per_block
        grid_dim = -(-n // T)
        main_stats = launch_kernel(
            bandwidth_main_kernel,
            grid_dim=grid_dim,
            block_dim=T,
            args=(
                d_x.array,
                d_y.array,
                absdiff.array,
                ymat.array,
                tuple(b.array for b in sums_d),
                tuple(b.array for b in sums_yd),
                sqresid.array,
                constant.read(),
                powers,
                coeffs,
                self.kernel.support_radius,
            ),
            device=self.device,
        )
        stats.append(main_stats)

        # k sum reductions, one per bandwidth (paper §IV-B).
        for jb in range(k):
            total, red_stats = device_sum(
                sqresid.array[jb], device=self.device, block_dim=T
            )
            d_scores.array[jb] = np.float32(total)
            stats.append(red_stats)
        return d_scores.copy_to_host()

    def _run_fast(
        self,
        gmem: GlobalMemory,
        constant: ConstantMemory,
        x32: np.ndarray,
        y32: np.ndarray,
        d_scores,
        n: int,
        k: int,
        P: int,
        stats: list[LaunchStats],
    ) -> np.ndarray:
        # Same allocations, account-only: capacity/OOM behaviour identical.
        self._alloc_intermediates(gmem, n, k, P, materialize=False)
        grid64 = constant.read().astype(np.float64)
        # Inputs are quantised to float32 first (matching the device
        # arithmetic) and only then widened for the vectorised summations.
        x_as64 = x32.astype(np.float64)
        y_as64 = y32.astype(np.float64)
        sums = np.zeros(k, dtype=np.float64)
        rows = suggest_chunk_rows(n, itemsize=4, working_arrays=4 + P)
        for sl in chunk_slices(n, rows):
            sums += fastgrid_block_sums(
                x_as64,
                y_as64,
                grid64,
                self.kernel.name,
                sl.start,
                sl.stop,
                dtype="float32",
            )
        d_scores.copy_from_host(sums.astype(np.float32))
        return d_scores.copy_to_host()
