"""Fingerprint-keyed two-tier artifact cache for bandwidth selection.

Every expensive artifact in the pipeline is a pure function of the
inputs that produced it: the CV score curve is determined by
``(x, y, grid, kernel, dtype)``; the selected bandwidth additionally by
the method and its options; a row block's partial sums by the block
bounds.  The cache therefore keys everything on the SHA-256 dataset
fingerprint already used by the checkpoint layer
(:func:`repro.resilience.checkpoint.sweep_fingerprint`) — a hit is
*bit-for-bit* equivalent to recomputing, because the stored values are
the exact float64 outputs of a previous run with identical inputs.

Two tiers:

* **memory** — an LRU of deserialised artifacts under a byte budget, so
  a hot serving loop never touches disk;
* **disk** — one file per artifact (``<kind>-<fingerprint>.npz``, atomic
  temp-file + ``os.replace`` writes, mirroring the checkpoint store),
  surviving process restarts and shared between replicas on one host.

Three artifact kinds map onto the paper's cost model:

==============  ========================================================
``selection``   a full :class:`~repro.core.result.SelectionResult` —
                skips the whole selection (sweep + argmin)
``curve``       the k-vector CV score curve for one exact grid — skips
                the O(n² log n) sweep but re-runs the (cheap) argmin
``blocks``      per-row-block partial sums — the unit the resilient
                engine checkpoints; lets a partially warm sweep recompute
                only missing blocks
==============  ========================================================

Reads never raise on corrupt entries: an unreadable or
fingerprint-mismatched file counts as a miss (and is evicted), because a
cache must degrade to "recompute" — never to "fail the request".
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import CacheError, ValidationError
from repro.core.result import SelectionResult
from repro.resilience.checkpoint import sweep_fingerprint

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "canonical_backend",
    "curve_fingerprint",
    "selection_fingerprint",
]

_FORMAT_VERSION = 1

#: Artifact namespaces (file prefixes / stats keys).
_KINDS = ("selection", "curve", "blocks")


# -- fingerprints -----------------------------------------------------------

#: Backends whose results are byte-identical to an already-fingerprinted
#: family representative.  The compiled engine's float64 output carries
#: the same bits as the numpy reference (the differential wall proves
#: it), so a warm entry written by either implementation serves the
#: other — including the capability fallback on a numba-less replica.
#: Only the NEW backend names are mapped: re-keying the existing ones
#: would invalidate every cache already on disk.
_BACKEND_FAMILY: dict[str, str] = {
    "compiled": "numpy",
    "blocked-compiled": "blocked",
}


def canonical_backend(backend: str) -> str:
    """The fingerprint family representative for ``backend``.

    Note the float32 caveat: the compiled float32 fast path is tolerance-
    contracted (same h_opt grid index, curves within rtol 1e-5) rather
    than byte-identical, so a float32 hit may differ from a fresh compiled
    recompute in the last few ulps — within the documented contract.
    """
    return _BACKEND_FAMILY.get(backend, backend)


def curve_fingerprint(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    *,
    backend: str = "numpy",
    dtype: str = "float64",
) -> str:
    """Key for one exact CV curve: data, grid, kernel, and arithmetic.

    The backend is part of the key because backends differ in summation
    order and precision (the gpusim path accumulates in float32); two
    backends' curves for the same data are *close*, not identical, and a
    bit-for-bit cache must not conflate them.  Byte-identical backends
    are the exception: they share a key via :func:`canonical_backend`.
    """
    backend = canonical_backend(backend)
    base = sweep_fingerprint(x, y, bandwidths, kernel_name, dtype, 0)
    digest = hashlib.sha256()
    digest.update(f"curve|v{_FORMAT_VERSION}|{backend}|".encode())
    digest.update(base.encode())
    return digest.hexdigest()


def selection_fingerprint(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    *,
    method: str = "grid",
    backend: str = "numpy",
    dtype: str = "float64",
    options: dict[str, Any] | None = None,
) -> str:
    """Key for a full selection: the curve key plus selector configuration.

    ``options`` covers anything that steers the selector beyond the grid
    (``refine_rounds``, ``n_restarts``, ...); entries are serialised via
    ``repr`` in sorted key order, which is deterministic for the scalar
    option values the selectors accept.  Byte-identical backends share a
    key via :func:`canonical_backend`.
    """
    backend = canonical_backend(backend)
    base = sweep_fingerprint(x, y, bandwidths, kernel_name, dtype, 0)
    digest = hashlib.sha256()
    digest.update(f"selection|v{_FORMAT_VERSION}|{method}|{backend}|".encode())
    digest.update(base.encode())
    opts = options or {}
    for key in sorted(opts):
        digest.update(f"{key}={opts[key]!r}|".encode())
    return digest.hexdigest()


# -- stats ------------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    corrupt_entries: int = 0
    #: Per-kind hit counts, e.g. ``{"selection": 3, "curve": 1}``.
    hits_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache is untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def record_hit(self, kind: str) -> None:
        self.hits += 1
        self.hits_by_kind[kind] = self.hits_by_kind.get(kind, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "corrupt_entries": self.corrupt_entries,
            "hits_by_kind": dict(self.hits_by_kind),
        }


# -- serialisation ----------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays so json.dumps accepts them."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def _result_to_arrays(result: SelectionResult) -> dict[str, np.ndarray]:
    """Flatten a SelectionResult into npz-storable arrays + JSON metadata."""
    meta = {
        "bandwidth": result.bandwidth,
        "score": result.score,
        "method": result.method,
        "backend": result.backend,
        "kernel": result.kernel,
        "n_observations": result.n_observations,
        "n_evaluations": result.n_evaluations,
        "wall_seconds": result.wall_seconds,
        "converged": result.converged,
        "diagnostics": _json_safe(result.diagnostics),
    }
    return {
        "meta": np.array(json.dumps(meta)),
        "bandwidths": np.asarray(result.bandwidths, dtype=np.float64),
        "scores": np.asarray(result.scores, dtype=np.float64),
    }


def _arrays_to_result(payload: dict[str, np.ndarray]) -> SelectionResult:
    meta = json.loads(str(payload["meta"]))
    diagnostics = dict(meta["diagnostics"])
    diagnostics["cache"] = "hit"
    return SelectionResult(
        bandwidth=float(meta["bandwidth"]),
        score=float(meta["score"]),
        method=str(meta["method"]),
        backend=str(meta["backend"]),
        kernel=str(meta["kernel"]),
        n_observations=int(meta["n_observations"]),
        bandwidths=np.asarray(payload["bandwidths"], dtype=np.float64),
        scores=np.asarray(payload["scores"], dtype=np.float64),
        n_evaluations=int(meta["n_evaluations"]),
        wall_seconds=float(meta["wall_seconds"]),
        converged=bool(meta["converged"]),
        diagnostics=diagnostics,
    )


# -- the cache --------------------------------------------------------------


class ArtifactCache:
    """Two-tier (memory LRU + disk) artifact store keyed by fingerprint.

    Parameters
    ----------
    directory:
        Disk tier root (created on first write).  ``None`` disables the
        disk tier — the cache is then memory-only and process-local.
    max_memory_bytes:
        Byte budget for the in-memory LRU (default 64 MiB).  Artifacts
        larger than the whole budget bypass the memory tier.
    max_disk_bytes:
        Byte budget for the disk tier (default 512 MiB); least recently
        *modified* files are deleted first when over budget.
    max_entries:
        Entry-count cap for the memory tier (a second LRU bound so a
        flood of tiny artifacts cannot monopolise the dict).

    All public methods are thread-safe: the serving scheduler calls the
    cache from executor threads while the event loop reads stats.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_memory_bytes: int = 64 * 1024 * 1024,
        max_disk_bytes: int = 512 * 1024 * 1024,
        max_entries: int = 1024,
    ) -> None:
        if max_memory_bytes < 0 or max_disk_bytes < 0:
            raise ValidationError("cache byte budgets must be >= 0")
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_bytes = int(max_memory_bytes)
        self.max_disk_bytes = int(max_disk_bytes)
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        #: key -> (payload dict, approximate bytes), LRU order.
        self._memory: OrderedDict[str, tuple[dict[str, np.ndarray], int]] = (
            OrderedDict()
        )
        self._memory_bytes = 0

    # -- selection results -------------------------------------------------

    def put_selection(self, fingerprint: str, result: SelectionResult) -> None:
        """Store a full selection outcome under its fingerprint."""
        self._put("selection", fingerprint, _result_to_arrays(result))

    def get_selection(self, fingerprint: str) -> SelectionResult | None:
        """The cached :class:`SelectionResult`, or ``None`` on a miss.

        The returned result carries ``diagnostics["cache"] == "hit"`` so
        callers (and the serving metrics) can distinguish warm answers.
        """
        payload = self._get("selection", fingerprint)
        if payload is None:
            return None
        try:
            return _arrays_to_result(payload)
        except (KeyError, ValueError, TypeError, json.JSONDecodeError):
            self._note_corrupt("selection", fingerprint)
            return None

    # -- CV score curves ---------------------------------------------------

    def put_curve(
        self, fingerprint: str, bandwidths: np.ndarray, scores: np.ndarray
    ) -> None:
        """Store one exact CV curve (grid values + float64 scores)."""
        grid = np.asarray(bandwidths, dtype=np.float64)
        vals = np.asarray(scores, dtype=np.float64)
        if grid.shape != vals.shape:
            raise CacheError(
                f"curve grid/scores shapes differ: {grid.shape} vs {vals.shape}"
            )
        self._put("curve", fingerprint, {"bandwidths": grid, "scores": vals})

    def get_curve(self, fingerprint: str) -> np.ndarray | None:
        """The cached float64 score curve, or ``None`` on a miss."""
        payload = self._get("curve", fingerprint)
        if payload is None:
            return None
        try:
            return np.asarray(payload["scores"], dtype=np.float64).copy()
        except (KeyError, ValueError):
            self._note_corrupt("curve", fingerprint)
            return None

    # -- per-block partial sums -------------------------------------------

    def put_blocks(
        self, fingerprint: str, starts: np.ndarray, sums: np.ndarray
    ) -> None:
        """Store per-row-block partial sums (the checkpoint artifact)."""
        starts_arr = np.asarray(starts, dtype=np.int64)
        sums_arr = np.asarray(sums, dtype=np.float64)
        if sums_arr.ndim != 2 or sums_arr.shape[0] != starts_arr.shape[0]:
            raise CacheError(
                f"blocks payload malformed: {starts_arr.shape[0]} starts "
                f"vs sums of shape {sums_arr.shape}"
            )
        self._put(
            "blocks", fingerprint, {"starts": starts_arr, "sums": sums_arr}
        )

    def get_blocks(self, fingerprint: str) -> dict[int, np.ndarray] | None:
        """Cached ``{start: k-vector}`` block sums, or ``None`` on a miss."""
        payload = self._get("blocks", fingerprint)
        if payload is None:
            return None
        try:
            starts = np.asarray(payload["starts"], dtype=np.int64)
            sums = np.asarray(payload["sums"], dtype=np.float64)
            return {int(s): sums[i].copy() for i, s in enumerate(starts)}
        except (KeyError, ValueError, IndexError):
            self._note_corrupt("blocks", fingerprint)
            return None

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def describe(self) -> dict[str, Any]:
        """Snapshot of occupancy and stats (for ``repro info`` / /metrics)."""
        with self._lock:
            disk_entries, disk_bytes = self._disk_usage()
            return {
                "directory": str(self.directory) if self.directory else None,
                "memory_entries": len(self._memory),
                "memory_bytes": self._memory_bytes,
                "max_memory_bytes": self.max_memory_bytes,
                "disk_entries": disk_entries,
                "disk_bytes": disk_bytes,
                "max_disk_bytes": self.max_disk_bytes,
                "stats": self.stats.to_dict(),
            }

    def flush(self) -> int:
        """Persist memory-tier entries missing from the disk tier.

        The write path is normally write-through, but an entry can be
        memory-only when the disk tier evicted it under budget pressure
        or a write failed transiently.  Called on graceful shutdown so
        a restarted replica finds the warm artifacts on disk; returns
        the number of entries written.  A ``None`` directory (memory-
        only cache) flushes nothing.
        """
        if self.directory is None:
            return 0
        written = 0
        with self._lock:
            for key, (payload, _) in self._memory.items():
                if self._disk_path(key).exists():
                    continue
                try:
                    self._disk_write(key, payload)
                except CacheError:
                    continue  # unwritable tier: shutdown must not fail
                written += 1
            if written:
                self._disk_enforce_budget()
        return written

    def clear(self) -> None:
        """Drop both tiers (stats are preserved)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
            for path in self._disk_files():
                self._unlink_quietly(path)

    # -- tier plumbing -----------------------------------------------------

    def _put(self, kind: str, fingerprint: str, payload: dict[str, np.ndarray]) -> None:
        assert kind in _KINDS
        key = f"{kind}-{fingerprint}"
        size = sum(arr.nbytes for arr in payload.values())
        with self._lock:
            self.stats.puts += 1
            self._memory_insert(key, payload, size)
            if self.directory is not None:
                self._disk_write(key, payload)
                self._disk_enforce_budget()

    def _get(self, kind: str, fingerprint: str) -> dict[str, np.ndarray] | None:
        key = f"{kind}-{fingerprint}"
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.record_hit(kind)
                return entry[0]
            payload = self._disk_read(key)
            if payload is None:
                self.stats.misses += 1
                return None
            # Promote to the memory tier so repeat hits stay RAM-speed.
            size = sum(arr.nbytes for arr in payload.values())
            self._memory_insert(key, payload, size)
            self.stats.record_hit(kind)
            return payload

    def _note_corrupt(self, kind: str, fingerprint: str) -> None:
        """Deserialisation failed after a tier hit: evict and count."""
        key = f"{kind}-{fingerprint}"
        with self._lock:
            self.stats.corrupt_entries += 1
            entry = self._memory.pop(key, None)
            if entry is not None:
                self._memory_bytes -= entry[1]
            if self.directory is not None:
                self._unlink_quietly(self.directory / f"{key}.npz")

    # -- memory tier -------------------------------------------------------

    def _memory_insert(
        self, key: str, payload: dict[str, np.ndarray], size: int
    ) -> None:
        if size > self.max_memory_bytes:
            return  # larger than the whole budget: disk tier only
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= old[1]
        self._memory[key] = (payload, size)
        self._memory_bytes += size
        while self._memory and (
            self._memory_bytes > self.max_memory_bytes
            or len(self._memory) > self.max_entries
        ):
            _, (_, evicted_size) = self._memory.popitem(last=False)
            self._memory_bytes -= evicted_size
            self.stats.memory_evictions += 1

    # -- disk tier ---------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npz"

    def _disk_files(self) -> list[Path]:
        if self.directory is None or not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.npz"))

    def _disk_usage(self) -> tuple[int, int]:
        entries = 0
        total = 0
        for path in self._disk_files():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return entries, total

    def _disk_write(self, key: str, payload: dict[str, np.ndarray]) -> None:
        assert self.directory is not None
        target = self._disk_path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=target.name + ".", suffix=".tmp", dir=target.parent
            )
        except OSError as exc:
            raise CacheError(
                f"cache directory {self.directory} is unwritable: {exc}"
            ) from exc
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, target)
        except BaseException:
            self._unlink_quietly(Path(tmp_name))
            raise

    def _disk_read(self, key: str) -> dict[str, np.ndarray] | None:
        if self.directory is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as stored:
                payload = {name: np.asarray(stored[name]) for name in stored.files}
        except (OSError, ValueError, KeyError, EOFError) as exc:
            # A torn or foreign file is a miss, not a failure: evict it so
            # the slot is rewritten by the next put.
            del exc
            with self._lock:
                self.stats.corrupt_entries += 1
            self._unlink_quietly(path)
            return None
        # Touch so LRU-by-mtime eviction sees the read.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def _disk_enforce_budget(self) -> None:
        if self.directory is None:
            return
        files = self._disk_files()
        sized: list[tuple[float, int, Path]] = []
        total = 0
        for path in files:
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        sized.sort()  # oldest mtime first
        for _, size, path in sized:
            if total <= self.max_disk_bytes:
                break
            self._unlink_quietly(path)
            total -= size
            self.stats.disk_evictions += 1

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
