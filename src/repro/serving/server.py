"""JSON-over-HTTP serving front end (stdlib asyncio only).

Turns the reproduction into an inference service::

    repro-bench serve --dgp paper --n 1000 --port 8173

    curl -s localhost:8173/healthz
    curl -s -X POST localhost:8173/predict \\
         -d '{"model": "default", "at": [0.25, 0.5, 0.75]}'
    curl -s localhost:8173/metrics

Endpoints
---------
``POST /select``    select a bandwidth for posted ``x``/``y`` arrays
                    (fingerprint-cached; ``"register"`` optionally names
                    the fitted model for later ``/predict`` traffic)
``POST /fit``       fit + register a named model
``POST /predict``   NW estimates from a registered model (micro-batched:
                    concurrent requests for the same model coalesce into
                    one estimator pass)
``GET  /models``    registered models with provenance
``GET  /healthz``   liveness + model/cache summary
``GET  /metrics``   text metrics dump (cache hit rate, batch occupancy,
                    queue depth, latency percentiles)

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, JSON bodies); the interesting parts live in
:class:`ServingApp.handle`, which is pure-async and fully testable
without sockets.  All numpy-bound work runs on executor threads via the
:class:`~repro.serving.scheduler.MicroBatchScheduler` — the event loop
only parses, routes, and serialises.

Failures route through the same classification the resilience layer
uses: typed ``REPRO_*`` codes map onto HTTP statuses (validation → 400,
unknown model → 404, admission control → 429, everything else → 500),
and selections run with ``resilience=`` enabled by default so an
overloaded/OOM gpusim backend degrades down the fallback chain instead
of 500ing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import (
    OverloadError,
    RegistryError,
    ReproError,
    ServeTimeoutError,
    ValidationError,
    error_code,
)
from repro.core.result import SelectionResult
from repro.obs.export import trace_metrics_lines
from repro.obs.tracer import NULL_TRACER, Tracer, TracerLike, use_tracer
from repro.serving.cache import ArtifactCache
from repro.serving.metrics import MetricsRegistry
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import MicroBatchScheduler, SchedulerConfig

__all__ = ["ServingApp", "ServingConfig", "run_server", "serve_forever"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServingConfig:
    """Everything one serving process needs to know."""

    host: str = "127.0.0.1"
    port: int = 8173
    cache_dir: str | None = None
    max_memory_bytes: int = 64 * 1024 * 1024
    max_disk_bytes: int = 512 * 1024 * 1024
    predict: SchedulerConfig = field(default_factory=SchedulerConfig)
    select: SchedulerConfig = field(
        default_factory=lambda: SchedulerConfig(max_batch_size=4, max_wait_ms=1.0)
    )
    #: Connection read timeout: a client that connects but never sends a
    #: complete request is answered 504 and dropped, so slow-loris
    #: connections cannot pin the accept loop's resources.
    read_timeout_s: float = 30.0
    #: Per-request execution deadline; past it the request is answered
    #: with a typed ``REPRO_SERVE_TIMEOUT`` 504 (the same code the
    #: distributed RPC client raises for a silent worker).  ``None``
    #: disables the deadline.
    request_deadline_s: float | None = 120.0
    #: Run selections on the resilient engine (backend degrade chain).
    resilience: bool = True
    #: Record per-request spans into the app tracer (surfaced on /metrics).
    tracing: bool = True
    #: Ring-buffer capacity of the app tracer.
    trace_events: int = 8192
    default_backend: str = "numpy"
    default_kernel: str = "epanechnikov"
    default_n_bandwidths: int = 50


class ServingApp:
    """Route table + request executors over cache, registry, schedulers."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()
        self.metrics = MetricsRegistry()
        self.tracer: TracerLike = (
            Tracer(max_events=self.config.trace_events)
            if self.config.tracing
            else NULL_TRACER
        )
        self.cache = ArtifactCache(
            self.config.cache_dir,
            max_memory_bytes=self.config.max_memory_bytes,
            max_disk_bytes=self.config.max_disk_bytes,
        )
        self.registry = ModelRegistry(cache=self.cache)
        self._predict_scheduler: MicroBatchScheduler[
            tuple[str, np.ndarray], np.ndarray
        ] = MicroBatchScheduler(
            self._run_predict_batch,
            config=self.config.predict,
            metrics=self.metrics,
            name="predict",
        )
        self._select_scheduler: MicroBatchScheduler[
            dict[str, Any], SelectionResult
        ] = MicroBatchScheduler(
            self._run_select_batch,
            config=self.config.select,
            metrics=self.metrics,
            name="select",
        )
        self._m_http = self.metrics.counter(
            "http_requests_total", "HTTP requests handled"
        )
        self._m_http_5xx = self.metrics.counter(
            "http_errors_total", "HTTP 5xx responses"
        )
        self._m_latency = self.metrics.histogram(
            "http_request_seconds", "end-to-end request latency"
        )
        self._m_select_hits = self.metrics.counter(
            "select_cache_hits_total", "selections answered from the cache"
        )
        self._m_select_cold = self.metrics.counter(
            "select_cache_misses_total", "selections that ran the sweep"
        )

    # -- lifecycle ---------------------------------------------------------

    def startup(self) -> None:
        """Start the schedulers (requires a running event loop)."""
        self._predict_scheduler.start()
        self._select_scheduler.start()

    async def shutdown(self) -> None:
        """Graceful drain: finish queued work, then stop."""
        await self._predict_scheduler.drain()
        await self._select_scheduler.drain()

    # -- blocking batch runners (executor threads) -------------------------

    def _run_predict_batch(
        self, items: list[tuple[str, np.ndarray]]
    ) -> list[np.ndarray]:
        """Group a batch by model, run one estimator pass per group.

        Coalescing is real work saved: ``B`` requests for one model cost
        one kernel-matrix pass over the concatenated evaluation points
        instead of ``B`` passes.
        """
        groups: dict[str, list[int]] = {}
        for idx, (model_name, _) in enumerate(items):
            groups.setdefault(model_name, []).append(idx)
        out: list[np.ndarray | None] = [None] * len(items)
        with self.tracer.span(
            "predict-batch", size=len(items), models=len(groups)
        ):
            for model_name, indices in groups.items():
                record = self.registry.get(model_name)
                points = np.concatenate([items[i][1] for i in indices])
                estimates = record.model.predict(points)
                offset = 0
                for i in indices:
                    m = items[i][1].shape[0]
                    out[i] = estimates[offset : offset + m]
                    offset += m
        return [est for est in out if est is not None]

    def _run_select_batch(
        self, payloads: list[dict[str, Any]]
    ) -> list[SelectionResult]:
        """Run each selection in the batch (cache-warm ones are instant)."""
        from repro.core.api import select_bandwidth

        results: list[SelectionResult] = []
        with use_tracer(self.tracer):
            with self.tracer.span("select-batch", size=len(payloads)):
                for payload in payloads:
                    kwargs = dict(payload)
                    x = kwargs.pop("x")
                    y = kwargs.pop("y")
                    results.append(
                        select_bandwidth(x, y, cache=self.cache, **kwargs)
                    )
        return results

    # -- request parsing helpers -------------------------------------------

    @staticmethod
    def _as_array(body: dict[str, Any], key: str) -> np.ndarray:
        value = body.get(key)
        if not isinstance(value, (list, tuple)) or not value:
            raise ValidationError(
                f"field {key!r} must be a non-empty JSON array of numbers"
            )
        try:
            return np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"field {key!r} is not numeric: {exc}") from exc

    def _select_kwargs(self, body: dict[str, Any]) -> dict[str, Any]:
        kwargs: dict[str, Any] = {
            "x": self._as_array(body, "x"),
            "y": self._as_array(body, "y"),
            "method": str(body.get("method", "grid")),
            "kernel": str(body.get("kernel", self.config.default_kernel)),
        }
        if kwargs["method"].lower() in ("grid", "grid-search", "fast-grid"):
            kwargs["backend"] = str(
                body.get("backend", self.config.default_backend)
            )
            kwargs["n_bandwidths"] = int(
                body.get("n_bandwidths", self.config.default_n_bandwidths)
            )
            if self.config.resilience:
                kwargs["resilience"] = True
        return kwargs

    # -- routes ------------------------------------------------------------

    async def handle(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> tuple[int, dict[str, Any] | str]:
        """Dispatch one request; returns ``(status, payload)``.

        A ``str`` payload is served as ``text/plain`` (the /metrics
        dump); dicts are serialised as JSON.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._m_http.inc()
        deadline = self.config.request_deadline_s
        with use_tracer(self.tracer):
            with self.tracer.span("request", method=method, path=path) as span:
                try:
                    route = self._route(method, path, body or {})
                    if deadline is not None:
                        status, payload = await asyncio.wait_for(
                            route, timeout=deadline
                        )
                    else:
                        status, payload = await route
                except asyncio.TimeoutError:
                    status, payload = 504, self._error_payload(
                        ServeTimeoutError(
                            f"{method} {path} exceeded the "
                            f"{deadline:.1f}s request deadline"
                        )
                    )
                except ServeTimeoutError as exc:
                    status, payload = 504, self._error_payload(exc)
                except OverloadError as exc:
                    status, payload = 429, self._error_payload(exc)
                except RegistryError as exc:
                    status, payload = 404, self._error_payload(exc)
                except ValidationError as exc:
                    status, payload = 400, self._error_payload(exc)
                except ReproError as exc:
                    status, payload = 500, self._error_payload(exc)
                except Exception as exc:  # boundary: faults become statuses
                    status, payload = 500, {
                        "error": f"internal error: {type(exc).__name__}: {exc}",
                        "code": "REPRO_SERVING",
                    }
                span.set(status=status)
        if status >= 500:
            self._m_http_5xx.inc()
        self._m_latency.observe(loop.time() - started)
        return status, payload

    async def _route(
        self, method: str, path: str, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any] | str]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                return 200, self._healthz()
            if path == "/metrics":
                return 200, self.metrics_text()
            if path == "/models":
                return 200, {"models": self.registry.describe()}
        elif method == "POST":
            if path == "/select":
                return await self._handle_select(body)
            if path == "/predict":
                return await self._handle_predict(body)
            if path == "/fit":
                return await self._handle_fit(body)
        raise ValidationError(
            f"no route for {method} {path}; available: GET /healthz, "
            "GET /metrics, GET /models, POST /select, POST /predict, "
            "POST /fit"
        )

    async def _handle_select(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        kwargs = self._select_kwargs(body)
        with self.tracer.span("select", n=int(kwargs["x"].shape[0])) as span:
            result = await self._select_scheduler.submit(kwargs)
            cache_hit = result.diagnostics.get("cache") == "hit"
            span.set(
                cache="hit" if cache_hit else "miss",
                fingerprint=result.diagnostics.get("fingerprint"),
                h_opt=result.bandwidth,
            )
        if cache_hit:
            self._m_select_hits.inc()
        else:
            self._m_select_cold.inc()
        register = body.get("register")
        if register is not None:
            from repro.regression import NadarayaWatson

            model = NadarayaWatson(
                result.kernel, bandwidth=result.bandwidth
            ).fit(kwargs["x"], kwargs["y"])
            self.registry.register(
                str(register),
                model,
                provenance={
                    "method": result.method,
                    "backend": result.backend,
                    "cache": "hit" if cache_hit else "miss",
                    "selection_wall_seconds": result.wall_seconds,
                },
                result=result,
                overwrite=True,
            )
        return 200, {
            "result": result.to_dict(),
            "cache_hit": cache_hit,
        }

    async def _handle_predict(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        model_name = str(body.get("model", "default"))
        at = self._as_array(body, "at")
        if model_name not in self.registry:
            # Typed 404 *before* paying a queue slot.
            self.registry.get(model_name)
        estimates = await self._predict_scheduler.submit((model_name, at))
        values = [
            None if not np.isfinite(v) else float(v) for v in estimates
        ]
        return 200, {"model": model_name, "estimates": values}

    async def _handle_fit(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ValidationError("field 'name' must be a non-empty string")
        kwargs = self._select_kwargs(body)
        kwargs.pop("resilience", None)
        loop = asyncio.get_running_loop()
        record = await loop.run_in_executor(
            None,
            lambda: self.registry.fit(
                name, overwrite=bool(body.get("overwrite", False)), **kwargs
            ),
        )
        return 200, {"model": record.describe()}

    # -- introspection -----------------------------------------------------

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "models": self.registry.names(),
            "cache": self.cache.describe(),
            "schedulers": [
                self._predict_scheduler.describe(),
                self._select_scheduler.describe(),
            ],
        }

    def metrics_text(self) -> str:
        """Registry metrics plus cache counters, one scrapeable blob."""
        stats = self.cache.stats
        lines = [
            "# HELP repro_cache_hits_total artifact cache hits",
            f"repro_cache_hits_total {stats.hits}",
            f"repro_cache_misses_total {stats.misses}",
            f"repro_cache_puts_total {stats.puts}",
            f"repro_cache_hit_rate {stats.hit_rate:.6f}",
            f"repro_cache_memory_evictions_total {stats.memory_evictions}",
            f"repro_cache_disk_evictions_total {stats.disk_evictions}",
            f"repro_registered_models {len(self.registry)}",
        ]
        if isinstance(self.tracer, Tracer):
            lines.extend(trace_metrics_lines(self.tracer))
        # Per-worker fleet health gauges (set by the distributed
        # coordinator) ride along so one scrape covers the whole stack.
        from repro.distributed.coordinator import fleet_metrics

        fleet_text = fleet_metrics().render_text()
        return (
            self.metrics.render_text() + fleet_text + "\n".join(lines) + "\n"
        )

    @staticmethod
    def _error_payload(exc: ReproError) -> dict[str, Any]:
        return {"error": str(exc), "code": error_code(exc) or "REPRO_SERVING"}


# -- the wire protocol ------------------------------------------------------


def _json_default(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any] | str,
) -> None:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               413: "Payload Too Large", 422: "Unprocessable Entity",
               429: "Too Many Requests", 500: "Internal Server Error",
               504: "Gateway Timeout"}
    if isinstance(payload, str):
        body = payload.encode()
        content_type = "text/plain; charset=utf-8"
    else:
        body = json.dumps(payload, default=_json_default).encode()
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, Any] | None] | None:
    """Parse one HTTP/1.1 request; None on EOF/garbage before the verb."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        return None
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        return None
    method, path = parts[0].upper(), parts[1]
    length = 0
    for line in header_lines:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise ValidationError(f"bad Content-Length {value.strip()!r}")
    if length > _MAX_BODY_BYTES:
        raise ValidationError(
            f"request body of {length} bytes exceeds the "
            f"{_MAX_BODY_BYTES}-byte limit"
        )
    body: dict[str, Any] | None = None
    if length:
        raw = await reader.readexactly(length)
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ValidationError("request body must be a JSON object")
        body = parsed
    return method, path, body


async def run_server(
    app: ServingApp,
    *,
    ready: "asyncio.Future[tuple[str, int]] | None" = None,
    shutdown_trigger: "asyncio.Event | None" = None,
) -> None:
    """Serve ``app`` until ``shutdown_trigger`` (or cancellation).

    ``ready`` (if given) resolves to the bound ``(host, port)`` once the
    socket is listening — pass ``port=0`` in the config to let the OS
    pick a free port (the tests and smoke script do).
    """

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader),
                    timeout=app.config.read_timeout_s,
                )
            except asyncio.TimeoutError:
                # A connection that never finishes its request (slow
                # loris, dead peer) gets a typed 504 and its socket back.
                exc = ServeTimeoutError(
                    "request not received within the "
                    f"{app.config.read_timeout_s:.1f}s read timeout"
                )
                await _write_response(
                    writer, 504, {"error": str(exc), "code": exc.code}
                )
                return
            except ValidationError as exc:
                await _write_response(
                    writer, 400, {"error": str(exc), "code": exc.code}
                )
                return
            if request is None:
                return
            method, path, body = request
            status, payload = await app.handle(method, path, body)
            await _write_response(writer, status, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(
        handle_connection, app.config.host, app.config.port
    )
    app.startup()
    sockets = server.sockets or ()
    bound = sockets[0].getsockname()[:2] if sockets else (app.config.host, 0)
    if ready is not None and not ready.done():
        ready.set_result((bound[0], int(bound[1])))
    try:
        async with server:
            if shutdown_trigger is None:
                await server.serve_forever()
            else:
                await shutdown_trigger.wait()
    finally:
        # Graceful drain: stop accepting, finish queued micro-batches,
        # then persist the memory-tier cache so a restart stays warm.
        server.close()
        await app.shutdown()
        app.cache.flush()


def serve_forever(target: ServingApp | ServingConfig | None = None) -> int:
    """Blocking entry point used by ``repro-bench serve``.

    Accepts a prepared :class:`ServingApp` (the CLI pre-fits a default
    model on its registry) or a bare config.  SIGTERM and SIGINT both
    trigger a graceful shutdown — drain the schedulers, stop accepting,
    flush the artifact cache disk tier — and exit 0.
    """
    import signal

    app = target if isinstance(target, ServingApp) else ServingApp(target)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        ready: asyncio.Future[tuple[str, int]] = loop.create_future()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal handlers
        task = loop.create_task(
            run_server(app, ready=ready, shutdown_trigger=stop)
        )
        host, port = await ready
        print(f"repro serving on http://{host}:{port}", flush=True)
        await task
        print("repro serving drained; bye", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0
