"""Named model registry: fit once, predict many.

The serving layer's unit of reuse above the artifact cache: a fitted
:class:`~repro.regression.NadarayaWatson` estimator plus the provenance
of its bandwidth (dataset fingerprint, selection method, backend,
selection wall time).  ``/predict`` requests resolve a model by name and
never pay selection cost; ``/select`` requests can register their result
so later traffic reuses it.

The registry is thread-safe: the asyncio server touches it from
executor threads (fit/predict) and the event loop (listing, health).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.exceptions import RegistryError, ValidationError
from repro.core.grid import BandwidthGrid
from repro.core.result import SelectionResult
from repro.regression import NadarayaWatson
from repro.serving.cache import ArtifactCache, selection_fingerprint
from repro.utils.validation import check_paired_samples

__all__ = ["ModelRecord", "ModelRegistry"]


@dataclass(frozen=True)
class ModelRecord:
    """One registered estimator and where its bandwidth came from."""

    name: str
    model: NadarayaWatson
    bandwidth: float
    #: Provenance: fingerprint, method, backend, kernel, selection wall
    #: time, cache hit/miss, registration timestamp (UNIX seconds).
    provenance: dict[str, Any] = field(default_factory=dict)
    result: SelectionResult | None = None

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (no arrays)."""
        return {
            "name": self.name,
            "bandwidth": self.bandwidth,
            "n_observations": (
                int(self.model.x_.shape[0]) if self.model.x_ is not None else 0
            ),
            "provenance": dict(self.provenance),
        }


class ModelRegistry:
    """Name → fitted-model map with selection provenance.

    Parameters
    ----------
    cache:
        Optional :class:`ArtifactCache`; when given, :meth:`fit` routes
        its bandwidth selection through the cache so re-fitting a model
        on an already-seen dataset skips the sweep entirely.
    """

    def __init__(self, cache: ArtifactCache | None = None) -> None:
        self.cache = cache
        self._records: dict[str, ModelRecord] = {}
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def fit(
        self,
        name: str,
        x: np.ndarray,
        y: np.ndarray,
        *,
        method: str = "grid",
        kernel: str = "epanechnikov",
        n_bandwidths: int = 50,
        backend: str = "numpy",
        overwrite: bool = False,
        **options: Any,
    ) -> ModelRecord:
        """Select a bandwidth for ``(x, y)`` and register the fitted model.

        The selection goes through :func:`repro.core.api.select_bandwidth`
        with this registry's cache, so identical datasets hit the warm
        path.  Returns the stored :class:`ModelRecord`.
        """
        from repro.core.api import select_bandwidth

        if not name or not isinstance(name, str):
            raise ValidationError(f"model name must be a non-empty str, got {name!r}")
        with self._lock:
            if name in self._records and not overwrite:
                raise RegistryError(
                    f"model {name!r} is already registered; pass overwrite=True "
                    "to replace it"
                )
        x, y = check_paired_samples(x, y)
        result = select_bandwidth(
            x,
            y,
            method=method,
            kernel=kernel,
            n_bandwidths=n_bandwidths,
            backend=backend,
            cache=self.cache,
            **options,
        )
        model = NadarayaWatson(kernel, bandwidth=result.bandwidth).fit(x, y)
        grid = BandwidthGrid.for_sample(x, n_bandwidths)
        provenance = {
            "fingerprint": selection_fingerprint(
                x,
                y,
                grid.values,
                model.kernel.name,
                method=method,
                backend=backend,
                options=options,
            ),
            "method": result.method,
            "backend": result.backend,
            "kernel": result.kernel,
            "selection_wall_seconds": result.wall_seconds,
            "cache": result.diagnostics.get("cache", "miss"),
            "registered_at": time.time(),
        }
        record = ModelRecord(
            name=name,
            model=model,
            bandwidth=float(result.bandwidth),
            provenance=provenance,
            result=result,
        )
        with self._lock:
            self._records[name] = record
        return record

    def register(
        self,
        name: str,
        model: NadarayaWatson,
        *,
        provenance: dict[str, Any] | None = None,
        result: SelectionResult | None = None,
        overwrite: bool = False,
    ) -> ModelRecord:
        """Register an externally fitted model (must already be fitted)."""
        if model.x_ is None or model.bandwidth is None:
            raise ValidationError(
                "model must be fitted (call .fit(x, y)) before registration"
            )
        with self._lock:
            if name in self._records and not overwrite:
                raise RegistryError(
                    f"model {name!r} is already registered; pass overwrite=True"
                )
            record = ModelRecord(
                name=name,
                model=model,
                bandwidth=float(model.bandwidth),
                provenance=dict(provenance or {}),
                result=result,
            )
            self._records[name] = record
            return record

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> ModelRecord:
        """The record for ``name``; typed error listing known models."""
        with self._lock:
            record = self._records.get(name)
            known = ", ".join(sorted(self._records)) or "(none)"
        if record is None:
            raise RegistryError(f"unknown model {name!r}; registered: {known}")
        return record

    def predict(self, name: str, at: np.ndarray) -> np.ndarray:
        """NW estimates from the named model at points ``at``."""
        return self.get(name).model.predict(at)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._records))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def describe(self) -> list[dict[str, Any]]:
        """JSON-ready summaries of every registered model."""
        with self._lock:
            records = [self._records[n] for n in sorted(self._records)]
        return [record.describe() for record in records]

    def drop(self, name: str) -> None:
        """Remove a model (typed error when absent)."""
        with self._lock:
            if name not in self._records:
                raise RegistryError(f"unknown model {name!r}; nothing to drop")
            del self._records[name]
