"""Lightweight serving metrics: counters, gauges, latency histograms.

Stdlib-only and allocation-light — the point is observability of the
serving hot path (cache hit rate, batch occupancy, queue depth, request
latency) without pulling in a metrics client.  Two output forms:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict for JSON
  endpoints and tests;
* :meth:`MetricsRegistry.render_text` — a ``/metrics``-style text dump
  (one ``name value`` line per series, ``# HELP`` comments), greppable
  and scrape-compatible with Prometheus' exposition format at the level
  the fixture tooling needs.

Histograms keep a bounded reservoir of recent observations (newest-wins
ring buffer) plus exact count/sum, so p50/p99 reflect recent behaviour
and memory stays O(reservoir) under unbounded traffic.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Any, Iterable

from repro.exceptions import ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing counter."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (queue depth, registered models)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Count/sum plus a bounded reservoir for percentile estimates.

    The reservoir is a ring buffer of the most recent ``reservoir``
    observations; percentiles are computed over a sorted copy at
    snapshot time.  For serving-scale traffic this biases percentiles
    toward recent load, which is what an operator wants from p99.
    """

    def __init__(
        self, name: str, help_text: str = "", *, reservoir: int = 1024
    ) -> None:
        if reservoir < 1:
            raise ValidationError(f"reservoir must be >= 1, got {reservoir}")
        self.name = name
        self.help_text = help_text
        self._reservoir_size = int(reservoir)
        self._recent: list[float] = []
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if len(self._recent) < self._reservoir_size:
                self._recent.append(value)
            else:
                self._recent[self._next] = value
                self._next = (self._next + 1) % self._reservoir_size

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the reservoir (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._recent:
                return float("nan")
            ordered: list[float] = []
            for value in self._recent:
                insort(ordered, value)
            rank = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[rank]

    def summary(self) -> dict[str, float]:
        with self._lock:
            recent = list(self._recent)
            count, total = self._count, self._sum
        if recent:
            recent.sort()

            def at(q: float) -> float:
                return recent[min(len(recent) - 1, int(q * len(recent)))]

            p50, p90, p99 = at(0.50), at(0.90), at(0.99)
            maximum = recent[-1]
        else:
            p50 = p90 = p99 = maximum = float("nan")
        return {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else float("nan"),
            "p50": p50,
            "p90": p90,
            "p99": p99,
            "max": maximum,
        }


class MetricsRegistry:
    """Namespace of metrics with lazy creation and uniform export.

    ``counter``/``gauge``/``histogram`` return the existing series when
    the name is already registered (so call sites never coordinate), and
    raise when a name is reused across metric types.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help_text)

    def _get_or_create(
        self, cls: type, name: str, help_text: str
    ) -> Any:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = cls(name, help_text)
                self._series[name] = series
            elif not isinstance(series, cls):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, requested {cls.__name__}"
                )
            return series

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._series)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict snapshot of every series (JSON-ready)."""
        with self._lock:
            series = dict(self._series)
        out: dict[str, Any] = {}
        for name in sorted(series):
            metric = series[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """``/metrics``-style exposition: ``<prefix>_<name> <value>``."""
        with self._lock:
            series = dict(self._series)
        lines: list[str] = []
        for name in sorted(series):
            metric = series[name]
            full = f"{self.prefix}_{name}"
            if metric.help_text:
                lines.append(f"# HELP {full} {metric.help_text}")
            if isinstance(metric, Histogram):
                stats = metric.summary()
                lines.append(f"{full}_count {stats['count']:.0f}")
                lines.append(f"{full}_sum {stats['sum']:.9g}")
                for label in ("p50", "p90", "p99"):
                    lines.append(f"{full}_{label} {stats[label]:.9g}")
            else:
                lines.append(f"{full} {metric.value:.9g}")
        return "\n".join(lines) + "\n"
