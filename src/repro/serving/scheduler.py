"""Asyncio micro-batching request engine with admission control.

Concurrent requests are cheap individually but expensive per-dispatch:
one ``/predict`` call pays Python/HTTP overhead plus a kernel-weighted
matrix pass whose cost is dominated by setup at small ``m``.  Coalescing
``B`` concurrent requests into one batch amortises that setup ``B``-fold
— the same argument the paper makes for evaluating the whole bandwidth
grid in one sweep instead of per-``h`` passes.

Mechanics
---------
Requests enter a bounded queue (admission control: a full queue rejects
with the typed ``REPRO_SERVE_OVERLOAD`` :class:`OverloadError` rather
than building unbounded latency).  A collector task takes the first
waiting item, then keeps gathering until either ``max_batch_size`` items
are in hand or ``max_wait_ms`` has elapsed since the batch opened — the
classic size-or-deadline micro-batching policy.  The whole batch is then
handed to the (blocking, numpy-bound) runner **on an executor thread**,
never on the event loop; results fan back out to the per-request
futures.

Shutdown is graceful: :meth:`drain` stops admissions, waits for queued
work to finish, and cancels the collector — in-flight requests complete,
new ones are rejected.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Generic, Sequence, TypeVar

from repro.exceptions import OverloadError, ValidationError
from repro.serving.metrics import MetricsRegistry

__all__ = ["BatchItem", "MicroBatchScheduler", "SchedulerConfig"]

TRequest = TypeVar("TRequest")
TResult = TypeVar("TResult")


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning for one :class:`MicroBatchScheduler`.

    Parameters
    ----------
    max_batch_size:
        Largest batch handed to the runner in one executor trip.
    max_wait_ms:
        How long an open batch waits for co-travellers before executing.
        ``0`` disables coalescing (each request runs alone, still off
        the event loop).
    max_queue:
        Admission bound: requests beyond this many waiting are rejected
        with :class:`OverloadError`.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValidationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_queue < 1:
            raise ValidationError(f"max_queue must be >= 1, got {self.max_queue}")


@dataclass
class BatchItem(Generic[TRequest]):
    """One queued request and the future its caller awaits."""

    payload: TRequest
    future: "asyncio.Future[Any]"
    enqueued_at: float


class MicroBatchScheduler(Generic[TRequest, TResult]):
    """Coalesces concurrent requests into batches for a blocking runner.

    Parameters
    ----------
    runner:
        ``runner(payloads) -> results`` — a *blocking* callable executed
        on the event loop's default executor; must return one result per
        payload, in order.  Exceptions fail the whole batch (every
        waiter sees the error).
    config:
        Batch/queue tuning (:class:`SchedulerConfig`).
    metrics:
        Optional :class:`MetricsRegistry`; the scheduler records batch
        occupancy, queue depth, wait and run latency under
        ``<name>_*`` series.
    name:
        Metric namespace, e.g. ``"predict"``.
    """

    def __init__(
        self,
        runner: Callable[[Sequence[TRequest]], Sequence[TResult]],
        *,
        config: SchedulerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        name: str = "batch",
    ) -> None:
        self.runner = runner
        self.config = config or SchedulerConfig()
        self.name = name
        self.metrics = metrics
        self._queue: asyncio.Queue[BatchItem[TRequest] | None] = asyncio.Queue()
        self._collector: asyncio.Task[None] | None = None
        self._closing = False
        self._batches = 0
        self._requests = 0
        self._rejected = 0
        if metrics is not None:
            self._m_occupancy = metrics.histogram(
                f"{name}_batch_occupancy", "requests coalesced per batch"
            )
            self._m_wait = metrics.histogram(
                f"{name}_queue_wait_seconds", "time from enqueue to batch start"
            )
            self._m_run = metrics.histogram(
                f"{name}_batch_run_seconds", "runner execution time per batch"
            )
            self._m_depth = metrics.gauge(
                f"{name}_queue_depth", "requests waiting for a batch slot"
            )
            self._m_rejected = metrics.counter(
                f"{name}_rejected_total", "requests shed by admission control"
            )
            self._m_requests = metrics.counter(
                f"{name}_requests_total", "requests admitted"
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the collector task on the running event loop."""
        if self._collector is None or self._collector.done():
            self._closing = False
            self._collector = asyncio.get_running_loop().create_task(
                self._collect_loop()
            )

    @property
    def running(self) -> bool:
        return self._collector is not None and not self._collector.done()

    async def drain(self) -> None:
        """Stop admissions, finish queued work, stop the collector."""
        self._closing = True
        if self._collector is None:
            return
        await self._queue.put(None)  # sentinel: wake the collector
        await self._collector
        self._collector = None
        # Fail anything that slipped in after the sentinel.
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not None and not item.future.done():
                item.future.set_exception(
                    OverloadError("scheduler drained before the request ran")
                )

    # -- submission --------------------------------------------------------

    async def submit(self, payload: TRequest) -> TResult:
        """Queue one request and await its batched result.

        Raises :class:`OverloadError` immediately when the scheduler is
        draining or the bounded queue is full.
        """
        if self._closing or not self.running:
            self._rejected += 1
            if self.metrics is not None:
                self._m_rejected.inc()
            raise OverloadError(
                f"scheduler {self.name!r} is not accepting requests "
                "(draining or not started)"
            )
        if self._queue.qsize() >= self.config.max_queue:
            self._rejected += 1
            if self.metrics is not None:
                self._m_rejected.inc()
            raise OverloadError(
                f"queue for {self.name!r} is full "
                f"({self.config.max_queue} waiting); retry with backoff"
            )
        loop = asyncio.get_running_loop()
        item: BatchItem[TRequest] = BatchItem(
            payload=payload,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        self._requests += 1
        if self.metrics is not None:
            self._m_requests.inc()
        await self._queue.put(item)
        if self.metrics is not None:
            self._m_depth.set(self._queue.qsize())
        result: TResult = await item.future
        return result

    # -- internals ---------------------------------------------------------

    async def _collect_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = loop.time() + self.config.max_wait_ms / 1000.0
            stop = False
            while len(batch) < self.config.max_batch_size:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            if self.metrics is not None:
                self._m_depth.set(self._queue.qsize())
            await self._run_batch(batch, loop)
            if stop:
                return

    async def _run_batch(
        self, batch: list[BatchItem[TRequest]], loop: asyncio.AbstractEventLoop
    ) -> None:
        self._batches += 1
        started = loop.time()
        if self.metrics is not None:
            self._m_occupancy.observe(len(batch))
            for item in batch:
                self._m_wait.observe(started - item.enqueued_at)
        payloads = [item.payload for item in batch]
        try:
            results = await loop.run_in_executor(None, self.runner, payloads)
        except Exception as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        finally:
            if self.metrics is not None:
                self._m_run.observe(loop.time() - started)
        if len(results) != len(batch):
            error = ValidationError(
                f"runner returned {len(results)} results for a batch of "
                f"{len(batch)}"
            )
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(error)
            return
        for item, result in zip(batch, results):
            if not item.future.done():
                item.future.set_result(result)

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Occupancy/throughput snapshot (JSON-ready)."""
        return {
            "name": self.name,
            "running": self.running,
            "queue_depth": self._queue.qsize(),
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "max_queue": self.config.max_queue,
            "batches": self._batches,
            "requests": self._requests,
            "rejected": self._rejected,
            "mean_occupancy": self._requests / self._batches if self._batches else 0.0,
        }
