"""Serving layer: artifact cache, model registry, micro-batching, HTTP.

Bandwidth selection as a service.  The paper's sweep is O(n² log n) per
dataset but its outputs are pure functions of their inputs, so a serving
stack can amortise nearly all of it:

* :mod:`~repro.serving.cache` — two-tier (memory LRU + disk) artifact
  cache keyed by the SHA-256 dataset fingerprint; stores full
  :class:`~repro.core.result.SelectionResult`\\ s, CV score curves, and
  per-row-block partial sums with atomic writes and byte budgets;
* :mod:`~repro.serving.registry` — named fitted models
  (fit once, predict many) with bandwidth provenance;
* :mod:`~repro.serving.scheduler` — asyncio micro-batching request
  engine (size-or-deadline coalescing, bounded-queue admission control,
  graceful drain);
* :mod:`~repro.serving.metrics` — counters/gauges/histograms with a
  dict snapshot and a ``/metrics``-style text dump;
* :mod:`~repro.serving.server` — stdlib JSON-over-HTTP endpoint
  (``/select``, ``/predict``, ``/fit``, ``/models``, ``/healthz``,
  ``/metrics``) behind the ``repro-bench serve`` CLI subcommand.

Wired into the core API via ``select_bandwidth(cache=...)``: a warm
selection with an identical fingerprint returns bit-for-bit the same
bandwidth while skipping the sweep.
"""

from __future__ import annotations

from repro.serving.cache import (
    ArtifactCache,
    CacheStats,
    curve_fingerprint,
    selection_fingerprint,
)
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.registry import ModelRecord, ModelRegistry
from repro.serving.scheduler import MicroBatchScheduler, SchedulerConfig
from repro.serving.server import (
    ServingApp,
    ServingConfig,
    run_server,
    serve_forever,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MicroBatchScheduler",
    "ModelRecord",
    "ModelRegistry",
    "SchedulerConfig",
    "ServingApp",
    "ServingConfig",
    "curve_fingerprint",
    "run_server",
    "selection_fingerprint",
    "serve_forever",
]
